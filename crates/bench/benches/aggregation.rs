//! Aggregation-enhancement benchmarks: the weekly Algorithm 2 scan
//! (Ω evaluation + top-Ψ selection) and trace materialization.

use criterion::{criterion_group, criterion_main, Criterion};
use minicost::prelude::*;
use std::hint::black_box;
use tracegen::CoRequestModel;

fn bench_aggregation(c: &mut Criterion) {
    let trace = Trace::generate(&TraceConfig {
        files: 2_000,
        days: 28,
        seed: 13,
        ..TraceConfig::default()
    });
    let model = CostModel::new(PricingPolicy::paper_2020());
    let groups = CoRequestModel { groups: 200, seed: 13, ..Default::default() }.generate(&trace);

    c.bench_function("aggregation/omega_scan_200_groups", |b| {
        b.iter(|| {
            let omegas: Vec<Omega> = groups
                .iter()
                .map(|g| Omega::evaluate(g, &trace, &model, Tier::Hot, 0..7))
                .collect();
            black_box(omegas)
        })
    });

    let omegas: Vec<Omega> =
        groups.iter().map(|g| Omega::evaluate(g, &trace, &model, Tier::Hot, 0..7)).collect();
    c.bench_function("aggregation/planner_round", |b| {
        b.iter(|| {
            let mut planner = AggregationPlanner::new(50, groups.len());
            black_box(planner.evaluate(black_box(&omegas)))
        })
    });

    let active: Vec<usize> = (0..50).collect();
    c.bench_function("aggregation/apply_50_groups", |b| {
        b.iter(|| black_box(apply_aggregation(&trace, &groups, &active)))
    });
}

criterion_group!(benches, bench_aggregation,);
criterion_main!(benches);
