//! Microbenchmarks of the pricing substrate: the cost model is the inner
//! loop of every policy and of the Optimal DP.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pricing::{CostModel, FileDay, PricingPolicy, Tier};
use std::hint::black_box;

fn bench_day_cost(c: &mut Criterion) {
    let model = CostModel::new(PricingPolicy::paper_2020());
    let day = FileDay {
        size_gb: 0.1,
        reads: 1_234,
        writes: 56,
        tier: Tier::Cool,
        changed_from: Some(Tier::Hot),
    };
    c.bench_function("cost_model/day_cost_with_change", |b| {
        b.iter(|| model.day_cost(black_box(&day)))
    });

    c.bench_function("cost_model/steady_day_cost", |b| {
        b.iter(|| model.steady_day_cost(black_box(0.1), black_box(1_234), black_box(56), Tier::Hot))
    });
}

fn bench_best_single_tier(c: &mut Criterion) {
    let model = CostModel::new(PricingPolicy::paper_2020());
    let days: Vec<(u64, u64)> = (0..35).map(|d| (d * 13 % 2_000, d)).collect();
    c.bench_function("cost_model/best_single_tier_35d", |b| {
        b.iter_batched(
            || days.clone(),
            |days| model.best_single_tier(black_box(0.1), days),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_day_cost, bench_best_single_tier);
criterion_main!(benches);
