//! The paper's §6.4 latency claim: "the average time cost for one data
//! file storage type assignment per day is less than 1 millisecond". This
//! bench measures exactly that — one deployed-policy decision for one file.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minicost::features::FeatureConfig;
use minicost::policy::{DecisionContext, RlPolicy};
use minicost::prelude::*;
use rl::NetSpec;
use std::hint::black_box;

fn bench_per_file_decision(c: &mut Criterion) {
    let trace =
        Trace::generate(&TraceConfig { files: 64, days: 21, seed: 9, ..TraceConfig::default() });
    let fleet = FleetState::from_trace(&trace);
    let model = CostModel::new(PricingPolicy::paper_2020());
    let features = FeatureConfig::default();

    let mut group = c.benchmark_group("decision_per_file");
    for width in [16usize, 128] {
        let spec = NetSpec {
            window: features.window,
            channels: FeatureConfig::CHANNELS,
            extras: minicost::features::EXTRA_FEATURES,
            filters: width,
            kernel: 4,
            stride: 1,
            hidden: width,
            actions: 3,
        };
        let actor = spec.build_actor(3);
        let mut policy = RlPolicy::from_params(spec, &actor.param_vector(), features);
        // A one-file batch: the deployed agent's per-file decision path.
        let batch = [0usize];
        let current = [Tier::Cool];
        let ctx = DecisionContext {
            day: 14,
            fleet: &fleet,
            model: &model,
            batch: &batch,
            current: &current,
        };
        group.bench_with_input(BenchmarkId::new("minicost", width), &width, |b, _| {
            b.iter(|| black_box(policy.decide_one(black_box(&ctx), 0)))
        });
    }

    // Greedy's per-file decision, for the Fig. 12 comparison.
    let model = CostModel::new(PricingPolicy::paper_2020());
    let file = &trace.files[0];
    group.bench_function("greedy", |b| {
        b.iter(|| {
            let (r, w) = file.day(14);
            Tier::all()
                .min_by_key(|&t| {
                    model.policy().change_cost(Tier::Cool, t, file.size_gb)
                        + model.steady_day_cost(file.size_gb, r, w, t)
                })
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_per_file_decision);
criterion_main!(benches);
