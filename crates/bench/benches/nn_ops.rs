//! Neural-network kernel benchmarks: the forward/backward passes that
//! dominate both training throughput and deployed decision latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nn::Matrix;
use rl::NetSpec;
use std::hint::black_box;

fn spec(width: usize) -> NetSpec {
    NetSpec {
        window: 7,
        channels: 2,
        extras: 6,
        filters: width,
        kernel: 4,
        stride: 1,
        hidden: width,
        actions: 3,
    }
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_forward");
    for width in [16usize, 64, 128] {
        let mut actor = spec(width).build_actor(1);
        let state = Matrix::row_vector(&vec![0.3; spec(width).state_dim()]);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| black_box(actor.forward(black_box(&state))))
        });
    }
    group.finish();
}

fn bench_forward_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_forward_backward");
    for width in [16usize, 64] {
        let mut actor = spec(width).build_actor(1);
        let state = Matrix::row_vector(&vec![0.3; spec(width).state_dim()]);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| {
                let out = actor.forward(black_box(&state));
                actor.zero_grads();
                black_box(actor.backward(&out));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_forward_backward);
criterion_main!(benches);
