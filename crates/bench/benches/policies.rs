//! Policy-level benchmarks: full-horizon simulation cost per strategy and
//! the offline DP planner (these underpin the Fig. 12 overhead claims).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minicost::optimal::{brute_force_plan, optimal_plan};
use minicost::prelude::*;
use std::hint::black_box;

fn setup(files: usize) -> (Trace, CostModel) {
    let trace =
        Trace::generate(&TraceConfig { files, days: 35, seed: 7, ..TraceConfig::default() });
    (trace, CostModel::new(PricingPolicy::paper_2020()))
}

fn bench_optimal_dp(c: &mut Criterion) {
    let (trace, model) = setup(64);
    let mut group = c.benchmark_group("optimal");
    group.bench_function("dp_per_file_35d", |b| {
        b.iter(|| {
            for file in &trace.files {
                black_box(optimal_plan(file, &model, Tier::Hot));
            }
        })
    });
    // The exponential baseline on a 7-day horizon, for scale.
    let week = trace.day_window(0..7);
    group.bench_function("brute_force_per_file_7d", |b| {
        b.iter(|| {
            for file in &week.files {
                black_box(brute_force_plan(file, &model, Tier::Hot));
            }
        })
    });
    group.finish();
}

fn bench_policy_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_35d");
    for files in [100usize, 1_000] {
        let (trace, model) = setup(files);
        let cfg = SimConfig::builder().seed(7).workers(1).build().unwrap();
        group.bench_with_input(BenchmarkId::new("greedy", files), &files, |b, _| {
            b.iter(|| simulate(&trace, &model, &mut GreedyPolicy, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("hot", files), &files, |b, _| {
            b.iter(|| simulate(&trace, &model, &mut HotPolicy, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimal_dp, bench_policy_decisions);
criterion_main!(benches);
