//! Extension experiment — prediction-based planning vs. RL, per bucket.
//!
//! The paper's core motivation (§3.2 + Fig. 4): forecast-then-optimize
//! planners inherit the forecaster's failure on high-variability files,
//! which is exactly where the money is; the RL policy does not chase point
//! forecasts. This experiment runs [`minicost::PredictivePolicy`] with
//! ARIMA and seasonal-naive forecasters against MiniCost and the offline
//! optimum, attributing cost per variability bucket.

use crate::{Args, Report};
use forecast::{Arima, SeasonalNaive};
use minicost::prelude::*;
use tracegen::analysis::CV_BUCKET_LABELS;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of files.
    pub files: usize,
    /// Days.
    pub days: usize,
    /// Seed.
    pub seed: u64,
    /// MiniCost training budget.
    pub updates: u64,
    /// Network width.
    pub width: usize,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 5_000),
            days: args.usize("days", 35),
            seed: args.u64("seed", 2020),
            updates: args.u64("updates", 100_000),
            width: args.usize("width", 32),
        }
    }
}

/// Runs the ablation.
#[must_use]
pub fn run(params: &Params) -> Report {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let model = crate::experiment_model();
    let split = trace.split(0.8, params.seed);
    let test = &split.test;
    let sim_cfg = crate::experiment_sim_config(params.seed, minicost::default_workers());

    let agent = MiniCost::train(
        &split.train,
        &model,
        &crate::experiment_training(params.updates, params.width, params.seed),
    );

    let runs = vec![
        simulate(test, &model, &mut PredictivePolicy::new(Arima::weekly_default(), 7), &sim_cfg),
        simulate(test, &model, &mut PredictivePolicy::new(SeasonalNaive::new(7), 7), &sim_cfg),
        simulate(test, &model, &mut agent.policy(), &sim_cfg),
        simulate(
            test,
            &model,
            &mut OptimalPolicy::plan(test, &model, sim_cfg.initial_tier),
            &sim_cfg,
        ),
    ];
    let labels = ["predictive-arima", "predictive-seasonal", "minicost", "optimal"];

    let mut report = Report::new(
        "ablation_prediction",
        "forecast-then-optimize vs RL: total and per-bucket cost ($)",
        &["bucket", "predictive-arima", "predictive-seasonal", "minicost", "optimal"],
    );
    report.config =
        Some(ConfigBlock::new(params.files, params.days, params.seed, minicost::default_workers()));
    let per_policy: Vec<[Money; 5]> =
        runs.iter().map(|r| bucket_costs(test, &r.per_file)).collect();
    for (bucket, label) in CV_BUCKET_LABELS.iter().enumerate() {
        let mut row = vec![(*label).to_owned()];
        for buckets in &per_policy {
            row.push(format!("{:.3}", buckets[bucket].as_dollars()));
        }
        report.push_row(row);
    }
    let mut total_row = vec!["TOTAL".to_owned()];
    for run in &runs {
        total_row.push(format!("{:.3}", run.total_cost().as_dollars()));
    }
    report.push_row(total_row);
    for (label, run) in labels.iter().zip(&runs) {
        report.note(format!("{label}: {}", run.total_cost()));
    }
    report.note(
        "expected: predictive planners competitive on 0-0.1, penalized on >0.8 (Fig. 4's argument)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_smoke() {
        let report = run(&Params { files: 200, days: 14, seed: 1, updates: 150, width: 8 });
        assert_eq!(report.rows.len(), 6); // 5 buckets + TOTAL
                                          // Optimal column is the minimum on the TOTAL row.
        let total = report.rows.last().unwrap();
        let vals: Vec<f64> = total[1..].iter().map(|v| v.parse().unwrap()).collect();
        let opt = vals[3];
        assert!(vals.iter().all(|&v| v >= opt - 1e-9), "{vals:?}");
    }
}
