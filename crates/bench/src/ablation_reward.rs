//! Extension experiment — reward-design ablation.
//!
//! The paper specifies Eq. 4's reciprocal reward (`α/C + Δ`) but reports no
//! sensitivity analysis. This ablation trains the same agent under every
//! reward kind this reproduction implements, with and without the oracle
//! signals, and compares the deployed 35-day cost against the baselines.
//! It documents *why* the headline experiments use shaped regret +
//! imitation (DESIGN.md §4).

use crate::{Args, Report};
use minicost::prelude::*;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of files.
    pub files: usize,
    /// Days.
    pub days: usize,
    /// Seed.
    pub seed: u64,
    /// Training budget per variant.
    pub updates: u64,
    /// Network width.
    pub width: usize,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 2_000),
            days: args.usize("days", 35),
            seed: args.u64("seed", 2020),
            updates: args.u64("updates", 30_000),
            width: args.usize("width", 32),
        }
    }
}

/// The ablated variants: (label, reward kind, imitation coefficient).
fn variants() -> Vec<(&'static str, RewardKind, f64)> {
    vec![
        ("eq4-reciprocal (paper)", RewardKind::Reciprocal, 0.0),
        ("neg-cost", RewardKind::NegCost, 0.0),
        ("neg-cost-raw", RewardKind::NegCostRaw, 0.0),
        ("shaped-regret", RewardKind::ShapedRegret, 0.0),
        ("shaped-regret + imitation (headline)", RewardKind::ShapedRegret, 1.0),
    ]
}

/// Runs the ablation.
#[must_use]
pub fn run(params: &Params) -> Report {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let model = crate::experiment_model();
    let split = trace.split(0.8, params.seed);
    let sim_cfg = crate::experiment_sim_config(params.seed, minicost::default_workers());
    let test = &split.test;

    let hot = simulate(test, &model, &mut HotPolicy, &sim_cfg).total_cost();
    let greedy = simulate(test, &model, &mut GreedyPolicy, &sim_cfg).total_cost();
    let opt = simulate(
        test,
        &model,
        &mut OptimalPolicy::plan(test, &model, sim_cfg.initial_tier),
        &sim_cfg,
    )
    .total_cost();

    let mut report = Report::new(
        "ablation_reward",
        "deployed 35-day cost by reward design (same budget, same seed)",
        &["variant", "cost", "vs_optimal", "final_opt_rate"],
    );
    report.config =
        Some(ConfigBlock::new(params.files, params.days, params.seed, minicost::default_workers()));
    report.push_row(vec!["baseline: hot".into(), format!("{hot}"), ratio(hot, opt), "-".into()]);
    report.push_row(vec![
        "baseline: greedy".into(),
        format!("{greedy}"),
        ratio(greedy, opt),
        "-".into(),
    ]);

    for (label, kind, imitation) in variants() {
        let mut cfg = crate::experiment_training(params.updates, params.width, params.seed);
        cfg.reward = RewardConfig { kind, ..cfg.reward };
        cfg.a3c.imitation_coeff = imitation;
        // The unshaped kinds need the standard A3C stabilizers back on.
        if kind != RewardKind::ShapedRegret {
            cfg.a3c.gamma = 0.5;
            cfg.a3c.normalize_advantages = true;
            cfg.a3c.critic_baseline = true;
        }
        let agent = MiniCost::train(&split.train, &model, &cfg);
        let cost = simulate(test, &model, &mut agent.policy(), &sim_cfg).total_cost();
        report.push_row(vec![
            label.to_owned(),
            format!("{cost}"),
            ratio(cost, opt),
            agent.final_optimal_rate().map_or_else(|| "-".into(), |r| format!("{r:.3}")),
        ]);
    }
    report.push_row(vec![
        "baseline: optimal".into(),
        format!("{opt}"),
        "1.000x".into(),
        "-".into(),
    ]);
    report.note("headline recipe = shaped regret + oracle imitation (DESIGN.md §4)");
    report
}

fn ratio(cost: Money, reference: Money) -> String {
    format!("{:.3}x", cost.as_dollars() / reference.as_dollars())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_produces_all_variants() {
        let report = run(&Params { files: 200, days: 14, seed: 1, updates: 150, width: 8 });
        // 2 baselines + 5 variants + optimal row.
        assert_eq!(report.rows.len(), 8);
        // Optimal is last and normalized to itself.
        assert_eq!(report.rows.last().unwrap()[2], "1.000x");
    }
}
