//! Extension experiment — trainer ablation: A3C (the paper's choice)
//! versus plain DQN on the same tiering MDP, same network topology, same
//! budget.
//!
//! The paper motivates A3C as "better than the typical RL methods"; this
//! ablation makes the comparison concrete on this exact problem.

use crate::{Args, Report};
use minicost::features::{FeatureConfig, EXTRA_FEATURES};
use minicost::policy::RlPolicy;
use minicost::prelude::*;
use rl::{train_dqn, DqnConfig, NetSpec};
use std::sync::Arc;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of files.
    pub files: usize,
    /// Days.
    pub days: usize,
    /// Seed.
    pub seed: u64,
    /// Training budget (updates for both trainers).
    pub updates: u64,
    /// Network width.
    pub width: usize,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 2_000),
            days: args.usize("days", 35),
            seed: args.u64("seed", 2020),
            updates: args.u64("updates", 30_000),
            width: args.usize("width", 32),
        }
    }
}

/// Runs the ablation.
#[must_use]
pub fn run(params: &Params) -> Report {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let model = crate::experiment_model();
    let split = trace.split(0.8, params.seed);
    let test = &split.test;
    let sim_cfg = crate::experiment_sim_config(params.seed, minicost::default_workers());

    // A3C (the headline recipe).
    let a3c_cfg = crate::experiment_training(params.updates, params.width, params.seed);
    let a3c_agent = MiniCost::train(&split.train, &model, &a3c_cfg);
    let a3c_run = simulate(test, &model, &mut a3c_agent.policy(), &sim_cfg);

    // DQN on the same env, same spec, same shaped reward.
    let features = FeatureConfig::default();
    let spec = NetSpec {
        window: features.window,
        channels: FeatureConfig::CHANNELS,
        extras: EXTRA_FEATURES,
        filters: params.width,
        kernel: 4,
        stride: 1,
        hidden: params.width,
        actions: 3,
    };
    let env = TieringEnv::new(
        Arc::new(split.train.clone()),
        Arc::new(model.clone()),
        TieringEnvConfig {
            features,
            reward: a3c_cfg.reward,
            episode_len: 7,
            seed: params.seed,
            with_oracle: true,
        },
    );
    let dqn_cfg = DqnConfig {
        total_updates: params.updates,
        gamma: 0.0, // shaped regret folds in the future, as for A3C
        learning_rate: 0.001,
        seed: params.seed,
        ..DqnConfig::default()
    };
    let dqn_result = train_dqn(spec, &dqn_cfg, env);
    let mut dqn_policy = RlPolicy::from_params(spec, &dqn_result.q_params, features);
    let dqn_run = simulate(test, &model, &mut dqn_policy, &sim_cfg);

    // Baselines.
    let greedy = simulate(test, &model, &mut GreedyPolicy, &sim_cfg);
    let opt = simulate(
        test,
        &model,
        &mut OptimalPolicy::plan(test, &model, sim_cfg.initial_tier),
        &sim_cfg,
    );

    let mut report = Report::new(
        "ablation_trainer",
        "A3C vs DQN on the tiering MDP (same topology, reward, budget)",
        &["trainer", "cost", "vs_optimal", "final_opt_rate"],
    );
    report.config =
        Some(ConfigBlock::new(params.files, params.days, params.seed, minicost::default_workers()));
    let opt_cost = opt.total_cost();
    let mut row = |name: &str, cost: Money, rate: Option<f64>| {
        report.push_row(vec![
            name.to_owned(),
            format!("{cost}"),
            format!("{:.3}x", cost.as_dollars() / opt_cost.as_dollars()),
            rate.map_or_else(|| "-".into(), |r| format!("{r:.3}")),
        ]);
    };
    row("a3c (paper)", a3c_run.total_cost(), a3c_agent.final_optimal_rate());
    row("dqn", dqn_run.total_cost(), dqn_result.final_optimal_rate);
    row("greedy baseline", greedy.total_cost(), None);
    row("optimal", opt_cost, None);
    report.note("the paper's §5.1 claim: A3C outperforms typical RL methods");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trainer_ablation_smoke() {
        let report = run(&Params { files: 200, days: 14, seed: 1, updates: 200, width: 8 });
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.rows[3][2], "1.000x");
    }
}
