//! Minimal CLI argument parsing for the experiment binaries.
//!
//! Every figure binary accepts `--files N --days D --seed S --updates U
//! --runs R` with figure-appropriate defaults, so the paper-scale runs and
//! CI-scale smoke runs use the same code path. The shared `--workers`,
//! `--seed`, and `--out` flags are parsed here once, so every binary —
//! including `minicost bench` — resolves them identically and the JSON
//! artifacts carry the same `config` block (DESIGN.md §14).

use std::collections::HashMap;
use std::path::PathBuf;

/// Parsed command-line arguments (`--key value` pairs).
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process's arguments. Panics on a malformed pair (a
    /// `--key` without a value), which is the right behavior for a lab
    /// harness — fail loudly, immediately.
    #[must_use]
    pub fn parse() -> Args {
        Args::from_list(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    #[must_use]
    pub fn from_list<I: IntoIterator<Item = String>>(iter: I) -> Args {
        let mut values = HashMap::new();
        let mut iter = iter.into_iter();
        while let Some(key) = iter.next() {
            let name =
                key.strip_prefix("--").unwrap_or_else(|| panic!("expected --flag, got {key:?}"));
            let value = iter.next().unwrap_or_else(|| panic!("flag --{name} needs a value"));
            values.insert(name.to_owned(), value);
        }
        Args { values }
    }

    /// A `usize` flag with default.
    #[must_use]
    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.get_parsed(name).unwrap_or(default)
    }

    /// A `u64` flag with default.
    #[must_use]
    pub fn u64(&self, name: &str, default: u64) -> u64 {
        self.get_parsed(name).unwrap_or(default)
    }

    /// An `f64` flag with default.
    #[must_use]
    pub fn f64(&self, name: &str, default: f64) -> f64 {
        self.get_parsed(name).unwrap_or(default)
    }

    /// The `--workers` flag shared by the figure binaries: simulation shard
    /// count, defaulting to the `MINICOST_WORKERS` environment variable
    /// (else 1) and clamped to ≥ 1. Sharding never changes results — only
    /// wall-clock (see DESIGN.md §9).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.usize("workers", minicost::default_workers()).max(1)
    }

    /// The `--seed` flag shared by the experiment binaries, with the
    /// caller's figure-appropriate default.
    #[must_use]
    pub fn seed(&self, default: u64) -> u64 {
        self.u64("seed", default)
    }

    /// The `--out` flag: where a binary writes its artifacts. Figure
    /// binaries treat it as the output *directory* (default `results/`);
    /// `minicost bench` treats its own `--out` as the artifact path — both
    /// resolve through the same parser so the flags behave alike.
    #[must_use]
    pub fn out(&self, default: &str) -> PathBuf {
        PathBuf::from(self.values.get("out").map_or(default, String::as_str))
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Option<T>
    where
        T::Err: std::fmt::Debug,
    {
        self.values.get(name).map(|v| v.parse().unwrap_or_else(|e| panic!("--{name} {v:?}: {e:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_list(s.iter().map(|x| (*x).to_owned()))
    }

    #[test]
    fn parses_typed_flags() {
        let a = args(&["--files", "500", "--lr", "0.003"]);
        assert_eq!(a.usize("files", 1), 500);
        assert_eq!(a.f64("lr", 0.1), 0.003);
        assert_eq!(a.u64("updates", 7), 7);
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = args(&[]);
        assert_eq!(a.usize("files", 42), 42);
    }

    #[test]
    fn workers_flag_is_clamped() {
        assert_eq!(args(&["--workers", "4"]).workers(), 4);
        assert_eq!(args(&["--workers", "0"]).workers(), 1);
        assert!(args(&[]).workers() >= 1);
    }

    #[test]
    fn seed_and_out_share_the_common_parser() {
        let a = args(&["--seed", "7", "--out", "artifacts"]);
        assert_eq!(a.seed(2020), 7);
        assert_eq!(a.out("results"), std::path::Path::new("artifacts"));
        let d = args(&[]);
        assert_eq!(d.seed(2020), 2020);
        assert_eq!(d.out("results"), std::path::Path::new("results"));
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn dangling_flag_panics() {
        let _ = args(&["--files"]);
    }

    #[test]
    #[should_panic(expected = "expected --flag")]
    fn positional_arg_panics() {
        let _ = args(&["bare"]);
    }

    #[test]
    #[should_panic(expected = "--files")]
    fn unparsable_value_panics() {
        let a = args(&["--files", "many"]);
        let _ = a.usize("files", 1);
    }
}
