//! Extension experiment. See `bench_support::ablation_prediction`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::ablation_prediction::Params::from_args(&args);
    bench_support::ablation_prediction::run(&params).emit_into(&args.out("results"));
}
