//! Extension: reward-design ablation. See `bench_support::ablation_reward`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::ablation_reward::Params::from_args(&args);
    bench_support::ablation_reward::run(&params).emit_into(&args.out("results"));
}
