//! Extension experiment. See `bench_support::ablation_trainer`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::ablation_trainer::Params::from_args(&args);
    bench_support::ablation_trainer::run(&params).emit_into(&args.out("results"));
}
