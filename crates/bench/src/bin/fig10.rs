//! Regenerates the paper's Fig. 10. See `bench_support::fig10_greedy_rate`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::fig10_greedy_rate::Params::from_args(&args);
    bench_support::fig10_greedy_rate::run(&params).emit_into(&args.out("results"));
}
