//! Regenerates the paper's Fig. 11. See `bench_support::fig11_width`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::fig11_width::Params::from_args(&args);
    bench_support::fig11_width::run(&params).emit_into(&args.out("results"));
}
