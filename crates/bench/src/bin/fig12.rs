//! Regenerates the paper's Fig. 12. See `bench_support::fig12_overhead`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::fig12_overhead::Params::from_args(&args);
    bench_support::fig12_overhead::run(&params).emit_into(&args.out("results"));
}
