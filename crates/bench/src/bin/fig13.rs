//! Regenerates the paper's Fig. 13. See `bench_support::fig13_aggregation`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::fig13_aggregation::Params::from_args(&args);
    bench_support::fig13_aggregation::run(&params).emit_into(&args.out("results"));
}
