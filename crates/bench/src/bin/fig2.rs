//! Regenerates the paper's Fig. 2. See `bench_support::fig2_histogram`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::fig2_histogram::Params::from_args(&args);
    bench_support::fig2_histogram::run(&params).emit_into(&args.out("results"));
}
