//! Regenerates the paper's Fig. 3. See `bench_support::fig3_savings`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::fig3_savings::Params::from_args(&args);
    bench_support::fig3_savings::run(&params).emit_into(&args.out("results"));
}
