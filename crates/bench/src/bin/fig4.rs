//! Regenerates the paper's Fig. 4. See `bench_support::fig4_prediction`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::fig4_prediction::Params::from_args(&args);
    bench_support::fig4_prediction::run(&params).emit_into(&args.out("results"));
}
