//! Regenerates the paper's Fig. 7. See `bench_support::fig7_total_cost`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::fig7_total_cost::Params::from_args(&args);
    bench_support::fig7_total_cost::run(&params).emit_into(&args.out("results"));
}
