//! Regenerates the paper's Fig. 8. See `bench_support::fig8_bucket_cost`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::fig7_total_cost::Params::from_args(&args);
    bench_support::fig8_bucket_cost::run(&params).emit_into(&args.out("results"));
}
