//! Regenerates the paper's Fig. 9. See `bench_support::fig9_learning_rate`.

fn main() {
    let args = bench_support::Args::parse();
    let params = bench_support::fig9_learning_rate::Params::from_args(&args);
    bench_support::fig9_learning_rate::run(&params).emit_into(&args.out("results"));
}
