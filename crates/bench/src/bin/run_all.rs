//! Regenerates every figure of the paper in sequence at a configurable
//! scale. `--scale small` (default) finishes in minutes; `--scale paper`
//! approaches the paper's trace sizes (hours).

fn main() {
    let args = bench_support::Args::parse();
    // A single multiplier over the per-figure defaults keeps relative
    // scales intact; individual flags still override.
    let out = args.out("results");
    let shrink = args.usize("shrink", 10);
    let s = |n: usize| (n / shrink).max(100);
    let u = |n: u64| (n / shrink as u64).max(500);

    use bench_support as b;
    b::fig2_histogram::run(&b::fig2_histogram::Params { files: s(200_000), days: 63, seed: 2020 })
        .emit_into(&out);
    b::fig3_savings::run(&b::fig3_savings::Params { files: s(100_000), days: 35, seed: 2020 })
        .emit_into(&out);
    b::fig4_prediction::run(&b::fig4_prediction::Params {
        files: s(20_000),
        days: 63,
        horizon: 7,
        seed: 2020,
    })
    .emit_into(&out);
    let workers = args.workers();
    let fig7 = b::fig7_total_cost::Params {
        files: s(10_000),
        days: 35,
        seed: 2020,
        updates: u(150_000),
        width: 64,
        workers,
    };
    b::fig7_total_cost::run(&fig7).emit_into(&out);
    b::fig8_bucket_cost::run(&fig7).emit_into(&out);
    let mut fig9 = b::fig9_learning_rate::Params::from_args(&args);
    fig9.files = s(2_000).max(500);
    fig9.updates = u(30_000);
    b::fig9_learning_rate::run(&fig9).emit_into(&out);
    let mut fig10 = b::fig10_greedy_rate::Params::from_args(&args);
    fig10.files = s(2_000).max(500);
    fig10.updates = u(30_000);
    b::fig10_greedy_rate::run(&fig10).emit_into(&out);
    let mut fig11 = b::fig11_width::Params::from_args(&args);
    fig11.files = s(2_000).max(500);
    fig11.updates = u(20_000);
    fig11.runs = args.usize("runs", 10);
    b::fig11_width::run(&fig11).emit_into(&out);
    b::fig12_overhead::run(&b::fig12_overhead::Params {
        files: s(10_000).max(1_000),
        days: 34,
        seed: 2020,
        updates: u(2_000),
        width: 64,
        workers,
    })
    .emit_into(&out);
    b::fig13_aggregation::run(&b::fig13_aggregation::Params {
        files: s(10_000),
        days: 35,
        seed: 2020,
        updates: u(150_000),
        width: 64,
        groups: s(600).max(60),
        psi: s(300).max(30),
        workers,
    })
    .emit_into(&out);
    b::ablation_reward::run(&b::ablation_reward::Params {
        files: s(2_000).max(500),
        days: 35,
        seed: 2020,
        updates: u(30_000),
        width: 32,
    })
    .emit_into(&out);
    b::ablation_trainer::run(&b::ablation_trainer::Params {
        files: s(2_000).max(500),
        days: 35,
        seed: 2020,
        updates: u(30_000),
        width: 32,
    })
    .emit_into(&out);
    b::ablation_prediction::run(&b::ablation_prediction::Params {
        files: s(5_000).max(500),
        days: 35,
        seed: 2020,
        updates: u(100_000),
        width: 32,
    })
    .emit_into(&out);
}
