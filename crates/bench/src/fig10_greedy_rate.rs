//! Fig. 10 — optimal-action-rate learning curves for different greedy
//! rates ε.
//!
//! The paper's trade-off: larger ε explores more, converging slower but to
//! a better final rate (`ε=0.1 > 0.01 > 0.001` in final performance, the
//! reverse in early speed).

use crate::{Args, Report};
use minicost::prelude::*;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Training-trace size.
    pub files: usize,
    /// Training-trace days.
    pub days: usize,
    /// Seed.
    pub seed: u64,
    /// Update budget per ε.
    pub updates: u64,
    /// Network width.
    pub width: usize,
    /// Greedy rates to compare (paper: 0.001, 0.01, 0.1).
    pub epsilons: Vec<f64>,
    /// Number of curve points to report.
    pub points: usize,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 2_000),
            days: args.usize("days", 21),
            seed: args.u64("seed", 2020),
            updates: args.u64("updates", 30_000),
            width: args.usize("width", 32),
            epsilons: vec![0.001, 0.01, 0.1],
            points: args.usize("points", 20),
        }
    }
}

/// One ε's learning curve as `(update, optimal_rate)` samples.
#[must_use]
pub fn curve(trace: &Trace, model: &CostModel, params: &Params, epsilon: f64) -> Vec<(u64, f64)> {
    let mut cfg = crate::experiment_training(params.updates, params.width, params.seed);
    cfg.a3c.epsilon = epsilon;
    let agent = MiniCost::train(trace, model, &cfg);
    agent.result.optimal_rate_series()
}

/// Runs the experiment.
#[must_use]
pub fn run(params: &Params) -> Report {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let model = crate::experiment_model();

    let curves: Vec<Vec<(u64, f64)>> =
        params.epsilons.iter().map(|&eps| curve(&trace, &model, params, eps)).collect();

    let header: Vec<String> = std::iter::once("update".to_owned())
        .chain(params.epsilons.iter().map(|e| format!("eps_{e}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut report = Report::new(
        "fig10",
        "optimal action rate vs training steps for different greedy rates",
        &header_refs,
    );
    report.config = Some(ConfigBlock::new(params.files, params.days, params.seed, 1));

    // Sample each curve at `points` evenly spaced update counts.
    for p in 1..=params.points {
        let update = params.updates * p as u64 / params.points as u64;
        let mut row = vec![update.to_string()];
        for curve in &curves {
            // Latest observation at or before `update`.
            let rate =
                curve.iter().take_while(|(u, _)| *u <= update).last().map_or(0.0, |(_, r)| *r);
            row.push(format!("{rate:.3}"));
        }
        report.push_row(row);
    }
    for (eps, curve) in params.epsilons.iter().zip(&curves) {
        let last = curve.last().map_or(0.0, |(_, r)| *r);
        report.note(format!("final rate at eps={eps}: {last:.3}"));
    }
    report.note("paper Fig. 10: smaller eps rises faster; eps=0.1 ends highest");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_a_curve_per_epsilon() {
        let params = Params {
            files: 100,
            days: 14,
            seed: 1,
            updates: 300,
            width: 8,
            epsilons: vec![0.01, 0.1],
            points: 5,
        };
        let report = run(&params);
        assert_eq!(report.rows.len(), 5);
        assert_eq!(report.header.len(), 3);
        // Rates are valid probabilities.
        for row in &report.rows {
            for cell in &row[1..] {
                let r: f64 = cell.parse().unwrap();
                assert!((0.0..=1.0).contains(&r));
            }
        }
    }
}
