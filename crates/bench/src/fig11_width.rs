//! Fig. 11 — final optimal-action rate versus network width (filters and
//! hidden neurons), with error bars over repeated runs.
//!
//! The paper repeats each width 10 times and observes performance
//! stabilizing from 32 units and variance becoming negligible at 64+.

use crate::{Args, Report};
use minicost::prelude::*;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Training-trace size.
    pub files: usize,
    /// Training-trace days.
    pub days: usize,
    /// Base seed (run `r` uses `seed + r`).
    pub seed: u64,
    /// Update budget per run.
    pub updates: u64,
    /// Widths to sweep (paper: 4, 16, 32, 64, 128).
    pub widths: Vec<usize>,
    /// Independent runs per width (paper: 10).
    pub runs: usize,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 2_000),
            days: args.usize("days", 21),
            seed: args.u64("seed", 2020),
            updates: args.u64("updates", 20_000),
            widths: vec![4, 16, 32, 64, 128],
            runs: args.usize("runs", 10),
        }
    }
}

/// Mean and sample standard deviation.
#[must_use]
pub fn mean_sd(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Runs the experiment.
#[must_use]
pub fn run(params: &Params) -> Report {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let model = crate::experiment_model();

    let mut report = Report::new(
        "fig11",
        "final optimal-action rate (mean +- sd over runs) vs filters/neurons",
        &["width", "mean_rate", "sd", "min", "max", "runs"],
    );
    report.config = Some(ConfigBlock::new(params.files, params.days, params.seed, 1));

    for &width in &params.widths {
        let rates: Vec<f64> = (0..params.runs)
            .map(|r| {
                let cfg = crate::experiment_training(params.updates, width, params.seed + r as u64);
                let agent = MiniCost::train(&trace, &model, &cfg);
                agent.final_optimal_rate().unwrap_or(0.0)
            })
            .collect();
        let (mean, sd) = mean_sd(&rates);
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        report.push_row(vec![
            width.to_string(),
            format!("{mean:.3}"),
            format!("{sd:.3}"),
            format!("{min:.3}"),
            format!("{max:.3}"),
            params.runs.to_string(),
        ]);
    }
    report.note("paper Fig. 11: rate stabilizes from width 32; variance shrinks at 64+");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_sd_basics() {
        let (m, s) = mean_sd(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(mean_sd(&[]), (0.0, 0.0));
        assert_eq!(mean_sd(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn sweep_rows_per_width() {
        let params =
            Params { files: 100, days: 14, seed: 1, updates: 200, widths: vec![4, 8], runs: 2 };
        let report = run(&params);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            let mean: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&mean));
        }
    }
}
