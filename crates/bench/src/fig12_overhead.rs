//! Fig. 12 — per-day computing overhead of each online method.
//!
//! The paper reports the daily decision wall-clock over 34 days: *Hot* and
//! *Cold* near-zero (a tier check per file), *Greedy* and *MiniCost*
//! comparable to each other and far above the static baselines, with
//! MiniCost's per-file decision under a millisecond. Absolute numbers are
//! hardware-specific; the reproduced claims are the relative shape and the
//! sub-millisecond per-file decision.

use crate::{Args, Report};
use minicost::prelude::*;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of files.
    pub files: usize,
    /// Days to measure (paper: 34).
    pub days: usize,
    /// Seed.
    pub seed: u64,
    /// Training budget for the MiniCost agent being timed.
    pub updates: u64,
    /// Network width.
    pub width: usize,
    /// Simulation shard count (`--workers`); the decision columns report
    /// the parallel critical path, `par_speedup` the gain over serial.
    pub workers: usize,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 10_000),
            days: args.usize("days", 34),
            seed: args.u64("seed", 2020),
            updates: args.u64("updates", 2_000),
            width: args.usize("width", 64),
            workers: args.workers(),
        }
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(params: &Params) -> Report {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let model = crate::experiment_model();
    let sim_cfg = crate::experiment_sim_config(params.seed, params.workers);

    // A briefly-trained agent: decision latency is independent of training
    // quality (same forward pass).
    let agent = MiniCost::train(
        &trace,
        &model,
        &crate::experiment_training(params.updates, params.width, params.seed),
    );

    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(HotPolicy),
        Box::new(ColdPolicy),
        Box::new(GreedyPolicy),
        Box::new(agent.policy()),
    ];
    let runs: Vec<SimResult> = policies
        .iter_mut()
        .map(|policy| simulate(&trace, &model, policy.as_mut(), &sim_cfg))
        .collect();

    let mut report = Report::new(
        "fig12",
        "per-day decision overhead (ms) over the horizon",
        &["policy", "mean_ms_per_day", "max_ms_per_day", "us_per_file", "total_ms", "par_speedup"],
    );
    report.config = Some(ConfigBlock::new(params.files, params.days, params.seed, params.workers));
    for run in &runs {
        let mean =
            run.decision_millis.iter().sum::<f64>() / run.decision_millis.len().max(1) as f64;
        let max = run.decision_millis.iter().copied().fold(0.0, f64::max);
        let latency = decision_latency(run);
        report.push_row(vec![
            run.policy_name.clone(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            format!("{:.2}", mean * 1e3 / params.files as f64),
            format!("{:.1}", run.total_decision_millis()),
            format!("{:.2}x", latency.speedup()),
        ]);
    }
    report.note("paper Fig. 12: Hot/Cold near zero; Greedy and MiniCost comparable");
    report.note("paper claim: MiniCost decides each file in < 1 ms — see us_per_file");
    report.note(format!(
        "decision columns are the critical path over {} shard(s); par_speedup = serial/critical",
        sim_cfg.workers
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_shape_matches_paper() {
        let report =
            run(&Params { files: 2_000, days: 10, seed: 2, updates: 100, width: 16, workers: 1 });
        assert_eq!(report.rows.len(), 4);
        let mean_of = |name: &str| -> f64 {
            report.rows.iter().find(|r| r[0] == name).unwrap()[1].parse().unwrap()
        };
        // The static baselines must be far cheaper than the deciders.
        assert!(mean_of("hot") * 3.0 < mean_of("minicost").max(0.01));
        assert!(mean_of("cold") * 3.0 < mean_of("greedy").max(0.01) + 0.01);
        // The paper's sub-millisecond per-file claim.
        let us_per_file: f64 =
            report.rows.iter().find(|r| r[0] == "minicost").unwrap()[3].parse().unwrap();
        assert!(us_per_file < 1_000.0, "{us_per_file} us/file");
    }
}
