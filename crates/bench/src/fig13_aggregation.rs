//! Fig. 13 — cumulative cost with and without the §5.2 concurrent-request
//! aggregation enhancement.
//!
//! Compares Greedy, MiniCost, MiniCost w/ E (aggregation), and Optimal.
//! The enhancement runs Algorithm 2 weekly: Ω from the trailing week's
//! concurrency selects the top-Ψ groups applied to the next week.

use crate::{Args, Report};
use minicost::prelude::*;
use tracegen::CoRequestModel;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of files.
    pub files: usize,
    /// Horizon in days (weekly granularity).
    pub days: usize,
    /// Seed.
    pub seed: u64,
    /// Training budget.
    pub updates: u64,
    /// Network width.
    pub width: usize,
    /// Number of co-request groups synthesized.
    pub groups: usize,
    /// Top-Ψ groups aggregated per round.
    pub psi: usize,
    /// Simulation shard count (`--workers`); changes wall-clock only.
    pub workers: usize,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 10_000),
            days: args.usize("days", 35),
            seed: args.u64("seed", 2020),
            updates: args.u64("updates", 150_000),
            width: args.usize("width", 64),
            groups: args.usize("groups", 600),
            psi: args.usize("psi", 300),
            workers: args.workers(),
        }
    }
}

/// Simulates a policy week by week over the (optionally aggregated) trace,
/// returning cumulative cost per week boundary.
fn weekly_costs(
    trace: &Trace,
    model: &CostModel,
    policy: &mut dyn Policy,
    weeks: usize,
) -> Vec<Money> {
    let sim_cfg = crate::experiment_sim_config(0, minicost::default_workers());
    let mut cumulative = Vec::with_capacity(weeks);
    let mut total = Money::ZERO;
    for week in 0..weeks {
        let window = trace.day_window(week * 7..(week + 1) * 7);
        total += simulate(&window, model, policy, &sim_cfg).total_cost();
        cumulative.push(total);
    }
    cumulative
}

/// Weekly Algorithm 2 loop: selects groups on week `w-1`'s stats, applies
/// to week `w`, and accumulates the policy's cost.
fn weekly_costs_with_aggregation(
    trace: &Trace,
    model: &CostModel,
    policy: &mut dyn Policy,
    groups: &[tracegen::CoRequestGroup],
    psi: usize,
    weeks: usize,
) -> Vec<Money> {
    let sim_cfg = crate::experiment_sim_config(0, minicost::default_workers());
    let mut planner = AggregationPlanner::new(psi, groups.len());
    let mut cumulative = Vec::with_capacity(weeks);
    let mut total = Money::ZERO;
    for week in 0..weeks {
        let active: Vec<usize> = if week == 0 {
            Vec::new()
        } else {
            let window = (week - 1) * 7..week * 7;
            let omegas: Vec<Omega> = groups
                .iter()
                .map(|g| Omega::evaluate(g, trace, model, Tier::Hot, window.clone()))
                .collect();
            planner.evaluate(&omegas)
        };
        let merged = apply_aggregation(trace, groups, &active);
        let window = merged.day_window(week * 7..(week + 1) * 7);
        total += simulate(&window, model, policy, &sim_cfg).total_cost();
        cumulative.push(total);
    }
    cumulative
}

/// Runs the experiment.
#[must_use]
pub fn run(params: &Params) -> Report {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let model = crate::experiment_model();
    let weeks = params.days / 7;
    assert!(weeks >= 1, "need at least one full week");

    let split = trace.split(0.8, params.seed);
    let agent = MiniCost::train(
        &split.train,
        &model,
        &crate::experiment_training(params.updates, params.width, params.seed),
    );
    let test = &split.test;
    let groups = CoRequestModel { groups: params.groups, seed: params.seed, ..Default::default() }
        .generate(test);

    let greedy = weekly_costs(test, &model, &mut GreedyPolicy, weeks);
    let minicost = weekly_costs(test, &model, &mut agent.policy(), weeks);
    let minicost_e = weekly_costs_with_aggregation(
        test,
        &model,
        &mut agent.policy(),
        &groups,
        params.psi,
        weeks,
    );
    // Optimal replans per week window inside weekly_costs via a fresh plan:
    // approximate by planning on the full horizon then windowing — the
    // planner is per-file DP, so plan weekly exactly:
    let sim_cfg = crate::experiment_sim_config(params.seed, params.workers);
    let mut optimal_cum = Vec::with_capacity(weeks);
    let mut total = Money::ZERO;
    for week in 0..weeks {
        let window = test.day_window(week * 7..(week + 1) * 7);
        let mut opt = OptimalPolicy::plan(&window, &model, sim_cfg.initial_tier);
        total += simulate(&window, &model, &mut opt, &sim_cfg).total_cost();
        optimal_cum.push(total);
    }

    let mut report = Report::new(
        "fig13",
        "cumulative cost ($) with and without data-file aggregation",
        &["days", "greedy", "minicost", "minicost_w_E", "optimal"],
    );
    report.config = Some(ConfigBlock::new(params.files, params.days, params.seed, params.workers));
    for week in 0..weeks {
        report.push_row(vec![
            ((week + 1) * 7).to_string(),
            format!("{:.2}", greedy[week].as_dollars()),
            format!("{:.2}", minicost[week].as_dollars()),
            format!("{:.2}", minicost_e[week].as_dollars()),
            format!("{:.2}", optimal_cum[week].as_dollars()),
        ]);
    }
    let saved = minicost.last().copied().unwrap_or(Money::ZERO)
        - minicost_e.last().copied().unwrap_or(Money::ZERO);
    report.note(format!(
        "aggregation saved {} over {} weeks ({} groups, psi {})",
        saved, weeks, params.groups, params.psi
    ));
    report.note("paper Fig. 13: MiniCost w/ E sits between MiniCost and Optimal");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_does_not_hurt_greedy_pipeline() {
        // Aggregation-vs-plain comparison with the deterministic Greedy
        // policy (isolates the Algorithm 2 loop from training noise).
        let trace = Trace::generate(&crate::experiment_trace(800, 28, 8));
        let model = crate::experiment_model();
        let groups = CoRequestModel { groups: 80, seed: 8, level: 0.9, ..Default::default() }
            .generate(&trace);
        let weeks = 4;
        let plain = weekly_costs(&trace, &model, &mut GreedyPolicy, weeks);
        let merged =
            weekly_costs_with_aggregation(&trace, &model, &mut GreedyPolicy, &groups, 40, weeks);
        assert_eq!(plain.len(), weeks);
        // Cumulative series are monotone.
        assert!(plain.windows(2).all(|w| w[0] <= w[1]));
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
        // The Ω-gated enhancement should not end up more expensive.
        assert!(
            merged[weeks - 1] <= plain[weeks - 1],
            "w/E {} vs plain {}",
            merged[weeks - 1],
            plain[weeks - 1]
        );
    }

    #[test]
    fn report_smoke() {
        let report = run(&Params {
            files: 300,
            days: 14,
            seed: 3,
            updates: 200,
            width: 8,
            groups: 30,
            psi: 15,
            workers: 2,
        });
        assert_eq!(report.rows.len(), 2);
    }
}
