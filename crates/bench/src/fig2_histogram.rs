//! Fig. 2 — distribution of normalized daily request-frequency standard
//! deviations across files.
//!
//! The paper reports 81.75% / 9.93% / 5.39% / 2.3% / 0.63% of ~4M files in
//! the five buckets. Regenerates the histogram from the synthetic trace and
//! prints both the counts and the deviation from the paper's percentages.

use crate::{Args, Report};
use minicost::prelude::*;
use tracegen::analysis::{bucket_histogram, CV_BUCKET_LABELS};
use tracegen::config::PAPER_BUCKET_MIX;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of files in the generated trace.
    pub files: usize,
    /// Trace length in days (the paper analyzed ~2 months).
    pub days: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 200_000),
            days: args.usize("days", 63),
            seed: args.u64("seed", 2020),
        }
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(params: &Params) -> Report {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let hist = bucket_histogram(&trace);
    let fractions = hist.fractions();

    let mut report = Report::new(
        "fig2",
        "files per normalized-std bucket vs the paper's Wikipedia analysis",
        &["bucket", "files", "fraction", "paper", "delta"],
    );
    report.config = Some(ConfigBlock::new(params.files, params.days, params.seed, 1));
    for (i, label) in CV_BUCKET_LABELS.iter().enumerate() {
        report.push_row(vec![
            (*label).to_owned(),
            hist.counts[i].to_string(),
            format!("{:.4}", fractions[i]),
            format!("{:.4}", PAPER_BUCKET_MIX[i]),
            format!("{:+.4}", fractions[i] - PAPER_BUCKET_MIX[i]),
        ]);
    }
    report.note(format!(
        "trace: {} files x {} days, seed {}",
        params.files, params.days, params.seed
    ));
    report.note("paper Fig. 2: heavy concentration in 0-0.1 with a thin >0.8 tail");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_paper_mix() {
        let report = run(&Params { files: 5_000, days: 35, seed: 7 });
        assert_eq!(report.rows.len(), 5);
        // Parse fractions back out and compare against the paper column.
        for row in &report.rows {
            let got: f64 = row[2].parse().unwrap();
            let paper: f64 = row[3].parse().unwrap();
            assert!((got - paper).abs() < 0.05, "{row:?}");
        }
    }

    #[test]
    fn params_parse_defaults() {
        let p = Params::from_args(&Args::from_list(Vec::<String>::new()));
        assert_eq!(p.files, 200_000);
        let p =
            Params::from_args(&Args::from_list(["--files", "10"].iter().map(|s| (*s).to_owned())));
        assert_eq!(p.files, 10);
    }
}
