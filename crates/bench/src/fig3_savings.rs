//! Fig. 3 — potential daily cost savings per variability bucket.
//!
//! The paper computes, per bucket, the gap between (a) the payment when
//! every file sits in its cheaper of hot/cold, and (b) the offline optimal
//! assignment, normalized to one day. Its headline observation: the thin
//! `>0.8` bucket saves *more total money* than the huge `0-0.1` bucket
//! saves per its size — per-file savings grow steeply with variability.

use crate::{Args, Report};
use minicost::optimal::optimal_plan;
use minicost::prelude::*;
use tracegen::analysis::{bucket_members, CV_BUCKET_LABELS};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of files.
    pub files: usize,
    /// Trace days.
    pub days: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 100_000),
            days: args.usize("days", 35),
            seed: args.u64("seed", 2020),
        }
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(params: &Params) -> Report {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let model = crate::experiment_model();
    let members = bucket_members(&trace);

    let mut report = Report::new(
        "fig3",
        "potential saved money per day by variability bucket (best-of-hot/cold minus optimal)",
        &[
            "bucket",
            "files",
            "static_cost_day",
            "optimal_cost_day",
            "saved_per_day",
            "saved_per_file_day",
        ],
    );
    report.config = Some(ConfigBlock::new(params.files, params.days, params.seed, 1));

    for (bucket, files) in members.iter().enumerate() {
        let mut static_total = Money::ZERO;
        let mut optimal_total = Money::ZERO;
        for &ix in files {
            let file = &trace.files[ix];
            // The paper's static reference: all-hot or all-cold per file,
            // whichever is cheaper (archive excluded, as in §3.1). Charged
            // from the same Hot starting tier as the optimal plan, so the
            // static plans are inside Optimal's feasible set and savings
            // are non-negative by construction.
            let hot = minicost::optimal::plan_cost(
                file,
                &model,
                Tier::Hot,
                &vec![Tier::Hot; file.days()],
            );
            let cold = minicost::optimal::plan_cost(
                file,
                &model,
                Tier::Hot,
                &vec![Tier::Cool; file.days()],
            );
            static_total += hot.min(cold);
            let (_, opt) = optimal_plan(file, &model, Tier::Hot);
            optimal_total += opt;
        }
        let days = params.days as i64;
        let saved = static_total - optimal_total;
        let per_file_day = if files.is_empty() {
            0.0
        } else {
            saved.as_dollars() / files.len() as f64 / days as f64
        };
        report.push_row(vec![
            CV_BUCKET_LABELS[bucket].to_owned(),
            files.len().to_string(),
            format!("{:.4}", (static_total / days).as_dollars()),
            format!("{:.4}", (optimal_total / days).as_dollars()),
            format!("{:.4}", (saved / days).as_dollars()),
            format!("{per_file_day:.8}"),
        ]);
    }
    report
        .note("paper Fig. 3: the >0.8 bucket saves the most total money despite 100x fewer files");
    report.note("expected shape: saved_per_file_day increases monotonically with the bucket");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_are_nonnegative_and_grow_per_file() {
        let report = run(&Params { files: 4_000, days: 63, seed: 11 });
        assert_eq!(report.rows.len(), 5);
        let per_file: Vec<f64> = report.rows.iter().map(|r| r[5].parse().unwrap()).collect();
        assert!(per_file.iter().all(|&v| v >= 0.0), "{per_file:?}");
        // The paper's key claim: high-variability files save more per file
        // than stationary ones.
        assert!(
            per_file[4] > per_file[0],
            "bucket >0.8 ({}) must out-save bucket 0-0.1 ({}) per file",
            per_file[4],
            per_file[0]
        );
    }
}
