//! Fig. 4 — ARIMA 7-day request-frequency prediction error per bucket.
//!
//! The paper fits ARIMA on two months of history, predicts the next 7 daily
//! frequencies per file, and reports the 1%/median/99% of relative errors
//! per variability bucket: errors blow up for high-variability files — the
//! very files with the most savings potential, which is why a prediction-
//! only planner is insufficient and an RL policy is used instead.
//! Extension: seasonal-naive and EWMA baselines alongside ARIMA.

use crate::{Args, Report};
use forecast::{Arima, ErrorSummary, Ewma, Forecaster, SeasonalNaive};
use minicost::prelude::*;
use tracegen::analysis::{bucket_members, CV_BUCKET_LABELS};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of files.
    pub files: usize,
    /// Trace days; the last `horizon` are the prediction target.
    pub days: usize,
    /// Forecast horizon (paper: 7 days).
    pub horizon: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 20_000),
            days: args.usize("days", 63),
            horizon: args.usize("horizon", 7),
            seed: args.u64("seed", 2020),
        }
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(params: &Params) -> Report {
    assert!(params.days > params.horizon, "need history before the horizon");
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let members = bucket_members(&trace);
    let split = params.days - params.horizon;

    let forecasters: Vec<Box<dyn Forecaster>> = vec![
        Box::new(Arima::weekly_default()),
        Box::new(SeasonalNaive::new(7)),
        Box::new(Ewma::new(0.3)),
    ];

    let mut report = Report::new(
        "fig4",
        "relative 7-day prediction error percentiles per bucket (true-pred)/true",
        &["bucket", "model", "p01", "median", "p99", "samples"],
    );
    report.config = Some(ConfigBlock::new(params.files, params.days, params.seed, 1));

    for (bucket, files) in members.iter().enumerate() {
        for forecaster in &forecasters {
            let mut errors = Vec::new();
            for &ix in files {
                let file = &trace.files[ix];
                let history: Vec<f64> = file.reads[..split].iter().map(|&r| r as f64).collect();
                let truth: Vec<f64> = file.reads[split..].iter().map(|&r| r as f64).collect();
                let predicted = forecaster.forecast(&history, params.horizon);
                errors.extend(forecast::error::forecast_errors(&truth, &predicted));
            }
            if let Some(summary) = ErrorSummary::from_errors(&errors) {
                report.push_row(vec![
                    CV_BUCKET_LABELS[bucket].to_owned(),
                    forecaster.name().to_owned(),
                    format!("{:.3}", summary.p01),
                    format!("{:.3}", summary.p50),
                    format!("{:.3}", summary.p99),
                    summary.count.to_string(),
                ]);
            }
        }
    }
    report.note("paper Fig. 4: error spread widens sharply with the variability bucket");
    report.note("extension: seasonal-naive and EWMA baselines for comparison");
    report
}

/// Error spread (max |p01|, |p99|) per bucket for the ARIMA rows — used by
/// tests and EXPERIMENTS.md to check the widening-spread shape.
#[must_use]
pub fn arima_spreads(report: &Report) -> Vec<f64> {
    report
        .rows
        .iter()
        .filter(|r| r[1] == "arima")
        .map(|r| {
            let p01: f64 = r[2].parse().unwrap();
            let p99: f64 = r[4].parse().unwrap();
            p01.abs().max(p99.abs())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_widens_with_variability() {
        let report = run(&Params { files: 2_000, days: 42, horizon: 7, seed: 4 });
        let spreads = arima_spreads(&report);
        assert_eq!(spreads.len(), 5);
        // The paper's shape: the top bucket is much harder to predict than
        // the bottom bucket.
        assert!(
            spreads[4] > 2.0 * spreads[0],
            "spreads {spreads:?} should widen toward the bursty bucket"
        );
    }

    #[test]
    #[should_panic(expected = "history before the horizon")]
    fn degenerate_horizon_rejected() {
        let _ = run(&Params { files: 10, days: 7, horizon: 7, seed: 1 });
    }
}
