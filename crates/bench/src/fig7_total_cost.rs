//! Fig. 7 — total monetary cost for all files versus number of days, for
//! Hot / Cold / Greedy / MiniCost / Optimal.
//!
//! The paper's headline result: the cumulative-cost ordering is
//! `Cold > Hot > Greedy > MiniCost > Optimal` at every weekly checkpoint,
//! with MiniCost closest to the offline lower bound.

use crate::{Args, Report};
use minicost::prelude::*;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Number of files in the generated trace (80/20 split like §6.1).
    pub files: usize,
    /// Evaluation horizon in days (paper: up to 35).
    pub days: usize,
    /// Generator seed.
    pub seed: u64,
    /// A3C training budget (shared parameter updates).
    pub updates: u64,
    /// Network width (filters and hidden neurons).
    pub width: usize,
    /// Simulation shard count (`--workers`); changes wall-clock only.
    pub workers: usize,
}

impl Params {
    /// Parses from CLI arguments with figure defaults.
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        Params {
            files: args.usize("files", 10_000),
            days: args.usize("days", 35),
            seed: args.u64("seed", 2020),
            updates: args.u64("updates", 150_000),
            width: args.usize("width", 64),
            workers: args.workers(),
        }
    }
}

/// The five evaluated runs on the held-out split, in paper order.
pub struct Fig7Runs {
    /// Hot, Cold, Greedy, MiniCost, Optimal — in that order.
    pub runs: Vec<SimResult>,
    /// The held-out test trace the runs cover.
    pub test: Trace,
}

/// Trains MiniCost and evaluates all five policies on the held-out split.
#[must_use]
pub fn evaluate(params: &Params) -> Fig7Runs {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let model = crate::experiment_model();
    let split = trace.split(0.8, params.seed);

    let train_cfg = crate::experiment_training(params.updates, params.width, params.seed);
    let agent = MiniCost::train(&split.train, &model, &train_cfg);

    let sim_cfg = crate::experiment_sim_config(params.seed, params.workers);
    let test = split.test;
    // One uniform `dyn Policy` path for all five strategies, in paper order.
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(HotPolicy),
        Box::new(ColdPolicy),
        Box::new(GreedyPolicy),
        Box::new(agent.policy()),
        Box::new(OptimalPolicy::plan(&test, &model, sim_cfg.initial_tier)),
    ];
    let runs = policies
        .iter_mut()
        .map(|policy| simulate(&test, &model, policy.as_mut(), &sim_cfg))
        .collect();
    Fig7Runs { runs, test }
}

/// Runs the experiment.
#[must_use]
pub fn run(params: &Params) -> Report {
    let Fig7Runs { runs, test } = evaluate(params);

    let mut report = Report::new(
        "fig7",
        "cumulative total cost ($) for all test files vs days",
        &["days", "hot", "cold", "greedy", "minicost", "optimal"],
    );
    report.config = Some(ConfigBlock::new(params.files, params.days, params.seed, params.workers));
    let mut day = 7;
    while day <= params.days {
        let mut row = vec![day.to_string()];
        for run in &runs {
            row.push(format!("{:.2}", run.cumulative_cost(day - 1).as_dollars()));
        }
        report.push_row(row);
        day += 7;
    }
    let optimal_total = runs[4].total_cost();
    let normalized: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{}={:.3}x",
                r.policy_name,
                r.total_cost().as_dollars() / optimal_total.as_dollars()
            )
        })
        .collect();
    report.note(format!(
        "test files: {} | normalized vs optimal: {}",
        test.len(),
        normalized.join(" ")
    ));
    report.note("paper Fig. 7 ordering: Cold > Hot > Greedy > MiniCost > Optimal");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_ordering_holds_without_training() {
        // Training-free slice of the figure: the deterministic policies
        // must order Cold > Hot > Greedy >= Optimal on the standard trace.
        let trace = Trace::generate(&crate::experiment_trace(1_500, 21, 5));
        let model = crate::experiment_model();
        let cfg = crate::experiment_sim_config(5, minicost::default_workers());
        let hot = simulate(&trace, &model, &mut HotPolicy, &cfg).total_cost();
        let cold = simulate(&trace, &model, &mut ColdPolicy, &cfg).total_cost();
        let greedy = simulate(&trace, &model, &mut GreedyPolicy, &cfg).total_cost();
        let opt = simulate(
            &trace,
            &model,
            &mut OptimalPolicy::plan(&trace, &model, cfg.initial_tier),
            &cfg,
        )
        .total_cost();
        assert!(cold > hot, "cold {cold} vs hot {hot}");
        assert!(hot > greedy, "hot {hot} vs greedy {greedy}");
        assert!(greedy > opt, "greedy {greedy} vs optimal {opt}");
    }

    #[test]
    fn report_has_weekly_checkpoints() {
        // Tiny training budget: checks plumbing, not learning quality.
        let report =
            run(&Params { files: 300, days: 14, seed: 3, updates: 200, width: 8, workers: 2 });
        assert_eq!(report.rows.len(), 2); // days 7 and 14
        assert_eq!(report.header.len(), 6);
    }
}
