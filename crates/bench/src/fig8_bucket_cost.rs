//! Fig. 8 — daily monetary cost per variability bucket for the five
//! policies.
//!
//! The paper's reading: costs rise with request-frequency variability for
//! the non-adaptive policies, and the per-bucket ordering matches Fig. 7
//! (`Cold > Hot > Greedy > MiniCost > Optimal`).

use crate::fig7_total_cost::{evaluate, Fig7Runs, Params};
use crate::Report;
use minicost::prelude::*;
use tracegen::analysis::CV_BUCKET_LABELS;

/// Runs the experiment (shares Fig. 7's parameters and training run).
#[must_use]
pub fn run(params: &Params) -> Report {
    let Fig7Runs { runs, test } = evaluate(params);

    let mut report = Report::new(
        "fig8",
        "daily cost ($/day) per variability bucket and policy",
        &["bucket", "files", "hot", "cold", "greedy", "minicost", "optimal"],
    );
    report.config = Some(ConfigBlock::new(params.files, params.days, params.seed, params.workers));

    let members = tracegen::analysis::bucket_members(&test);
    let days = test.days as i64;
    let per_policy_buckets: Vec<[Money; 5]> =
        runs.iter().map(|r| bucket_costs(&test, &r.per_file)).collect();

    for (bucket, label) in CV_BUCKET_LABELS.iter().enumerate() {
        let mut row = vec![(*label).to_owned(), members[bucket].len().to_string()];
        for buckets in &per_policy_buckets {
            row.push(format!("{:.4}", (buckets[bucket] / days).as_dollars()));
        }
        report.push_row(row);
    }
    report.note("paper Fig. 8: per-bucket ordering Cold > Hot > Greedy > MiniCost > Optimal");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_rows_cover_all_policies() {
        let report =
            run(&Params { files: 300, days: 14, seed: 3, updates: 200, width: 8, workers: 2 });
        assert_eq!(report.rows.len(), 5);
        assert_eq!(report.header.len(), 7);
        // Optimal never exceeds hot in any bucket.
        for row in &report.rows {
            let hot: f64 = row[2].parse().unwrap();
            let opt: f64 = row[6].parse().unwrap();
            assert!(opt <= hot + 1e-9, "{row:?}");
        }
    }
}
