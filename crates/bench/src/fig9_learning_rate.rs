//! Fig. 9 — convergence speed (training steps until the agent matches
//! Optimal's decisions) versus learning rate.
//!
//! The paper sweeps learning rates from 1e-4 to 5.5e-3 and finds a U-shaped
//! curve with its minimum near 0.0028: too small crawls, too large zigzags.

use crate::{Args, Report};
use minicost::prelude::*;
use rl::convergence_step;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Training-trace size.
    pub files: usize,
    /// Training-trace days.
    pub days: usize,
    /// Seed.
    pub seed: u64,
    /// Update budget per learning-rate point (censoring limit).
    pub updates: u64,
    /// Network width.
    pub width: usize,
    /// Rolling optimal-action rate that counts as "converged".
    pub threshold: f64,
    /// Learning rates to sweep.
    pub learning_rates: Vec<f64>,
}

impl Params {
    /// Parses from CLI arguments with figure defaults (the paper's 19-point
    /// grid 0.0001..0.0055).
    #[must_use]
    pub fn from_args(args: &Args) -> Params {
        let points = args.usize("points", 19);
        let learning_rates = (0..points)
            .map(|i| 0.0001 + i as f64 * (0.0055 - 0.0001) / (points.max(2) - 1) as f64)
            .collect();
        Params {
            files: args.usize("files", 2_000),
            days: args.usize("days", 21),
            seed: args.u64("seed", 2020),
            updates: args.u64("updates", 30_000),
            width: args.usize("width", 32),
            threshold: args.f64("threshold", 0.7),
            learning_rates,
        }
    }
}

/// Trains at one learning rate and returns the convergence step
/// (`None` = did not converge within the budget).
#[must_use]
pub fn convergence_at(trace: &Trace, model: &CostModel, params: &Params, lr: f64) -> Option<u64> {
    let mut cfg = crate::experiment_training(params.updates, params.width, params.seed);
    cfg.a3c.learning_rate = lr;
    let agent = MiniCost::train(trace, model, &cfg);
    let rates: Vec<f64> = agent.result.progress.iter().filter_map(|p| p.optimal_rate).collect();
    let updates: Vec<u64> = agent
        .result
        .progress
        .iter()
        .filter(|p| p.optimal_rate.is_some())
        .map(|p| p.update)
        .collect();
    convergence_step(&rates, params.threshold).map(|ix| updates[ix])
}

/// Runs the experiment.
#[must_use]
pub fn run(params: &Params) -> Report {
    let trace = Trace::generate(&crate::experiment_trace(params.files, params.days, params.seed));
    let model = crate::experiment_model();

    let mut report = Report::new(
        "fig9",
        "training steps to reach the optimal-action-rate threshold vs learning rate",
        &["learning_rate", "steps_to_converge", "converged"],
    );
    report.config = Some(ConfigBlock::new(params.files, params.days, params.seed, 1));
    for &lr in &params.learning_rates {
        let steps = convergence_at(&trace, &model, params, lr);
        report.push_row(vec![
            format!("{lr:.4}"),
            steps.unwrap_or(params.updates).to_string(),
            steps.is_some().to_string(),
        ]);
    }
    report.note(format!(
        "threshold: rolling optimal-action rate >= {} (censored at {} updates)",
        params.threshold, params.updates
    ));
    report.note("paper Fig. 9: U-shaped curve, minimum near lr = 0.0028");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_lr() {
        let params = Params {
            files: 100,
            days: 14,
            seed: 1,
            updates: 300,
            width: 8,
            threshold: 0.2, // lenient: checks plumbing, not learning
            learning_rates: vec![0.001, 0.003],
        };
        let report = run(&params);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            let steps: u64 = row[1].parse().unwrap();
            assert!(steps <= 300 + 8, "{row:?}");
        }
    }

    #[test]
    fn default_grid_matches_paper_range() {
        let p = Params::from_args(&Args::from_list(Vec::<String>::new()));
        assert_eq!(p.learning_rates.len(), 19);
        assert!((p.learning_rates[0] - 0.0001).abs() < 1e-9);
        assert!((p.learning_rates[18] - 0.0055).abs() < 1e-9);
    }
}
