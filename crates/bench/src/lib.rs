//! Experiment harness for the MiniCost reproduction.
//!
//! One module per figure of the paper's evaluation (the paper has no
//! numbered tables — all results are figures). Each module exposes a
//! `Params` struct with CLI parsing and a `run()` that returns a [`Report`]
//! — a printable table that is also written to `results/<name>.csv`, so
//! EXPERIMENTS.md numbers are regenerable.
//!
//! Binaries (`fig2` … `fig13`, `run_all`) are thin wrappers over these
//! modules.

// Tests assert bit-exact float reproducibility on purpose.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod ablation_prediction;
pub mod ablation_reward;
pub mod ablation_trainer;
pub mod args;
pub mod fig10_greedy_rate;
pub mod fig11_width;
pub mod fig12_overhead;
pub mod fig13_aggregation;
pub mod fig2_histogram;
pub mod fig3_savings;
pub mod fig4_prediction;
pub mod fig7_total_cost;
pub mod fig8_bucket_cost;
pub mod fig9_learning_rate;
pub mod report;

pub use args::Args;
pub use report::Report;

use minicost::prelude::*;

/// The experiment-standard pricing model: the op-dominated regime the
/// paper's evaluation implies (see `PricingPolicy::paper_2020`).
#[must_use]
pub fn experiment_model() -> CostModel {
    CostModel::new(PricingPolicy::paper_2020())
}

/// The experiment-standard simulation configuration, built through the
/// validating [`SimConfig`] builder: paper defaults (initial tier Hot,
/// daily decisions), the run's seed, and the requested shard count.
///
/// Panics on an invalid combination — right for a lab harness.
#[must_use]
pub fn experiment_sim_config(seed: u64, workers: usize) -> SimConfig {
    match SimConfig::builder().seed(seed).workers(workers).build() {
        Ok(cfg) => cfg,
        Err(e) => panic!("experiment sim config: {e}"),
    }
}

/// The experiment-standard trace configuration at a given scale.
#[must_use]
pub fn experiment_trace(files: usize, days: usize, seed: u64) -> TraceConfig {
    TraceConfig { files, days, seed, ..TraceConfig::default() }
}

/// The experiment-standard MiniCost training configuration.
///
/// `updates` controls the training budget; `width` the paper's
/// filters/neurons knob. Tuned hyperparameters are recorded in DESIGN.md.
#[must_use]
pub fn experiment_training(updates: u64, width: usize, seed: u64) -> MiniCostConfig {
    // The tuned recipe (shaped-regret reward, oracle-guided A3C; DESIGN.md
    // §4) comes from MiniCostConfig::fast(); experiments widen and extend.
    let mut cfg = MiniCostConfig::fast();
    cfg.width = width;
    cfg.a3c.total_updates = updates;
    cfg.a3c.workers = 4;
    cfg.a3c.seed = seed;
    cfg
}
