//! Tabular experiment reports: printed to stdout and persisted as CSV (and,
//! when a run configuration is attached, as a JSON sidecar with the shared
//! `config` block of DESIGN.md §14) under `results/`.

use minicost::prelude::ConfigBlock;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// The on-disk shape of a report's JSON sidecar (DESIGN.md §14): the shared
/// `config` block first-class, then the table verbatim.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct JsonDoc {
    name: String,
    title: String,
    config: Option<ConfigBlock>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

/// One experiment's output table plus free-form notes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Experiment identifier (`"fig7"`, ...) — names the CSV file.
    pub name: String,
    /// A one-line description printed above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Table rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Interpretation notes printed after the table (paper comparison).
    pub notes: Vec<String>,
    /// The resolved run configuration; when present, [`Report::emit_into`]
    /// also writes a `<name>.json` sidecar whose `config` block matches the
    /// one `minicost bench` embeds in `BENCH_hotpath.json`.
    pub config: Option<ConfigBlock>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(name: &str, title: &str, header: &[&str]) -> Report {
        Report {
            name: name.to_owned(),
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            config: None,
        }
    }

    /// Attaches the run's resolved configuration (builder style).
    #[must_use]
    pub fn with_config(mut self, config: ConfigBlock) -> Report {
        self.config = Some(config);
        self
    }

    /// Appends a row; panics if the width differs from the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.name, self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("-- {note}\n"));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.to_table());
    }

    /// Writes the table as `results/<name>.csv` under `dir`.
    ///
    /// Returns the written path.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut file = fs::File::create(&path)?;
        writeln!(file, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(file, "{}", row.join(","))?;
        }
        Ok(path)
    }

    /// Writes the table (and the attached config block) as
    /// `<dir>/<name>.json`, the schema of DESIGN.md §14.
    ///
    /// Returns the written path.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        let doc = JsonDoc {
            name: self.name.clone(),
            title: self.title.clone(),
            config: self.config,
            header: self.header.clone(),
            rows: self.rows.clone(),
            notes: self.notes.clone(),
        };
        let body = serde_json::to_string(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        fs::write(&path, format!("{body}\n"))?;
        Ok(path)
    }

    /// Prints and persists to the workspace-standard `results/` directory.
    pub fn emit(&self) {
        self.emit_into(Path::new("results"));
    }

    /// Prints and persists CSV (plus the JSON sidecar when a config block
    /// is attached) under `dir` — the `--out` directory of the binaries.
    pub fn emit_into(&self, dir: &Path) {
        self.print();
        match self.write_csv(dir) {
            Ok(path) => println!("-- wrote {}", path.display()),
            Err(e) => eprintln!("-- could not write CSV: {e}"),
        }
        if self.config.is_some() {
            match self.write_json(dir) {
                Ok(path) => println!("-- wrote {}", path.display()),
                Err(e) => eprintln!("-- could not write JSON: {e}"),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("figX", "demo", &["day", "cost"]);
        r.push_row(vec!["7".into(), "1.25".into()]);
        r.push_row(vec!["14".into(), "2.50".into()]);
        r.note("shape matches");
        r
    }

    #[test]
    fn table_contains_all_cells() {
        let t = sample().to_table();
        assert!(t.contains("figX"));
        assert!(t.contains("day"));
        assert!(t.contains("1.25"));
        assert!(t.contains("-- shape matches"));
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join(format!("minicost-report-{}", std::process::id()));
        let path = sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "day,cost\n7,1.25\n14,2.50\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        let mut r = Report::new("x", "y", &["a", "b"]);
        r.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn json_sidecar_embeds_the_shared_config_block() {
        let dir = std::env::temp_dir().join(format!("minicost-json-{}", std::process::id()));
        let report = sample().with_config(ConfigBlock::new(300, 14, 3, 2));
        let path = report.write_json(&dir).unwrap();
        let doc: JsonDoc = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        // The `config` object is the exact ConfigBlock schema every bench
        // artifact shares (DESIGN.md §14).
        assert_eq!(doc.config, Some(ConfigBlock::new(300, 14, 3, 2)));
        assert_eq!(doc.name, "figX");
        assert_eq!(doc.rows[0][1], "1.25");
        std::fs::remove_dir_all(&dir).ok();
    }
}
