//! Concurrent-requested data file aggregation (§5.2 of the paper).
//!
//! Files that are frequently requested together (e.g. assets of one web
//! page) can be merged into one aggregate replica: a concurrent request
//! then costs one read operation instead of `n`. The replica consumes extra
//! storage, so aggregation pays off only when Eq. 15 holds; the paper
//! condenses the trade-off into the aggregation coefficient (Eq. 16)
//!
//! ```text
//! Ω = (n - 1) · r_dc / Σ D_i  -  up_j / urf
//! ```
//!
//! with `r_dc` the mean concurrent request count, `D_i` the member sizes,
//! `up_j` the storage unit price, and `urf` the read-operation unit price.
//! `Ω > 0` ⟺ aggregation saves money; higher Ω saves more. Algorithm 2
//! selects the top-Ψ groups by Ω each period and deletes an aggregate whose
//! Ω stays negative for two consecutive periods.

use pricing::{CostModel, Tier};
use serde::{Deserialize, Serialize};
use tracegen::{CoRequestGroup, FileId, FileSeries, Trace};

/// Computes Eq. 16's aggregation coefficient for one group over the daily
/// mean concurrent rate `mean_concurrent`, pricing the replica in `tier`.
///
/// Units: `up_j` is the *daily* storage price per GB (monthly price
/// pro-rated, matching the simulator's billing) and `urf` the per-operation
/// read price.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Omega(pub f64);

impl Omega {
    /// Evaluates Ω for `group` using concurrent counts averaged over days
    /// `window` of `trace`.
    ///
    /// Panics if the group has fewer than 2 members or references files
    /// outside the trace.
    #[must_use]
    pub fn evaluate(
        group: &CoRequestGroup,
        trace: &Trace,
        model: &CostModel,
        tier: Tier,
        window: std::ops::Range<usize>,
    ) -> Omega {
        let n = group.members.len();
        assert!(n >= 2, "aggregation needs at least 2 files");
        let total_size: f64 = group.members.iter().map(|id| trace.file(*id).size_gb).sum();
        let mean_concurrent = group.mean_concurrent(window);
        Omega::from_parts(n, mean_concurrent, total_size, model, tier)
    }

    /// Ω from raw quantities (Eq. 16).
    #[must_use]
    pub fn from_parts(
        n: usize,
        mean_concurrent: f64,
        total_size_gb: f64,
        model: &CostModel,
        tier: Tier,
    ) -> Omega {
        assert!(n >= 2, "aggregation needs at least 2 files");
        assert!(total_size_gb > 0.0, "aggregate size must be positive");
        let prices = model.policy().tier(tier);
        let up_daily = prices.storage_gb_month / pricing::policy::DAYS_PER_MONTH;
        let urf_per_op = prices.read_per_10k / pricing::policy::OPS_PER_PRICE_UNIT;
        let gain = (n as f64 - 1.0) * mean_concurrent / total_size_gb;
        Omega(gain - up_daily / urf_per_op.max(f64::MIN_POSITIVE))
    }

    /// Eq. 15's minimum concurrent request rate for aggregation to pay off
    /// (the `r_dc` threshold).
    #[must_use]
    pub fn threshold_rdc(n: usize, total_size_gb: f64, model: &CostModel, tier: Tier) -> f64 {
        assert!(n >= 2, "aggregation needs at least 2 files");
        let prices = model.policy().tier(tier);
        let up_daily = prices.storage_gb_month / pricing::policy::DAYS_PER_MONTH;
        let urf_per_op = prices.read_per_10k / pricing::policy::OPS_PER_PRICE_UNIT;
        up_daily * total_size_gb / ((n as f64 - 1.0) * urf_per_op.max(f64::MIN_POSITIVE))
    }

    /// `true` when aggregation is profitable.
    #[must_use]
    pub fn is_beneficial(self) -> bool {
        self.0 > 0.0
    }
}

/// Algorithm 2: periodic top-Ψ group selection with a two-period negative-Ω
/// eviction rule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AggregationPlanner {
    /// Maximum number of groups aggregated at once (the paper's Ψ).
    pub psi: usize,
    /// Evict an active group after this many consecutive negative-Ω
    /// evaluations (paper: two consecutive weeks).
    pub drop_after: usize,
    negative_streak: Vec<usize>,
    active: Vec<bool>,
}

impl AggregationPlanner {
    /// Creates a planner over `n_groups` candidate groups.
    #[must_use]
    pub fn new(psi: usize, n_groups: usize) -> AggregationPlanner {
        AggregationPlanner {
            psi,
            drop_after: 2,
            negative_streak: vec![0; n_groups],
            active: vec![false; n_groups],
        }
    }

    /// Currently active group indices.
    #[must_use]
    pub fn active_groups(&self) -> Vec<usize> {
        self.active.iter().enumerate().filter_map(|(i, &a)| a.then_some(i)).collect()
    }

    /// One Algorithm 2 evaluation round: given this period's Ω per group,
    /// select the top-Ψ beneficial groups, track negative streaks, and
    /// evict stale aggregates. Returns the new active set.
    pub fn evaluate(&mut self, omegas: &[Omega]) -> Vec<usize> {
        assert_eq!(omegas.len(), self.active.len(), "omega count mismatch");

        // Track negative streaks for eviction (Algorithm 2 lines 8-9).
        for (i, omega) in omegas.iter().enumerate() {
            if omega.is_beneficial() {
                self.negative_streak[i] = 0;
            } else {
                self.negative_streak[i] += 1;
                if self.active[i] && self.negative_streak[i] >= self.drop_after {
                    self.active[i] = false;
                }
            }
        }

        // Rank beneficial groups by Ω descending, take the top Ψ.
        let mut ranked: Vec<usize> =
            (0..omegas.len()).filter(|&i| omegas[i].is_beneficial()).collect();
        ranked.sort_by(|&a, &b| omegas[b].0.total_cmp(&omegas[a].0));
        ranked.truncate(self.psi);

        // Newly selected groups become active; active groups not in the
        // top-Ψ stay active until their Ω goes negative long enough
        // (the paper only deletes on sustained negative Ω).
        for &i in &ranked {
            self.active[i] = true;
        }
        self.active_groups()
    }
}

/// Materializes an aggregation decision into a modified trace:
///
/// * each member of an active group loses its concurrent requests (they are
///   served by the replica);
/// * one aggregate file per active group is appended, sized `Σ D_i`, whose
///   daily reads equal the concurrent request count.
///
/// Inactive groups leave the trace untouched. The returned trace is what
/// the tier-assignment policies then run on (MiniCost w/ E in Fig. 13).
#[must_use]
pub fn apply_aggregation(trace: &Trace, groups: &[CoRequestGroup], active: &[usize]) -> Trace {
    let mut files = trace.files.clone();
    for &gix in active {
        let group = &groups[gix];
        for member in &group.members {
            let file = &mut files[member.index()];
            for (day, reads) in file.reads.iter_mut().enumerate() {
                *reads = reads.saturating_sub(group.concurrent[day]);
            }
        }
        let size_gb: f64 = group.members.iter().map(|m| trace.file(*m).size_gb).sum();
        files.push(FileSeries {
            id: FileId::from_index(files.len()),
            size_gb,
            reads: group.concurrent.clone(),
            writes: vec![0; trace.days],
        });
    }
    Trace { days: trace.days, files }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::HotPolicy;
    use crate::sim::{simulate, SimConfig};
    use pricing::PricingPolicy;
    use proptest::prelude::*;
    use tracegen::TraceConfig;

    fn model() -> CostModel {
        CostModel::new(PricingPolicy::azure_blob_2020())
    }

    #[test]
    fn omega_sign_matches_eq15_threshold() {
        let m = model();
        for &(n, size) in &[(2usize, 0.5f64), (3, 2.0), (5, 10.0)] {
            let threshold = Omega::threshold_rdc(n, size, &m, Tier::Hot);
            let below = Omega::from_parts(n, threshold * 0.99, size, &m, Tier::Hot);
            let above = Omega::from_parts(n, threshold * 1.01, size, &m, Tier::Hot);
            assert!(!below.is_beneficial(), "below threshold must not benefit");
            assert!(above.is_beneficial(), "above threshold must benefit");
        }
    }

    #[test]
    fn omega_grows_with_concurrency_and_group_size() {
        let m = model();
        let base = Omega::from_parts(2, 100.0, 1.0, &m, Tier::Hot).0;
        assert!(Omega::from_parts(2, 200.0, 1.0, &m, Tier::Hot).0 > base);
        assert!(Omega::from_parts(4, 100.0, 1.0, &m, Tier::Hot).0 > base);
        assert!(Omega::from_parts(2, 100.0, 5.0, &m, Tier::Hot).0 < base);
    }

    fn two_file_trace(reads_each: u64, concurrent: u64, days: usize) -> (Trace, CoRequestGroup) {
        let mk = |id: u32| FileSeries {
            id: FileId(id),
            size_gb: 0.1,
            reads: vec![reads_each; days],
            writes: vec![0; days],
        };
        let trace = Trace { days, files: vec![mk(0), mk(1)] };
        let group = CoRequestGroup {
            members: vec![FileId(0), FileId(1)],
            concurrent: vec![concurrent; days],
        };
        (trace, group)
    }

    #[test]
    fn positive_omega_aggregation_reduces_hot_cost() {
        // High concurrency on small files: Eq. 15 clearly satisfied.
        let (trace, group) = two_file_trace(10_000, 8_000, 7);
        let m = model();
        let omega = Omega::evaluate(&group, &trace, &m, Tier::Hot, 0..7);
        assert!(omega.is_beneficial(), "omega {omega:?}");

        let cfg = SimConfig::default();
        let plain = simulate(&trace, &m, &mut HotPolicy, &cfg).total_cost();
        let merged = apply_aggregation(&trace, &[group], &[0]);
        let aggregated = simulate(&merged, &m, &mut HotPolicy, &cfg).total_cost();
        assert!(aggregated < plain, "aggregated {aggregated} must beat plain {plain}");
    }

    #[test]
    fn negative_omega_aggregation_backfires() {
        // Two reads per day shared across a large pair: storage dominates.
        let mk = |id: u32| FileSeries {
            id: FileId(id),
            size_gb: 50.0,
            reads: vec![2; 7],
            writes: vec![0; 7],
        };
        let trace = Trace { days: 7, files: vec![mk(0), mk(1)] };
        let group = CoRequestGroup { members: vec![FileId(0), FileId(1)], concurrent: vec![1; 7] };
        let m = model();
        let omega = Omega::evaluate(&group, &trace, &m, Tier::Hot, 0..7);
        assert!(!omega.is_beneficial(), "omega {omega:?}");

        let cfg = SimConfig::default();
        let plain = simulate(&trace, &m, &mut HotPolicy, &cfg).total_cost();
        let merged = apply_aggregation(&trace, &[group], &[0]);
        let aggregated = simulate(&merged, &m, &mut HotPolicy, &cfg).total_cost();
        assert!(aggregated > plain, "backfire expected: {aggregated} vs {plain}");
    }

    #[test]
    fn apply_aggregation_conserves_concurrent_reads() {
        let (trace, group) = two_file_trace(1_000, 400, 3);
        let merged = apply_aggregation(&trace, std::slice::from_ref(&group), &[0]);
        assert_eq!(merged.files.len(), 3);
        // Members lose exactly the concurrent count...
        assert!(merged.files[0].reads.iter().all(|&r| r == 600));
        // ...the replica serves it...
        assert_eq!(merged.files[2].reads, vec![400, 400, 400]);
        // ...and its size is the member total.
        assert!((merged.files[2].size_gb - 0.2).abs() < 1e-12);
        // Total reads drop by (n-1) * concurrent per day.
        assert_eq!(
            trace.total_reads() - merged.total_reads(),
            400 * 3 // one member's worth per day over 3 days
        );
    }

    #[test]
    fn inactive_groups_leave_trace_unchanged() {
        let (trace, group) = two_file_trace(1_000, 400, 3);
        let merged = apply_aggregation(&trace, &[group], &[]);
        assert_eq!(merged, trace);
    }

    #[test]
    fn planner_selects_top_psi() {
        let m = model();
        let omegas: Vec<Omega> = [5.0, -1.0, 9.0, 2.0, 0.5].iter().map(|&v| Omega(v)).collect();
        let _ = &m;
        let mut planner = AggregationPlanner::new(2, 5);
        let active = planner.evaluate(&omegas);
        assert_eq!(active, vec![0, 2], "top-2 by omega: groups 2 (9.0) and 0 (5.0)");
    }

    #[test]
    fn planner_evicts_after_two_negative_rounds() {
        let mut planner = AggregationPlanner::new(2, 2);
        // Round 1: group 0 beneficial, activated.
        assert_eq!(planner.evaluate(&[Omega(3.0), Omega(-1.0)]), vec![0]);
        // Round 2: goes negative — still active (streak 1 < 2).
        assert_eq!(planner.evaluate(&[Omega(-0.5), Omega(-1.0)]), vec![0]);
        // Round 3: negative again — evicted.
        assert_eq!(planner.evaluate(&[Omega(-0.5), Omega(-1.0)]), Vec::<usize>::new());
    }

    #[test]
    fn planner_streak_resets_on_recovery() {
        let mut planner = AggregationPlanner::new(1, 1);
        planner.evaluate(&[Omega(1.0)]);
        planner.evaluate(&[Omega(-1.0)]);
        planner.evaluate(&[Omega(1.0)]); // recovery resets the streak
        planner.evaluate(&[Omega(-1.0)]);
        // Only one consecutive negative: still active.
        assert_eq!(planner.active_groups(), vec![0]);
    }

    #[test]
    fn planner_keeps_active_groups_not_in_top_psi() {
        let mut planner = AggregationPlanner::new(1, 2);
        // Group 0 wins round 1.
        assert_eq!(planner.evaluate(&[Omega(5.0), Omega(1.0)]), vec![0]);
        // Group 1 wins round 2, but group 0 is still beneficial: both stay.
        let active = planner.evaluate(&[Omega(2.0), Omega(4.0)]);
        assert_eq!(active, vec![0, 1]);
    }

    #[test]
    fn omega_evaluate_over_real_trace() {
        let trace = Trace::generate(&TraceConfig::small(50, 14, 21));
        let groups = tracegen::CoRequestModel { groups: 5, ..Default::default() }.generate(&trace);
        let m = model();
        for g in &groups {
            let omega = Omega::evaluate(g, &trace, &m, Tier::Hot, 0..7);
            assert!(omega.0.is_finite());
        }
    }

    #[test]
    fn aggregation_output_identical_under_permuted_insertion_order() {
        // Determinism regression (DESIGN.md §8): feeding the same logical
        // group set in a different order must produce a bit-identical cost.
        // This is the property lint L5 (hashmap-iter-determinism) protects —
        // had groups flowed through a HashMap, insertion order could leak
        // into the float accumulation below.
        let trace = Trace::generate(&TraceConfig::small(60, 14, 7));
        let groups = tracegen::CoRequestModel { groups: 6, ..Default::default() }.generate(&trace);
        let m = model();
        let cfg = SimConfig::default();

        // Run 1: groups stored in discovery order, activated 0..n.
        let active_fwd: Vec<usize> = (0..groups.len()).collect();
        let merged_fwd = apply_aggregation(&trace, &groups, &active_fwd);

        // Run 2: the same groups stored permuted; `active` walks them in the
        // same *logical* order via the inverse permutation.
        let perm = [3usize, 5, 0, 4, 2, 1];
        let stored: Vec<CoRequestGroup> = perm.iter().map(|&i| groups[i].clone()).collect();
        let active_inv: Vec<usize> =
            (0..groups.len()).map(|k| perm.iter().position(|&p| p == k).unwrap()).collect();
        let merged_perm = apply_aggregation(&trace, &stored, &active_inv);

        assert_eq!(merged_fwd, merged_perm, "merged trace must not depend on storage order");
        let cost_fwd = simulate(&merged_fwd, &m, &mut HotPolicy, &cfg).total_cost();
        let cost_perm = simulate(&merged_perm, &m, &mut HotPolicy, &cfg).total_cost();
        assert_eq!(cost_fwd, cost_perm, "aggregated cost must be identical to the micro-dollar");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn singleton_group_rejected() {
        let m = model();
        let _ = Omega::from_parts(1, 100.0, 1.0, &m, Tier::Hot);
    }

    proptest! {
        #[test]
        fn eq15_and_eq16_agree(
            n in 2usize..6,
            rdc in 0.0f64..5_000.0,
            size in 0.01f64..20.0,
        ) {
            let m = model();
            let omega = Omega::from_parts(n, rdc, size, &m, Tier::Hot);
            let threshold = Omega::threshold_rdc(n, size, &m, Tier::Hot);
            prop_assert_eq!(omega.is_beneficial(), rdc > threshold);
        }

        #[test]
        fn aggregation_cost_delta_matches_omega_sign(
            reads in 100u64..20_000,
            concurrent_frac in 0.05f64..0.95,
            size_gb in 0.01f64..30.0,
        ) {
            // Uniform series: the analytic Eq. 13/14 trade-off must agree
            // with the simulator's measured cost delta under HotPolicy.
            let days = 7;
            let concurrent = (reads as f64 * concurrent_frac) as u64;
            let mk = |id: u32| FileSeries {
                id: FileId(id),
                size_gb,
                reads: vec![reads; days],
                writes: vec![0; days],
            };
            let trace = Trace { days, files: vec![mk(0), mk(1)] };
            let group = CoRequestGroup {
                members: vec![FileId(0), FileId(1)],
                concurrent: vec![concurrent; days],
            };
            let m = model();
            let omega = Omega::evaluate(&group, &trace, &m, Tier::Hot, 0..days);
            let cfg = SimConfig::default();
            let plain = simulate(&trace, &m, &mut HotPolicy, &cfg).total_cost();
            let merged = apply_aggregation(&trace, &[group], &[0]);
            let aggregated = simulate(&merged, &m, &mut HotPolicy, &cfg).total_cost();
            // Allow the knife-edge zone where rounding to whole operations
            // blurs the sign.
            prop_assume!(omega.0.abs() > 0.5);
            if omega.is_beneficial() {
                prop_assert!(aggregated <= plain, "omega {} but {} > {}", omega.0, aggregated, plain);
            } else {
                prop_assert!(aggregated >= plain, "omega {} but {} < {}", omega.0, aggregated, plain);
            }
        }
    }
}
