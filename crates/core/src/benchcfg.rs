//! The shared JSON `config` block every benchmark artifact embeds.
//!
//! `minicost bench` (the hot-path benchmark, `BENCH_hotpath.json`) and the
//! figure binaries' JSON sidecars (`results/<name>.json`) all lead with the
//! same four-field `config` object, so artifact consumers — the CI
//! bench-smoke job, the perf-trajectory tooling of DESIGN.md §14 — parse
//! one schema regardless of which binary produced the file. The type lives
//! in the core crate because the `minicost` CLI cannot depend on the
//! experiment harness (the dependency points the other way).

use serde::{Deserialize, Serialize};

/// The canonical run-configuration block serialized at the top of every
/// benchmark JSON artifact (DESIGN.md §14).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigBlock {
    /// Number of files in the generated trace.
    pub files: usize,
    /// Trace horizon in days.
    pub days: usize,
    /// Generator / simulation seed.
    pub seed: u64,
    /// Simulation shard count — the largest one for multi-ladder runs.
    pub workers: usize,
}

impl ConfigBlock {
    /// Builds a config block from the run's resolved parameters.
    #[must_use]
    pub fn new(files: usize, days: usize, seed: u64, workers: usize) -> ConfigBlock {
        ConfigBlock { files, days, seed, workers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_with_stable_field_names() {
        let block = ConfigBlock::new(100, 35, 2020, 4);
        let json = serde_json::to_string(&block).unwrap();
        assert_eq!(json, r#"{"files":100,"days":35,"seed":2020,"workers":4}"#);
        let back: ConfigBlock = serde_json::from_str(&json).unwrap();
        assert_eq!(back, block);
    }
}
