//! `minicost` — the command-line front end.
//!
//! ```text
//! minicost generate --files 5000 --days 35 --seed 7 --out trace.csv
//! minicost analyze  --trace trace.csv
//! minicost train    --trace trace.csv --updates 100000 --width 32 --out agent.json
//! minicost evaluate --trace trace.csv --agent agent.json
//! ```
//!
//! `generate` writes a synthetic calibrated trace (or bring your own CSV in
//! the `tracegen::io` interchange format, e.g. converted from a real
//! pagecounts dump); `analyze` prints the Fig. 2 variability histogram;
//! `train` fits a MiniCost agent on the 80% split and saves it as JSON;
//! `evaluate` compares Hot/Cold/Greedy/MiniCost/Optimal on the 20% split.

use minicost::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use store::{JobId, Journal, MigrateConfig, MigrationJob, Migrator, PoolBuild, StoragePool};

/// A CLI failure carrying the process exit code. `serve` maps its error
/// taxonomy onto distinct codes (see [`USAGE`]); every other command exits
/// 1 on failure.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    /// A generic (exit 1) failure.
    fn general(message: String) -> CliError {
        CliError { code: 1, message }
    }

    /// A configuration/usage failure (exit 2).
    fn config(message: String) -> CliError {
        CliError { code: 2, message }
    }
}

/// The `serve` exit-code taxonomy: 2 for configuration errors, 3 for
/// unrecoverable snapshot state (corrupt beyond rotation, or incompatible
/// with the run), 4 for faults that outlived the retry budget, 5 for an
/// unrecoverable object-store state (journal/pool disagreement), 6 for an
/// injected crash mid-migration (restart to recover), 1 otherwise.
fn serve_exit_code(e: &ServeError) -> u8 {
    match e {
        ServeError::Config(_) => 2,
        ServeError::Snapshot(_)
        | ServeError::SnapshotMismatch(_)
        | ServeError::Unrecoverable(_) => 3,
        ServeError::RetriesExhausted { .. } => 4,
        ServeError::Pool(_) => 5,
        ServeError::InjectedCrash(_) => 6,
        ServeError::Stream(_) => 1,
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(args) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => generate(&flags).map_err(CliError::general),
        "analyze" => analyze(&flags).map_err(CliError::general),
        "train" => train(&flags).map_err(CliError::general),
        "evaluate" => evaluate(&flags).map_err(CliError::general),
        "serve" => serve_cmd(&flags),
        "bench" => bench(&flags).map_err(CliError::general),
        other => Err(CliError::general(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}\n{USAGE}", e.message);
            ExitCode::from(e.code)
        }
    }
}

const USAGE: &str = "usage:
  minicost generate --files N --days D [--seed S] --out trace.csv
  minicost analyze  --trace trace.csv
  minicost train    --trace trace.csv [--updates U] [--width W] [--seed S] \\
                    [--pricing paper|azure|aws] --out agent.json
  minicost evaluate --trace trace.csv --agent agent.json [--pricing ...] \\
                    [--workers W]
  minicost bench    [--files N] [--days D] [--seed S] [--workers W] [--quick] \\
                    [--out BENCH_hotpath.json]
  minicost serve    --trace trace.csv [--policy hot|cold|greedy | --agent agent.json] \\
                    [--decide-every N] [--seed S] [--max-tracked K] \\
                    [--checkpoint snap.json] [--checkpoint-every E] \\
                    [--checkpoint-keep R] [--max-days D] [--verify-batch true] \\
                    [--store mem | --store-dir DIR] [--migrate-bw MIBS] \\
                    [--migrate-inflight N] \\
                    [--chaos-seed C | --fault-plan plan.json] \\
                    [--degraded-policy hot|cold|greedy] [--pricing ...]

serve chaos/recovery:
  --chaos-seed C        arm the standard seeded fault plan (replayable)
  --fault-plan F.json   arm a custom fault plan from a JSON file
  --degraded-policy P   pin decisions to baseline P when the policy step
                        fails past the retry budget (default: abort)
  --checkpoint-keep R   rotated predecessors kept for restore fallback
                        (default 2); incidents are summarized on stderr

serve object store:
  --store mem           attach an in-memory tiered pool (cannot resume)
  --store-dir DIR       attach a directory-backed pool + migration journal;
                        torn migrations recover on restart
  --migrate-bw MIBS     cap modeled migration bandwidth (MiB/s, 0 = device)
  --migrate-inflight N  virtual migration lanes draining the queue (default 4)

serve exit codes:
  0 success            2 configuration error      5 unrecoverable pool error
  1 other failure      3 unrecoverable snapshot   6 injected crash mid-migration
                       4 fault budget exhausted     (restart to recover)";

type Flags = HashMap<String, String>;

/// Flags that may appear without a value (implied `true`), e.g.
/// `minicost bench --quick`.
const BOOLEAN_FLAGS: &[&str] = &["quick"];

fn parse_flags(args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut flags = HashMap::new();
    let mut args = args.peekable();
    while let Some(key) = args.next() {
        let name = key.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {key:?}"))?;
        let valueless =
            BOOLEAN_FLAGS.contains(&name) && args.peek().is_none_or(|next| next.starts_with("--"));
        let value = if valueless {
            "true".to_owned()
        } else {
            args.next().ok_or_else(|| format!("--{name} needs a value"))?
        };
        flags.insert(name.to_owned(), value);
    }
    Ok(flags)
}

fn flag<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{name} {v:?}: {e}")),
    }
}

fn required<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags.get(name).map(String::as_str).ok_or_else(|| format!("--{name} is required"))
}

fn pricing(flags: &Flags) -> Result<CostModel, String> {
    let name = flags.get("pricing").map_or("paper", String::as_str);
    let policy = match name {
        "paper" => PricingPolicy::paper_2020(),
        "azure" => PricingPolicy::azure_blob_2020(),
        "aws" => PricingPolicy::aws_s3_like(),
        other => return Err(format!("unknown pricing {other:?} (paper|azure|aws)")),
    };
    Ok(CostModel::new(policy))
}

fn load_trace(flags: &Flags) -> Result<Trace, String> {
    let path = required(flags, "trace")?;
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    tracegen::io::read_csv(file).map_err(|e| e.to_string())
}

fn generate(flags: &Flags) -> Result<(), String> {
    let cfg = TraceConfig {
        files: flag(flags, "files", 5_000usize)?,
        days: flag(flags, "days", 35usize)?,
        seed: flag(flags, "seed", 2020u64)?,
        ..TraceConfig::default()
    };
    cfg.validate()?;
    let out = required(flags, "out")?;
    let trace = Trace::generate(&cfg);
    let file = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
    tracegen::io::write_csv(&trace, file).map_err(|e| e.to_string())?;
    println!(
        "wrote {} files x {} days to {out} ({:.1}M reads)",
        trace.len(),
        trace.days,
        trace.total_reads() as f64 / 1e6
    );
    Ok(())
}

fn analyze(flags: &Flags) -> Result<(), String> {
    let trace = load_trace(flags)?;
    let summary = tracegen::analysis::summarize(&trace);
    println!(
        "{} files x {} days | mean daily reads {:.1} (peak {:.0}) | mean size {:.3} GB",
        summary.files,
        summary.days,
        summary.mean_daily_reads,
        summary.peak_daily_reads,
        summary.mean_size_gb
    );
    let hist = tracegen::analysis::bucket_histogram(&trace);
    let fractions = hist.fractions();
    println!("variability buckets (normalized daily std):");
    for (i, label) in tracegen::analysis::CV_BUCKET_LABELS.iter().enumerate() {
        println!("  {label:>8}: {:>8} files ({:.2}%)", hist.counts[i], fractions[i] * 100.0);
    }
    Ok(())
}

fn train(flags: &Flags) -> Result<(), String> {
    let trace = load_trace(flags)?;
    let model = pricing(flags)?;
    let out = required(flags, "out")?;
    let mut cfg = MiniCostConfig::fast();
    cfg.width = flag(flags, "width", 32usize)?;
    cfg.a3c.total_updates = flag(flags, "updates", 50_000u64)?;
    cfg.a3c.workers = flag(flags, "workers", 4usize)?;
    cfg.a3c.seed = flag(flags, "seed", 0u64)?;
    let split = trace.split(0.8, cfg.a3c.seed);
    eprintln!(
        "training on {} files for {} updates (width {}) ...",
        split.train.len(),
        cfg.a3c.total_updates,
        cfg.width
    );
    let agent = MiniCost::train(&split.train, &model, &cfg);
    agent.save(Path::new(out)).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "saved agent to {out} (final optimal-action rate: {})",
        agent.final_optimal_rate().map_or_else(|| "n/a".into(), |r| format!("{:.1}%", r * 100.0))
    );
    Ok(())
}

/// `minicost serve`: run a policy online over the trace's event stream
/// with bounded-memory statistics, optional checkpoint/restore with
/// rotation, and the optional chaos harness (`--chaos-seed` /
/// `--fault-plan`) exercising the supervisor's recovery paths. With
/// `--verify-batch true` the streamed ledgers are compared against the
/// batch simulator and a mismatch fails the command — the CI smoke job's
/// equivalence gate (which must hold even under a recoverable fault plan).
fn serve_cmd(flags: &Flags) -> Result<(), CliError> {
    let trace = load_trace(flags).map_err(CliError::config)?;
    let model = pricing(flags).map_err(CliError::config)?;
    let seed = flag(flags, "seed", 0u64).map_err(CliError::config)?;
    let decide_every = flag(flags, "decide-every", 1usize).map_err(CliError::config)?;

    let mut policy: Box<dyn Policy> = match flags.get("agent") {
        Some(agent_path) => {
            let agent = MiniCost::load(Path::new(agent_path))
                .map_err(|e| CliError::config(format!("{agent_path}: {e}")))?;
            Box::new(agent.policy())
        }
        None => match flags.get("policy").map_or("greedy", String::as_str) {
            "hot" => Box::new(HotPolicy),
            "cold" => Box::new(ColdPolicy),
            "greedy" => Box::new(GreedyPolicy),
            other => {
                return Err(CliError::config(format!("unknown policy {other:?} (hot|cold|greedy)")))
            }
        },
    };

    let max_tracked = match flags.get("max-tracked") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|e| CliError::config(format!("--max-tracked {v:?}: {e}")))?,
        ),
    };
    let max_days = match flags.get("max-days") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>().map_err(|e| CliError::config(format!("--max-days {v:?}: {e}")))?,
        ),
    };
    // Object-store attachment: `--store mem` for a volatile pool,
    // `--store-dir` for a durable one whose journal survives kills.
    let store_build = match (flags.get("store"), flags.get("store-dir")) {
        (Some(_), Some(_)) => {
            return Err(CliError::config(
                "--store and --store-dir are mutually exclusive".to_owned(),
            ))
        }
        (Some(v), None) if v == "mem" => Some(PoolBuild::Memory),
        (Some(v), None) => {
            return Err(CliError::config(format!(
                "unknown --store {v:?} (mem; use --store-dir DIR for a durable pool)"
            )))
        }
        (None, Some(dir)) => Some(PoolBuild::Dir(PathBuf::from(dir))),
        (None, None) => None,
    };
    let store = match store_build {
        Some(build) => Some(StoreConfig {
            build,
            migrate: MigrateConfig {
                bw_cap_mib_s: flag(flags, "migrate-bw", 0u64).map_err(CliError::config)?,
                inflight: flag(flags, "migrate-inflight", 4usize).map_err(CliError::config)?,
                ..MigrateConfig::default()
            },
        }),
        None => None,
    };

    let cfg = ServeConfig {
        decide_every,
        seed,
        max_tracked,
        checkpoint_every: flag(flags, "checkpoint-every", 0u64).map_err(CliError::config)?,
        checkpoint_path: flags.get("checkpoint").map(PathBuf::from),
        max_days,
        checkpoint_keep: flag(flags, "checkpoint-keep", ServeConfig::default().checkpoint_keep)
            .map_err(CliError::config)?,
        store,
        ..ServeConfig::default()
    };

    // Chaos/recovery configuration: an armed fault plan turns the quiet
    // supervisor into the deterministic chaos harness of DESIGN.md §11.
    let fault_plan = match (flags.get("fault-plan"), flags.get("chaos-seed")) {
        (Some(_), Some(_)) => {
            return Err(CliError::config(
                "--fault-plan and --chaos-seed are mutually exclusive".to_owned(),
            ))
        }
        (Some(path), None) => Some(FaultPlan::load(Path::new(path)).map_err(CliError::config)?),
        (None, Some(_)) => {
            let chaos_seed = flag(flags, "chaos-seed", 0u64).map_err(CliError::config)?;
            // With a store attached, the shorthand also arms the retryable
            // vdev sites (still under the recoverable fault budget).
            Some(if cfg.store.is_some() {
                FaultPlan::store_chaos(chaos_seed)
            } else {
                FaultPlan::chaos(chaos_seed)
            })
        }
        (None, None) => None,
    };
    let degraded = match flags.get("degraded-policy") {
        None => None,
        Some(name) => Some(DegradedPolicy::parse(name).map_err(CliError::config)?),
    };
    let sup_cfg = SuperviseConfig { fault_plan, degraded, ..SuperviseConfig::default() };

    let report = Supervisor::new(sup_cfg)
        .run(&trace, &model, policy.as_mut(), &cfg)
        .map_err(|e| CliError { code: serve_exit_code(&e), message: e.to_string() })?;
    if let Some(day) = report.resumed_from_day {
        println!("resumed from checkpoint at day {day}");
    }
    // Incident accounting goes to stderr so ledgers on stdout stay
    // machine-readable.
    if !report.incidents.is_empty() {
        eprintln!("incidents: {}", report.incidents.summary());
        for incident in report.incidents.iter() {
            eprintln!("  {incident}");
        }
    }
    if report.degraded_epochs > 0 {
        eprintln!("degraded epochs: {}", report.degraded_epochs);
    }
    println!(
        "served {} files through day {} ({} decision epochs, {} checkpoints): \
         total cost {} | {} tier changes | {:.2} ms deciding",
        trace.len(),
        report.days_served_through,
        report.epochs,
        report.checkpoints_written,
        report.result.total_cost(),
        report.result.tier_changes,
        report.result.total_decision_millis(),
    );
    if let Some(s) = &report.store {
        println!(
            "store: {} objects | jobs: {} committed, {} skipped, {} pinned, {} rolled back, \
             {} replayed | billed == committed ({} bytes) | {} virtual ms migrating",
            s.objects,
            s.jobs_committed,
            s.jobs_skipped,
            s.jobs_pinned,
            s.jobs_rolled_back,
            s.jobs_replayed,
            s.committed_bytes,
            s.migration_ms,
        );
    }

    if flag(flags, "verify-batch", false).map_err(CliError::config)? {
        let workers = flag(flags, "workers", default_workers()).map_err(CliError::config)?;
        let sim_cfg = SimConfig::builder()
            .seed(seed)
            .decide_every(decide_every)
            .workers(workers)
            .build()
            .map_err(|e| CliError::config(e.to_string()))?;
        let horizon = cfg.max_days.map_or(trace.days, |m| m.min(trace.days));
        let batch = simulate(&trace, &model, policy.as_mut(), &sim_cfg);
        let daily_match = report.result.daily == batch.daily[..horizon.min(batch.daily.len())];
        let per_file_match = horizon == trace.days && report.result.per_file == batch.per_file;
        let full = horizon == trace.days;
        let ok = if full { daily_match && per_file_match } else { daily_match };
        if !ok {
            return Err(CliError::general(format!(
                "streamed ledgers diverge from batch: streamed {} vs batch {}",
                report.result.total_cost(),
                batch.total_cost()
            )));
        }
        println!("verified: streamed ledgers are bit-identical to batch (workers={workers})");
    }
    Ok(())
}

/// One measured hot-path run: a policy simulated end to end at a fixed
/// shard count, reported as throughput rates plus the process's peak RSS.
#[derive(serde::Serialize)]
struct BenchRun {
    policy: String,
    workers: usize,
    seconds: f64,
    files_per_sec: f64,
    file_days_per_sec: f64,
    decisions_per_sec: f64,
    /// `VmHWM` from `/proc/self/status` (kB). The high-water mark is
    /// monotone over the process lifetime, so runs execute in ascending
    /// worker order and each value bounds every earlier run too. `None`
    /// off Linux.
    peak_rss_kb: Option<u64>,
}

/// One measured migration-pipeline run: a full batch of tier changes
/// drained through [`Migrator::run_batch`] at one throttle setting.
#[derive(serde::Serialize)]
struct MigrateBenchRun {
    /// `--migrate-bw` equivalent (0 = device speed).
    bw_cap_mib_s: u64,
    /// `--migrate-inflight` equivalent.
    inflight: usize,
    /// Jobs in the batch.
    jobs: usize,
    /// Wall-clock seconds to drain the batch.
    seconds: f64,
    /// Wall-clock jobs/second.
    jobs_per_sec: f64,
    /// Wall-clock logical bytes/second.
    bytes_per_sec: f64,
    /// Virtual ms the throttle model charged the batch.
    virtual_ms: u64,
    /// Modeled throughput: logical MiB per virtual second.
    mib_per_virtual_sec: f64,
}

/// The `BENCH_hotpath.json` artifact: the shared config block (the same
/// schema the figure binaries' JSON sidecars embed), then one entry per
/// (policy, workers) cell of the ladder, then the migration-pipeline
/// throughput grid.
#[derive(serde::Serialize)]
struct BenchDoc {
    name: String,
    config: ConfigBlock,
    quick: bool,
    results: Vec<BenchRun>,
    migrate: Vec<MigrateBenchRun>,
}

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find(|l| l.starts_with("VmHWM:"))?.split_whitespace().nth(1)?.parse().ok()
}

/// `minicost bench`: measure the columnar simulate hot path (DESIGN.md §14)
/// for Greedy and a randomly-initialized MiniCost network at each worker
/// count of the ladder (1, 4, and all cores — or just `--workers W`),
/// emitting `BENCH_hotpath.json`. `--quick` shrinks the trace for CI.
fn bench(flags: &Flags) -> Result<(), String> {
    let quick = flag(flags, "quick", false)?;
    let files = flag(flags, "files", if quick { 2_000usize } else { 20_000 })?;
    let days = flag(flags, "days", if quick { 14usize } else { 35 })?;
    let seed = flag(flags, "seed", 2020u64)?;
    let out = flags.get("out").map_or("BENCH_hotpath.json", String::as_str);
    let model = pricing(flags)?;

    let cfg = TraceConfig { files, days, seed, ..TraceConfig::default() };
    cfg.validate()?;
    let trace = Trace::generate(&cfg);

    // Ascending worker ladder so the monotone VmHWM reading stays
    // interpretable (each cell's peak covers all smaller ladders).
    let ladder: Vec<usize> = match flags.get("workers") {
        Some(v) => vec![v.parse::<usize>().map_err(|e| format!("--workers {v:?}: {e}"))?.max(1)],
        None => {
            let cores = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
            let mut ladder = vec![1usize, 4, cores];
            ladder.sort_unstable();
            ladder.dedup();
            ladder
        }
    };

    let features = FeatureConfig::default();
    let spec = rl::NetSpec {
        window: features.window,
        channels: FeatureConfig::CHANNELS,
        extras: minicost::features::EXTRA_FEATURES,
        filters: 32,
        kernel: 4,
        stride: 1,
        hidden: 32,
        actions: 3,
    };
    let actor = spec.build_actor(seed);
    let rl_params = actor.param_vector();

    let file_days = (files * days) as f64;
    let mut results = Vec::new();
    println!(
        "bench: {} files x {} days (seed {seed}), workers ladder {:?}",
        trace.len(),
        trace.days,
        ladder
    );
    println!(
        "{:<10} {:>8} {:>9} {:>13} {:>16} {:>15} {:>12}",
        "policy",
        "workers",
        "seconds",
        "files/sec",
        "file-days/sec",
        "decisions/sec",
        "peak RSS kB"
    );
    for &workers in &ladder {
        let sim_cfg =
            SimConfig::builder().seed(seed).workers(workers).build().map_err(|e| e.to_string())?;
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(GreedyPolicy),
            Box::new(RlPolicy::from_params(spec, &rl_params, features)),
        ];
        for policy in &mut policies {
            let start = std::time::Instant::now();
            let run = simulate(&trace, &model, policy.as_mut(), &sim_cfg);
            let seconds = start.elapsed().as_secs_f64();
            let rss = peak_rss_kb();
            let entry = BenchRun {
                policy: run.policy_name.clone(),
                workers,
                seconds,
                files_per_sec: files as f64 / seconds,
                file_days_per_sec: file_days / seconds,
                // Daily decisions for every file (decide_every = 1), so the
                // rate coincides with file-days/sec by construction.
                decisions_per_sec: file_days / seconds,
                peak_rss_kb: rss,
            };
            println!(
                "{:<10} {:>8} {:>9.3} {:>13.0} {:>16.0} {:>15.0} {:>12}",
                entry.policy,
                entry.workers,
                entry.seconds,
                entry.files_per_sec,
                entry.file_days_per_sec,
                entry.decisions_per_sec,
                rss.map_or_else(|| "n/a".into(), |kb| kb.to_string()),
            );
            results.push(entry);
        }
    }

    let migrate = bench_migrate(if quick { 2_000 } else { 10_000 })?;

    let max_workers = ladder.iter().copied().max().unwrap_or(1);
    let doc = BenchDoc {
        name: "bench_hotpath".to_owned(),
        config: ConfigBlock::new(files, days, seed, max_workers),
        quick,
        results,
        migrate,
    };
    let body = serde_json::to_string(&doc).map_err(|e| e.to_string())?;
    std::fs::write(out, format!("{body}\n")).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Measures the migration pipeline: one hot→cool batch of `jobs_n`
/// ~1 MB-logical objects drained through an in-memory pool at each
/// throttle setting of a small (bandwidth × lanes) grid. Wall-clock rates
/// report real pipeline overhead (journal, framing, verify); the virtual
/// columns report what the throttle model charged.
fn bench_migrate(jobs_n: usize) -> Result<Vec<MigrateBenchRun>, String> {
    let settings: &[(u64, usize)] = &[(0, 1), (0, 4), (200, 4), (50, 8)];
    let mut out = Vec::new();
    println!(
        "{:<10} {:>9} {:>8} {:>9} {:>11} {:>14} {:>12} {:>14}",
        "migrate",
        "bw MiB/s",
        "lanes",
        "seconds",
        "jobs/sec",
        "bytes/sec",
        "virtual ms",
        "MiB/virt-sec"
    );
    for &(bw, inflight) in settings {
        let mut pool = StoragePool::memory();
        let mut journal = Journal::in_memory();
        let mut jobs = Vec::with_capacity(jobs_n);
        let mut logical_total = 0u64;
        for f in 0..jobs_n as u64 {
            let logical = 1_000_000 + f * 101;
            logical_total += logical;
            pool.put(f, Tier::Hot, logical).map_err(|e| e.to_string())?;
            jobs.push(MigrationJob {
                id: JobId { day: 0, file: f, from: Tier::Hot, to: Tier::Cool },
                logical_bytes: logical,
            });
        }
        let migrator =
            Migrator::new(MigrateConfig { bw_cap_mib_s: bw, inflight, ..MigrateConfig::default() });
        let start = std::time::Instant::now();
        let batch =
            migrator.run_batch(&mut pool, &mut journal, &jobs).map_err(|e| e.to_string())?;
        let seconds = start.elapsed().as_secs_f64();
        if batch.committed_jobs as usize != jobs_n {
            return Err(format!(
                "migrate bench: {} of {jobs_n} jobs committed",
                batch.committed_jobs
            ));
        }
        let entry = MigrateBenchRun {
            bw_cap_mib_s: bw,
            inflight,
            jobs: jobs_n,
            seconds,
            jobs_per_sec: jobs_n as f64 / seconds,
            bytes_per_sec: logical_total as f64 / seconds,
            virtual_ms: batch.elapsed_ms,
            mib_per_virtual_sec: logical_total as f64
                / 1_048_576.0
                / (batch.elapsed_ms.max(1) as f64 / 1e3),
        };
        println!(
            "{:<10} {:>9} {:>8} {:>9.3} {:>11.0} {:>14.0} {:>12} {:>14.1}",
            "",
            entry.bw_cap_mib_s,
            entry.inflight,
            entry.seconds,
            entry.jobs_per_sec,
            entry.bytes_per_sec,
            entry.virtual_ms,
            entry.mib_per_virtual_sec,
        );
        out.push(entry);
    }
    Ok(out)
}

fn evaluate(flags: &Flags) -> Result<(), String> {
    let trace = load_trace(flags)?;
    let model = pricing(flags)?;
    let agent_path = required(flags, "agent")?;
    let agent = MiniCost::load(Path::new(agent_path)).map_err(|e| format!("{agent_path}: {e}"))?;
    let seed = flag(flags, "seed", 0u64)?;
    let workers = flag(flags, "workers", default_workers())?;
    let split = trace.split(0.8, seed);
    let test = &split.test;
    let sim_cfg =
        SimConfig::builder().seed(seed).workers(workers).build().map_err(|e| e.to_string())?;

    // All five comparison strategies through one `dyn Policy` code path.
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(HotPolicy),
        Box::new(ColdPolicy),
        Box::new(GreedyPolicy),
        Box::new(agent.policy()),
        Box::new(OptimalPolicy::plan(test, &model, sim_cfg.initial_tier)),
    ];
    let runs: Vec<SimResult> = policies
        .iter_mut()
        .map(|policy| simulate(test, &model, policy.as_mut(), &sim_cfg))
        .collect();
    let reference = runs.last().expect("non-empty").total_cost();
    println!("{} held-out files x {} days under {}:", test.len(), test.days, model.policy().name);
    println!("{:<10} {:>14} {:>11} {:>9}", "policy", "total cost", "vs optimal", "changes");
    for run in &runs {
        println!(
            "{:<10} {:>14} {:>10.3}x {:>9}",
            run.policy_name,
            run.total_cost().to_string(),
            run.total_cost().ratio_to(reference),
            run.tier_changes
        );
    }
    Ok(())
}
