//! The sharded parallel simulation engine.
//!
//! [`crate::sim::simulate`] at `workers > 1` partitions the fleet into
//! per-worker shards with a stable hash of [`FileId`] (seeded by
//! [`crate::sim::SimConfig::seed`]), runs each shard's full file×day loop
//! on a scoped thread with a private policy fork and private cost/metrics
//! accumulators, and merges the shard results **in fixed shard order** —
//! never in thread-completion order.
//!
//! # Determinism contract (DESIGN.md §9)
//!
//! * The partition depends only on `(FileId, seed, workers)` — not on
//!   thread scheduling, memory addresses, or hash-map iteration order.
//! * Within a shard, files are processed in ascending global index order.
//! * Every merge reduction iterates shards in partition order; integer
//!   [`Money`] accumulation is exact, so shard totals equal the
//!   single-threaded totals bit-for-bit.
//! * Wall-clock decision timings are the only fields allowed to differ
//!   between worker counts; they are merged as the per-day maximum (the
//!   parallel critical path) with the raw per-shard ledgers preserved.

use crate::fleet::FleetState;
use crate::policy::{DecisionContext, Policy};
use crate::sim::{SimConfig, SimResult};
use pricing::{CostBreakdown, CostModel, FileDay, Money, TIER_COUNT};
use std::time::Instant;
use tracegen::{FileId, Trace};

/// Stable shard assignment for one file: a splitmix64-style finalizer over
/// the id and seed, reduced modulo `workers`.
///
/// Deliberately *not* [`std::hash::Hash`]: the std `RandomState` hasher is
/// seeded per process, which would re-shuffle shards across runs.
#[must_use]
pub fn shard_of(id: FileId, seed: u64, workers: usize) -> usize {
    let mut x = u64::from(id.0) ^ seed.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // xtask-allow(panic-reachability): divisor clamped nonzero by max(1) on this line
    (x % workers.max(1) as u64) as usize
}

/// Partitions `trace`'s file indices into `workers` shards by
/// [`shard_of`]. Every shard's indices are in ascending order; the
/// concatenation of all shards is a permutation of `0..trace.files.len()`.
#[must_use]
pub fn partition(trace: &Trace, seed: u64, workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut shards = vec![Vec::new(); workers];
    for (ix, file) in trace.files.iter().enumerate() {
        shards[shard_of(file.id, seed, workers)].push(ix);
    }
    shards
}

/// The private accumulators of one shard's file×day loop: the same ledgers
/// [`SimResult`] keeps, restricted to the shard's files (`per_file` is
/// parallel to `indices`).
#[derive(Clone, Debug)]
pub struct ShardRun {
    /// Global indices of the shard's files, ascending.
    pub indices: Vec<usize>,
    /// Aggregate cost components per day for the shard's files.
    pub daily: Vec<CostBreakdown>,
    /// Cumulative cost per shard file over the whole run (parallel to
    /// `indices`).
    pub per_file: Vec<Money>,
    /// Wall-clock milliseconds this shard spent in
    /// `Policy::decide_batch_into`, one entry per decision day.
    pub decision_millis: Vec<f64>,
    /// Tier changes applied to the shard's files.
    pub tier_changes: u64,
    /// Shard files resident in each tier at the end of each day.
    pub occupancy: Vec<[usize; TIER_COUNT]>,
}

/// Runs `policy` over the shard `indices` of the columnar `fleet` for
/// every day — the single-threaded billing loop restricted to one batch of
/// files.
///
/// Panics if the policy returns a tier vector of the wrong length.
pub fn run_shard(
    fleet: &FleetState,
    model: &CostModel,
    policy: &mut dyn Policy,
    cfg: &SimConfig,
    indices: &[usize],
) -> ShardRun {
    let m = indices.len();
    let days = fleet.days();
    // Setup buffers, sized once per shard; the day loop below reuses them
    // and must stay allocation-free (the F5 `hot-alloc` gate).
    let mut current = vec![cfg.initial_tier; m];
    let mut decision = vec![cfg.initial_tier; m];
    let mut daily = Vec::with_capacity(days);
    let mut per_file = vec![Money::ZERO; m];
    let mut decision_millis = Vec::with_capacity(days);
    let mut tier_changes = 0u64;
    let mut occupancy = Vec::with_capacity(days);

    for day in 0..days {
        // Decision phase, refilling the hoisted buffer in place.
        let decided = if day % cfg.decide_every.max(1) == 0 {
            let ctx = DecisionContext { day, fleet, model, batch: indices, current: &current };
            let start = Instant::now();
            policy.decide_batch_into(&ctx, &mut decision);
            decision_millis.push(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(decision.len(), m, "policy must decide every file in the batch");
            true
        } else {
            false
        };

        // Billing phase, in ascending global index order.
        let mut breakdown = CostBreakdown::default();
        for (slot, &ix) in indices.iter().enumerate() {
            let target = if decided { decision[slot] } else { current[slot] };
            let changed_from = if target != current[slot] {
                tier_changes += 1;
                Some(current[slot])
            } else {
                None
            };
            let (reads, writes) = fleet.day_counts(ix, day);
            let day_bill = model.day_breakdown(&FileDay {
                size_gb: fleet.size_gb(ix),
                reads,
                writes,
                tier: target,
                changed_from,
            });
            per_file[slot] += day_bill.total();
            breakdown += day_bill;
            current[slot] = target;
        }
        daily.push(breakdown);
        let mut counts = [0usize; TIER_COUNT];
        for &tier in &current {
            counts[tier.index()] += 1;
        }
        occupancy.push(counts);
    }

    ShardRun {
        indices: indices.to_vec(),
        daily,
        per_file,
        decision_millis,
        tier_changes,
        occupancy,
    }
}

/// Merges shard accumulators into one [`SimResult`], iterating `shards` in
/// the order given (partition order) — an explicitly ordered reduction, so
/// the outcome is independent of which thread finished first.
///
/// `per_file` entries scatter back to global indices; day-level ledgers
/// add up exactly because [`Money`] is integer micro-dollars. The merged
/// `decision_millis` is the per-day maximum across shards (the parallel
/// critical path); the per-shard ledgers survive verbatim in
/// `shard_decision_millis`.
///
/// Panics if a shard's horizon disagrees with `days`.
#[must_use]
pub fn merge_shards(
    policy_name: &str,
    days: usize,
    files: usize,
    shards: &[ShardRun],
) -> SimResult {
    let mut daily = vec![CostBreakdown::default(); days];
    let mut per_file = vec![Money::ZERO; files];
    let mut tier_changes = 0u64;
    let mut occupancy = vec![[0usize; TIER_COUNT]; days];
    let decision_days = shards.iter().map(|s| s.decision_millis.len()).max().unwrap_or(0);
    let mut decision_millis = vec![0.0f64; decision_days];
    let mut shard_decision_millis = Vec::with_capacity(shards.len());

    for shard in shards {
        assert_eq!(shard.daily.len(), days, "shard horizon mismatch");
        for (day, bill) in shard.daily.iter().enumerate() {
            daily[day] += *bill;
        }
        for (slot, &ix) in shard.indices.iter().enumerate() {
            per_file[ix] = shard.per_file[slot];
        }
        tier_changes += shard.tier_changes;
        for (day, counts) in shard.occupancy.iter().enumerate() {
            for (tier, count) in counts.iter().enumerate() {
                occupancy[day][tier] += *count;
            }
        }
        for (k, &ms) in shard.decision_millis.iter().enumerate() {
            if ms > decision_millis[k] {
                decision_millis[k] = ms;
            }
        }
        shard_decision_millis.push(shard.decision_millis.clone());
    }

    SimResult {
        policy_name: policy_name.to_owned(),
        daily,
        per_file,
        decision_millis,
        shard_decision_millis,
        tier_changes,
        occupancy,
    }
}

/// Deterministically maps `f` over `0..n` using up to `workers` scoped
/// threads over contiguous index chunks, returning results in index order
/// regardless of thread completion order.
///
/// `f(i)` must depend only on `i` for the output to be independent of the
/// worker count; the training pipeline uses this to build per-file oracle
/// tables in parallel.
pub fn par_map_indices<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    (lo..hi).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(values) => values,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Chunks are contiguous ascending index ranges collected in spawn
    // order, so concatenation restores index order exactly.
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GreedyPolicy;
    use crate::sim::{simulate, SimConfig};
    use pricing::PricingPolicy;
    use tracegen::TraceConfig;

    fn setup() -> (Trace, CostModel) {
        (
            Trace::generate(&TraceConfig::small(53, 14, 5)),
            CostModel::new(PricingPolicy::azure_blob_2020()),
        )
    }

    #[test]
    fn partition_covers_every_file_exactly_once() {
        let (trace, _) = setup();
        for workers in [1usize, 2, 3, 8, 64] {
            let shards = partition(&trace, 42, workers);
            assert_eq!(shards.len(), workers);
            let mut seen: Vec<usize> = shards.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..trace.len()).collect::<Vec<_>>(), "workers={workers}");
            for shard in &shards {
                assert!(shard.windows(2).all(|w| w[0] < w[1]), "ascending order");
            }
        }
    }

    #[test]
    fn shard_assignment_is_stable_across_calls() {
        let id = FileId(1234);
        for workers in [2usize, 4, 7] {
            let first = shard_of(id, 7, workers);
            assert!(first < workers);
            assert_eq!(first, shard_of(id, 7, workers));
        }
        // Different seeds shuffle the assignment (statistically; this pair
        // is a fixed regression anchor, not a property).
        let moved = (0..64u32).any(|i| shard_of(FileId(i), 1, 4) != shard_of(FileId(i), 2, 4));
        assert!(moved, "seed must influence the shard hash");
    }

    #[test]
    fn shard_hash_spreads_the_fleet() {
        let workers = 4;
        let shards = partition(&Trace::generate(&TraceConfig::small(400, 1, 9)), 3, workers);
        for (w, shard) in shards.iter().enumerate() {
            assert!(
                shard.len() >= 400 / workers / 2 && shard.len() <= 400 * 2 / workers,
                "shard {w} holds {} of 400 files — hash is badly skewed",
                shard.len()
            );
        }
    }

    #[test]
    fn merged_single_shard_equals_simulate() {
        let (trace, model) = setup();
        let cfg = SimConfig::default();
        let columns = FleetState::from_trace(&trace);
        let all: Vec<usize> = (0..trace.len()).collect();
        let shard = run_shard(&columns, &model, &mut GreedyPolicy, &cfg, &all);
        let merged = merge_shards("greedy", trace.days, trace.len(), std::slice::from_ref(&shard));
        let direct = simulate(&trace, &model, &mut GreedyPolicy, &cfg);
        assert_eq!(merged.daily, direct.daily);
        assert_eq!(merged.per_file, direct.per_file);
        assert_eq!(merged.tier_changes, direct.tier_changes);
        assert_eq!(merged.occupancy, direct.occupancy);
    }

    #[test]
    fn empty_shard_produces_zero_ledgers() {
        let (trace, model) = setup();
        let cfg = SimConfig::default();
        let columns = FleetState::from_trace(&trace);
        let shard = run_shard(&columns, &model, &mut GreedyPolicy, &cfg, &[]);
        assert_eq!(shard.daily.len(), trace.days);
        assert!(shard.daily.iter().all(|d| d.total() == Money::ZERO));
        assert_eq!(shard.decision_millis.len(), trace.days);
        assert_eq!(shard.tier_changes, 0);
    }

    #[test]
    fn par_map_preserves_index_order() {
        for workers in [1usize, 2, 3, 5, 16] {
            let out = par_map_indices(37, workers, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
        assert!(par_map_indices(0, 4, |i| i).is_empty());
    }
}
