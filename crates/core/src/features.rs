//! State featurization.
//!
//! The paper's state (§4.2.1) is `s = (F_r, F_w, D, Γ)` — read frequencies,
//! write frequencies, data size, and current storage type. The network
//! consumes a fixed-width encoding of that state:
//!
//! * a `window`-day history of read frequencies, normalized by the file's
//!   own historical mean so the policy is scale-free across the Zipf
//!   popularity range (fed to the conv filters);
//! * scalar extras appended after the window (passed around the conv by
//!   [`nn::ConvBranch`]): log-scaled mean read rate, file size, write/read
//!   ratio, and a one-hot of the current tier.

use crate::fleet::{FeatureBlock, FleetView};
use pricing::{Tier, TIER_COUNT};
use serde::{Deserialize, Serialize};
use tracegen::FileSeries;

/// Number of scalar features appended after the history window.
pub const EXTRA_FEATURES: usize = 3 + TIER_COUNT;

/// Cap on normalized history values; a 10x-mean burst saturates the input
/// rather than blowing up activations.
const HISTORY_CAP: f64 = 10.0;

/// Featurization configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// History window length in days (conv input length). The paper uses a
    /// weekly decision rhythm, so 7 is the default.
    pub window: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { window: 7 }
    }
}

impl FeatureConfig {
    /// Number of history channels fed to the conv: channel 0 carries the
    /// absolute traffic level (`log1p(reads)/10`), channel 1 the shape
    /// (reads normalized by the file's observed mean). Without the level
    /// channel, a busy steady file and a quiet steady file present
    /// identical conv inputs and the policy cannot place the hot/cool
    /// breakeven.
    pub const CHANNELS: usize = 2;

    /// Total state width: `CHANNELS * window + EXTRA_FEATURES`.
    #[must_use]
    pub fn state_dim(&self) -> usize {
        Self::CHANNELS * self.window + EXTRA_FEATURES
    }

    /// Builds the feature vector for `file` on the morning of `day`
    /// (observing only days `< day`), residing in `tier`.
    ///
    /// Days before the trace start are zero-padded, so the encoder is
    /// total: any `day <= file.days()` is valid.
    #[must_use]
    pub fn encode(&self, file: &FileSeries, day: usize, tier: Tier) -> Vec<f64> {
        self.encode_state(&file.reads, &file.writes, file.size_gb, day, tier)
    }

    /// [`FeatureConfig::encode`] over raw columns — an allocating
    /// convenience over [`FeatureConfig::encode_slices`] for call sites
    /// without a `FileSeries` at hand (e.g. columnar fleet rows).
    #[must_use]
    pub fn encode_state(
        &self,
        reads: &[u64],
        writes: &[u64],
        size_gb: f64,
        day: usize,
        tier: Tier,
    ) -> Vec<f64> {
        let mut out = vec![0.0; self.state_dim()];
        self.encode_slices(&mut out, reads, writes, size_gb, day, tier);
        out
    }

    /// Appends the feature vector for `file` on `day` in `tier` to `out`,
    /// reusing `out`'s existing allocation — the flat-buffer assembly path
    /// for callers that still hold row-major [`FileSeries`]. The decision
    /// hot loop uses [`FeatureConfig::encode_block`] instead.
    pub fn encode_into(&self, out: &mut Vec<f64>, file: &FileSeries, day: usize, tier: Tier) {
        let start = out.len();
        out.resize(start + self.state_dim(), 0.0);
        self.encode_slices(&mut out[start..], &file.reads, &file.writes, file.size_gb, day, tier);
    }

    /// Encodes one batch row per [`FleetView`] slot into `block` — the
    /// allocation-free batch featurization path: `block` is reshaped
    /// (reusing its backing buffer) and every row written in slot order,
    /// bit-identical to the per-file [`FeatureConfig::encode`] output.
    ///
    /// `current[slot]` is the tier batch entry `slot` currently occupies.
    pub fn encode_block(&self, view: &FleetView<'_>, current: &[Tier], block: &mut FeatureBlock) {
        assert_eq!(current.len(), view.len(), "one current tier per batch slot");
        block.reset(view.len(), self.state_dim());
        for (slot, &tier) in current.iter().enumerate() {
            self.encode_slices(
                block.row_mut(slot),
                view.reads(slot),
                view.writes(slot),
                view.size_gb(slot),
                view.day(),
                tier,
            );
        }
    }

    /// The featurization kernel: writes the state for one file (given its
    /// raw daily `reads`/`writes` columns and `size_gb`) on the morning of
    /// `day` in `tier` into `out`, which must be exactly
    /// [`FeatureConfig::state_dim`] long. Every other encoder is a wrapper
    /// over this, so all paths share one floating-point evaluation order.
    pub fn encode_slices(
        &self,
        out: &mut [f64],
        reads: &[u64],
        writes: &[u64],
        size_gb: f64,
        day: usize,
        tier: Tier,
    ) {
        assert!(day <= reads.len(), "day beyond series");
        assert_eq!(out.len(), self.state_dim(), "output row width mismatch");

        // Mean over the observed prefix (not the future!) for normalization.
        let observed = &reads[..day];
        let mean = if observed.is_empty() {
            0.0
        } else {
            observed.iter().sum::<u64>() as f64 / observed.len() as f64
        };
        let denom = mean + 1.0;

        // Days before the first observation are backfilled with the
        // observed mean ("assume the file has always run at its average"),
        // NOT with zeros: zero-padding is indistinguishable from genuine
        // idleness and teaches the policy to archive busy files during the
        // first week of deployment.
        //
        // Channel 0: absolute level, log-compressed. Chronological order:
        // oldest first, yesterday last.
        let mut w = 0;
        for k in 0..self.window {
            let offset = self.window - k;
            let value = if day >= offset { reads[day - offset] as f64 } else { mean };
            out[w] = (1.0 + value).ln() / 10.0;
            w += 1;
        }
        // Channel 1: shape, normalized by the file's own observed mean.
        for k in 0..self.window {
            let offset = self.window - k;
            let value = if day >= offset { reads[day - offset] as f64 } else { mean };
            out[w] = (value / denom).min(HISTORY_CAP);
            w += 1;
        }

        // Scalar extras.
        let mean_writes = if observed.is_empty() {
            0.0
        } else {
            writes[..day].iter().sum::<u64>() as f64 / day as f64
        };
        out[w] = (mean + 1.0).ln() / 10.0; // log-scale popularity
        out[w + 1] = size_gb; // ~0.1 GB typical, already unit-scale
        out[w + 2] = mean_writes / denom; // write/read ratio
        w += 3;
        for t in Tier::all() {
            out[w] = if t == tier { 1.0 } else { 0.0 };
            w += 1;
        }
        debug_assert_eq!(w, self.state_dim());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::FileId;

    fn file(reads: Vec<u64>) -> FileSeries {
        let writes = reads.iter().map(|r| r / 10).collect();
        FileSeries { id: FileId(0), size_gb: 0.1, reads, writes }
    }

    #[test]
    fn state_dim_is_channels_window_plus_extras() {
        let cfg = FeatureConfig { window: 7 };
        assert_eq!(cfg.state_dim(), 2 * 7 + EXTRA_FEATURES);
        assert_eq!(EXTRA_FEATURES, 6);
        assert_eq!(FeatureConfig::CHANNELS, 2);
    }

    #[test]
    fn channels_are_chronological_and_scaled() {
        let f = file(vec![10, 20, 30, 40]);
        let cfg = FeatureConfig { window: 3 };
        let s = cfg.encode(&f, 3, Tier::Hot);
        // Channel 0 (level): log1p(reads)/10, oldest first.
        assert!((s[0] - (11.0f64).ln() / 10.0).abs() < 1e-12);
        assert!((s[1] - (21.0f64).ln() / 10.0).abs() < 1e-12);
        assert!((s[2] - (31.0f64).ln() / 10.0).abs() < 1e-12);
        // Channel 1 (shape): reads / (observed mean + 1).
        // Observed prefix = [10, 20, 30], mean = 20, denom = 21.
        assert!((s[3] - 10.0 / 21.0).abs() < 1e-12);
        assert!((s[4] - 20.0 / 21.0).abs() < 1e-12);
        assert!((s[5] - 30.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn early_days_are_backfilled_with_the_observed_mean() {
        let f = file(vec![5, 6, 7]);
        let cfg = FeatureConfig { window: 3 };
        let s = cfg.encode(&f, 1, Tier::Hot);
        // Only day 0 (reads = 5) observed; the two older slots carry the
        // observed mean (5), indistinguishable from a steady file — which
        // is the intended prior.
        assert_eq!(s[0], s[2]);
        assert_eq!(s[1], s[2]);
        assert!(s[2] > 0.0);
        assert_eq!(s[3], s[5]);
        assert_eq!(s[4], s[5]);
        assert!(s[5] > 0.0);
    }

    #[test]
    fn day_zero_is_all_padding() {
        let f = file(vec![5, 6, 7]);
        let cfg = FeatureConfig { window: 3 };
        let s = cfg.encode(&f, 0, Tier::Cool);
        assert_eq!(&s[..6], &[0.0; 6]);
    }

    #[test]
    fn tier_one_hot_is_exclusive() {
        let f = file(vec![1, 2, 3]);
        let cfg = FeatureConfig { window: 2 };
        for tier in Tier::all() {
            let s = cfg.encode(&f, 2, tier);
            let onehot = &s[s.len() - TIER_COUNT..];
            assert_eq!(onehot.iter().sum::<f64>(), 1.0);
            assert_eq!(onehot[tier.index()], 1.0);
        }
    }

    #[test]
    fn bursts_are_capped_in_shape_channel() {
        // Mean ~1 over prefix, then a 10000x burst yesterday.
        let f = file(vec![1, 1, 1, 10_000]);
        let cfg = FeatureConfig { window: 2 };
        let s = cfg.encode(&f, 4, Tier::Hot);
        // Shape channel occupies [window..2*window); yesterday is its last.
        assert!(s[3] <= HISTORY_CAP);
        // Level channel is log-compressed, bounded even without a cap.
        assert!(s[1] < 1.0);
    }

    #[test]
    fn level_channel_separates_traffic_scales() {
        // Two steady files at different traffic levels: the shape channel
        // is (by design) nearly identical, but the level channel differs —
        // this is what lets the policy place the hot/cool breakeven.
        let quiet = file(vec![10; 8]);
        let busy = file(vec![10_000; 8]);
        let cfg = FeatureConfig { window: 4 };
        let sq = cfg.encode(&quiet, 8, Tier::Hot);
        let sb = cfg.encode(&busy, 8, Tier::Hot);
        for k in 0..4 {
            assert!(sb[k] - sq[k] > 0.3, "level slot {k}: {} vs {}", sb[k], sq[k]);
            assert!((sb[4 + k] - sq[4 + k]).abs() < 0.15, "shape slot {k}");
        }
    }

    #[test]
    fn shape_channel_is_approximately_scale_invariant() {
        let small = file(vec![10, 20, 10, 20, 10, 20, 10]);
        let big = file(vec![1000, 2000, 1000, 2000, 1000, 2000, 1000]);
        let cfg = FeatureConfig { window: 4 };
        let s1 = cfg.encode(&small, 7, Tier::Hot);
        let s2 = cfg.encode(&big, 7, Tier::Hot);
        for k in 4..8 {
            // The +1 smoothing in the denominator makes invariance
            // approximate at low magnitudes; a 10% band is the contract.
            assert!((s1[k] - s2[k]).abs() < 0.15, "slot {k}: {} vs {}", s1[k], s2[k]);
        }
    }

    #[test]
    fn encode_is_pure() {
        let f = file(vec![3, 1, 4, 1, 5]);
        let cfg = FeatureConfig::default();
        assert_eq!(cfg.encode(&f, 5, Tier::Cool), cfg.encode(&f, 5, Tier::Cool));
    }

    #[test]
    fn encode_into_appends_and_matches_encode() {
        let a = file(vec![3, 1, 4, 1, 5, 9, 2]);
        let b = file(vec![2, 7, 1, 8, 2, 8, 1]);
        let cfg = FeatureConfig { window: 4 };
        let mut buf = Vec::new();
        cfg.encode_into(&mut buf, &a, 6, Tier::Hot);
        cfg.encode_into(&mut buf, &b, 6, Tier::Archive);
        let mut expect = cfg.encode(&a, 6, Tier::Hot);
        expect.extend(cfg.encode(&b, 6, Tier::Archive));
        assert_eq!(buf, expect, "appended encodings must match per-file vectors bit-for-bit");
        assert_eq!(buf.len(), 2 * cfg.state_dim());
    }

    #[test]
    #[should_panic(expected = "beyond series")]
    fn day_out_of_range_panics() {
        let f = file(vec![1, 2]);
        let _ = FeatureConfig::default().encode(&f, 3, Tier::Hot);
    }

    #[test]
    fn encode_block_matches_per_file_encode_bit_for_bit() {
        use crate::fleet::{FeatureBlock, FleetState};
        use tracegen::Trace;

        let files: Vec<FileSeries> =
            [vec![3, 1, 4, 1, 5, 9, 2], vec![2, 7, 1, 8, 2, 8, 1], vec![0, 0, 0, 0, 0, 0, 0]]
                .into_iter()
                .map(file)
                .collect();
        let trace = Trace { days: 7, files };
        let fleet = FleetState::from_trace(&trace);
        let cfg = FeatureConfig { window: 4 };
        let batch = [2usize, 0, 1];
        let current = [Tier::Archive, Tier::Hot, Tier::Cool];
        let mut block = FeatureBlock::new();
        // Dirty the block with a different shape first: reuse must not leak.
        block.reset(7, 2);
        block.row_mut(0).fill(9.0);
        for day in [0usize, 2, 6] {
            cfg.encode_block(&fleet.view(&batch, day), &current, &mut block);
            assert_eq!(block.rows(), batch.len());
            for (slot, &ix) in batch.iter().enumerate() {
                let expect = cfg.encode(&trace.files[ix], day, current[slot]);
                assert_eq!(block.matrix().row(slot), &expect[..], "slot {slot} day {day}");
            }
        }
    }

    #[test]
    fn encode_state_matches_encode() {
        let f = file(vec![3, 1, 4, 1, 5]);
        let cfg = FeatureConfig::default();
        assert_eq!(
            cfg.encode_state(&f.reads, &f.writes, f.size_gb, 4, Tier::Cool),
            cfg.encode(&f, 4, Tier::Cool)
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn encode_slices_rejects_wrong_width() {
        let f = file(vec![1, 2, 3]);
        let cfg = FeatureConfig { window: 2 };
        let mut out = vec![0.0; cfg.state_dim() + 1];
        cfg.encode_slices(&mut out, &f.reads, &f.writes, f.size_gb, 1, Tier::Hot);
    }
}
