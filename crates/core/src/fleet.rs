//! Columnar (struct-of-arrays) fleet state for the decision hot loop.
//!
//! The simulate/serve day loop used to walk `Vec<FileSeries>` — one heap
//! object per file, with the per-day counts behind two pointer hops. At
//! fleet scale the decision sweep is memory-bound, so the engine now runs
//! on a [`FleetState`]: one dense, `FileId`-indexed block per column
//! (sizes, read series, write series), file-major with a fixed `days`
//! stride so one file's history is still a plain contiguous slice.
//!
//! Policies observe the fleet through a borrowed [`FleetView`] — an
//! immutable window over one decision batch — and batch featurization
//! lands in a [`FeatureBlock`], a reusable `files x state_dim` matrix fed
//! straight to the network forward pass. The borrowing contract is
//! deliberate: a view borrows the fleet for the duration of one decision
//! call and cannot outlive it, so policies can never retain stale fleet
//! pointers across days (DESIGN.md §14).

use nn::Matrix;
use tracegen::{FileId, Trace};

/// Dense struct-of-arrays fleet state.
///
/// Row `ix` (a file's global index) owns `sizes[ix]` and the half-open
/// slices `reads[ix*days .. (ix+1)*days]` / `writes[..]` — file-major
/// layout, so per-file history reads are contiguous and the per-day
/// billing sweep walks each column with unit stride per file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetState {
    /// Horizon length every series spans (the column stride).
    days: usize,
    /// File identities, indexed by global file index.
    ids: Vec<FileId>,
    /// File sizes, indexed by global file index.
    /// xtask-unit: GB
    sizes: Vec<f64>,
    /// Daily read counts, file-major (`ix * days + day`).
    /// xtask-unit: ops
    reads: Vec<u64>,
    /// Daily write counts, file-major (`ix * days + day`).
    /// xtask-unit: ops
    writes: Vec<u64>,
}

impl FleetState {
    /// Builds the columnar state from a row-major [`Trace`].
    ///
    /// Panics if any series length disagrees with the trace horizon —
    /// the same shapes the day loop would reject later, caught at
    /// construction instead.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> FleetState {
        let days = trace.days;
        let n = trace.files.len();
        let mut ids = Vec::with_capacity(n);
        let mut sizes = Vec::with_capacity(n);
        let mut reads = Vec::with_capacity(n * days);
        let mut writes = Vec::with_capacity(n * days);
        for file in &trace.files {
            assert_eq!(file.days(), days, "series length must equal the trace horizon");
            ids.push(file.id);
            sizes.push(file.size_gb);
            reads.extend_from_slice(&file.reads);
            writes.extend_from_slice(&file.writes);
        }
        FleetState { days, ids, sizes, reads, writes }
    }

    /// Builds directly from columns (the serve loop synthesizes these from
    /// its bounded online statistics without a `Trace` detour).
    ///
    /// Panics unless `sizes` parallels `ids` and both count columns hold
    /// exactly `ids.len() * days` entries.
    #[must_use]
    pub fn from_columns(
        days: usize,
        ids: Vec<FileId>,
        sizes: Vec<f64>,
        reads: Vec<u64>,
        writes: Vec<u64>,
    ) -> FleetState {
        assert_eq!(sizes.len(), ids.len(), "one size per file");
        assert_eq!(reads.len(), ids.len() * days, "reads column length mismatch");
        assert_eq!(writes.len(), ids.len() * days, "writes column length mismatch");
        FleetState { days, ids, sizes, reads, writes }
    }

    /// Number of files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the fleet has no files.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Horizon length every series spans.
    #[must_use]
    pub fn days(&self) -> usize {
        self.days
    }

    /// Identity of file `ix`.
    #[must_use]
    pub fn id(&self, ix: usize) -> FileId {
        self.ids[ix]
    }

    /// Size of file `ix`. Total: an out-of-range index reads as `0.0`
    /// rather than panicking on the decision hot path.
    #[must_use]
    pub fn size_gb(&self, ix: usize) -> f64 {
        self.sizes.get(ix).copied().unwrap_or_default()
    }

    /// Full daily read series of file `ix` (contiguous, length
    /// [`FleetState::days`]). Total: out of range reads as empty.
    #[must_use]
    pub fn reads(&self, ix: usize) -> &[u64] {
        let start = ix.saturating_mul(self.days);
        self.reads.get(start..start.saturating_add(self.days)).unwrap_or(&[])
    }

    /// Full daily write series of file `ix`. Total: out of range reads as
    /// empty.
    #[must_use]
    pub fn writes(&self, ix: usize) -> &[u64] {
        let start = ix.saturating_mul(self.days);
        self.writes.get(start..start.saturating_add(self.days)).unwrap_or(&[])
    }

    /// Read/write pair of file `ix` on `day`. Total: out of range reads
    /// as `(0, 0)`.
    #[must_use]
    pub fn day_counts(&self, ix: usize, day: usize) -> (u64, u64) {
        if day >= self.days {
            return (0, 0);
        }
        let at = ix.saturating_mul(self.days).saturating_add(day);
        (
            self.reads.get(at).copied().unwrap_or_default(),
            self.writes.get(at).copied().unwrap_or_default(),
        )
    }

    /// A borrowed decision-batch window (see [`FleetView`]).
    #[must_use]
    pub fn view<'a>(&'a self, batch: &'a [usize], day: usize) -> FleetView<'a> {
        FleetView { fleet: self, batch, day }
    }
}

/// A borrowed, immutable window over one decision batch of a
/// [`FleetState`].
///
/// Slot indices are positions inside the batch; [`FleetView::global`]
/// maps them back to global file indices. The view's lifetime ties it to
/// both the fleet and the batch, so policies consume it inside one
/// decision call and cannot store it (the borrowing contract of
/// DESIGN.md §14).
#[derive(Clone, Copy, Debug)]
pub struct FleetView<'a> {
    fleet: &'a FleetState,
    batch: &'a [usize],
    day: usize,
}

impl<'a> FleetView<'a> {
    /// Number of files in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// `true` when the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// The day this view decides.
    #[must_use]
    pub fn day(&self) -> usize {
        self.day
    }

    /// Global file index of batch entry `slot`. Total: an out-of-range
    /// slot maps to index `usize::MAX`, which every fleet accessor then
    /// reads as zero values.
    #[must_use]
    pub fn global(&self, slot: usize) -> usize {
        self.batch.get(slot).copied().unwrap_or(usize::MAX)
    }

    /// Size of batch entry `slot`.
    #[must_use]
    pub fn size_gb(&self, slot: usize) -> f64 {
        self.fleet.size_gb(self.global(slot))
    }

    /// Full daily read series of batch entry `slot`.
    #[must_use]
    pub fn reads(&self, slot: usize) -> &'a [u64] {
        self.fleet.reads(self.global(slot))
    }

    /// Full daily write series of batch entry `slot`.
    #[must_use]
    pub fn writes(&self, slot: usize) -> &'a [u64] {
        self.fleet.writes(self.global(slot))
    }

    /// Read/write pair of batch entry `slot` on the view's day.
    #[must_use]
    pub fn day_counts(&self, slot: usize) -> (u64, u64) {
        self.fleet.day_counts(self.global(slot), self.day)
    }
}

/// A reusable `files x state_dim` block of encoded features.
///
/// [`crate::features::FeatureConfig::encode_block`] fills one row per
/// batch entry; the backing [`Matrix`] then goes straight into the actor
/// network's buffer-reusing forward pass. Reshaping reuses the backing
/// allocation, so one block hoisted into the policy serves every decision
/// day allocation-free at steady state.
#[derive(Clone, Debug, Default)]
pub struct FeatureBlock {
    states: Matrix,
}

impl FeatureBlock {
    /// An empty block.
    #[must_use]
    pub fn new() -> FeatureBlock {
        FeatureBlock::default()
    }

    /// Reshapes to `rows x state_dim` and zero-fills, reusing the backing
    /// allocation when possible.
    pub fn reset(&mut self, rows: usize, state_dim: usize) {
        self.states.reset(rows, state_dim);
    }

    /// Number of encoded rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.states.rows()
    }

    /// Mutable feature row for batch entry `slot`.
    pub fn row_mut(&mut self, slot: usize) -> &mut [f64] {
        self.states.row_mut(slot)
    }

    /// The encoded block as a matrix (network forward input).
    #[must_use]
    pub fn matrix(&self) -> &Matrix {
        &self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::TraceConfig;

    #[test]
    fn from_trace_round_trips_every_column() {
        let trace = Trace::generate(&TraceConfig::small(17, 9, 5));
        let fleet = FleetState::from_trace(&trace);
        assert_eq!(fleet.len(), trace.files.len());
        assert_eq!(fleet.days(), trace.days);
        assert!(!fleet.is_empty());
        for (ix, file) in trace.files.iter().enumerate() {
            assert_eq!(fleet.id(ix), file.id);
            assert_eq!(fleet.size_gb(ix), file.size_gb);
            assert_eq!(fleet.reads(ix), &file.reads[..]);
            assert_eq!(fleet.writes(ix), &file.writes[..]);
            for day in 0..trace.days {
                assert_eq!(fleet.day_counts(ix, day), file.day(day));
            }
        }
    }

    #[test]
    fn view_maps_slots_through_the_batch() {
        let trace = Trace::generate(&TraceConfig::small(10, 6, 2));
        let fleet = FleetState::from_trace(&trace);
        let batch = [7usize, 2, 4];
        let view = fleet.view(&batch, 3);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.day(), 3);
        for (slot, &ix) in batch.iter().enumerate() {
            assert_eq!(view.global(slot), ix);
            assert_eq!(view.size_gb(slot), fleet.size_gb(ix));
            assert_eq!(view.reads(slot), fleet.reads(ix));
            assert_eq!(view.writes(slot), fleet.writes(ix));
            assert_eq!(view.day_counts(slot), fleet.day_counts(ix, 3));
        }
    }

    #[test]
    fn from_columns_matches_from_trace() {
        let trace = Trace::generate(&TraceConfig::small(5, 4, 9));
        let by_trace = FleetState::from_trace(&trace);
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for f in &trace.files {
            reads.extend_from_slice(&f.reads);
            writes.extend_from_slice(&f.writes);
        }
        let by_columns = FleetState::from_columns(
            trace.days,
            trace.files.iter().map(|f| f.id).collect(),
            trace.files.iter().map(|f| f.size_gb).collect(),
            reads,
            writes,
        );
        assert_eq!(by_columns, by_trace);
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn from_columns_rejects_short_series() {
        let _ = FleetState::from_columns(3, vec![FileId(0)], vec![1.0], vec![1, 2], vec![0, 0, 0]);
    }

    #[test]
    fn feature_block_reshapes_and_exposes_rows() {
        let mut block = FeatureBlock::new();
        block.reset(2, 4);
        assert_eq!(block.rows(), 2);
        block.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(block.matrix().row(0), &[0.0; 4]);
        assert_eq!(block.matrix().row(1), &[1.0, 2.0, 3.0, 4.0]);
        block.reset(1, 2); // dirty reuse must zero-fill
        assert_eq!(block.matrix().row(0), &[0.0; 2]);
    }
}
