//! # MiniCost
//!
//! A reproduction of *"A Reinforcement Learning Based System for Minimizing
//! Cloud Storage Service Cost"* (Wang, Shen, Liu, Zheng, Xu — ICPP 2020).
//!
//! MiniCost decides, for every data file of a web application stored with a
//! cloud service provider, which storage tier (hot / cold / archive) the
//! file should occupy each day, minimizing the customer's total payment —
//! storage, read/write operations, and tier-change charges (the paper's
//! Eqs. 5–9). The decision engine is an actor-critic reinforcement-learning
//! agent trained with asynchronous workers (A3C, §5.1), and an optional
//! enhancement aggregates concurrently-requested files when the saved
//! operation charges outweigh the replica storage (§5.2, Eqs. 13–16).
//!
//! ## Crate layout
//!
//! * [`sim`] — the day-stepping billing simulator; runs any [`policy::Policy`]
//!   over a trace and produces exact [`pricing::Money`] ledgers.
//! * [`engine`] — the sharded parallel engine behind [`sim::simulate`]:
//!   deterministic fleet partitioning, per-shard accumulators, and the
//!   fixed-order merge that keeps parallel runs bit-identical.
//! * [`fleet`] — the columnar (struct-of-arrays) fleet state the hot loop
//!   runs on, plus the borrowed [`fleet::FleetView`] / [`fleet::FeatureBlock`]
//!   surface policies consume.
//! * [`policy`] — the paper's five comparison strategies: `Hot`, `Cold`,
//!   `Greedy`, `Optimal` (exact per-file DP; provably the brute-force
//!   optimum), and the trained `RlPolicy`.
//! * [`optimal`] — the offline solver and its brute-force cross-check.
//! * [`features`] / [`mdp`] — state featurization, the Eq. 4 reward, and the
//!   [`rl::Env`] implementation the agent trains in.
//! * [`train`] — the end-to-end pipeline: trace → environment → A3C →
//!   deployable [`policy::RlPolicy`].
//! * [`aggregate`] — the §5.2 concurrent-request aggregation enhancement.
//! * [`serve`] — the online serving loop: streamed events drive bounded
//!   online statistics, policy decisions, exact incremental ledgers, and
//!   atomic checkpoint/restore (bit-identical to [`sim`] in exact mode).
//! * [`supervise`] — the self-healing shell around [`serve`]: bounded
//!   retries with deterministic backoff, checkpoint-rotation fallback,
//!   degraded-mode policy pinning, and the incident log — driven by the
//!   seeded chaos harness in `minicost-stream`'s `fault` module.
//! * [`metrics`] — per-bucket cost attribution and overhead timing.
//! * [`predictive`] — the forecast-then-optimize planner the paper's §3.2
//!   argues against, made executable.
//! * [`multi`] — multi-datacenter placement over `datacenter x tier`
//!   (the §4.1 generalization).
//!
//! ## Quickstart
//!
//! ```
//! use minicost::prelude::*;
//!
//! // 1. A small synthetic trace calibrated to the paper's Wikipedia stats.
//! let trace = Trace::generate(&TraceConfig::small(200, 21, 7));
//! let model = CostModel::new(PricingPolicy::azure_blob_2020());
//!
//! // 2. Simulate the always-hot baseline and the exact offline optimum.
//! let cfg = SimConfig::default();
//! let hot = simulate(&trace, &model, &mut HotPolicy, &cfg);
//! let opt = simulate(&trace, &model, &mut OptimalPolicy::plan(&trace, &model, cfg.initial_tier), &cfg);
//! assert!(opt.total_cost() <= hot.total_cost());
//! ```

#![warn(missing_docs)]
// Library code must surface failures as values (L2 no-panic-in-libs); tests
// may unwrap freely.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Tests assert bit-exact float reproducibility on purpose.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod aggregate;
pub mod benchcfg;
pub mod engine;
pub mod features;
pub mod fleet;
pub mod mdp;
pub mod metrics;
pub mod multi;
pub mod optimal;
pub mod policy;
pub mod predictive;
pub mod serve;
pub mod sim;
pub mod supervise;
pub mod train;

/// One-stop imports for examples and experiment harnesses.
pub mod prelude {
    pub use crate::aggregate::{apply_aggregation, AggregationPlanner, Omega};
    pub use crate::benchcfg::ConfigBlock;
    pub use crate::engine::{
        merge_shards, par_map_indices, partition, run_shard, shard_of, ShardRun,
    };
    pub use crate::features::FeatureConfig;
    pub use crate::fleet::{FeatureBlock, FleetState, FleetView};
    pub use crate::mdp::{OracleTables, RewardConfig, RewardKind, TieringEnv, TieringEnvConfig};
    pub use crate::metrics::{
        bucket_costs, decision_latency, normalized_costs, DecisionLatency, OverheadTimer,
    };
    pub use crate::multi::{optimal_location_plan, Location, MultiCspModel};
    pub use crate::optimal::{brute_force_plan, optimal_plan, suffix_values};
    pub use crate::policy::{
        ColdPolicy, DecisionContext, GreedyPolicy, HotPolicy, OptimalPolicy, Policy, RlPolicy,
        SingleTierPolicy,
    };
    pub use crate::predictive::PredictivePolicy;
    pub use crate::serve::{serve, ServeConfig, ServeError, ServeReport, StoreConfig, StoreReport};
    pub use crate::sim::{
        default_workers, simulate, SimConfig, SimConfigBuilder, SimConfigError, SimResult,
    };
    pub use crate::supervise::{
        DegradedPolicy, Incident, IncidentKind, IncidentLog, SuperviseConfig, Supervisor,
    };
    pub use crate::train::{MiniCost, MiniCostConfig};
    pub use pricing::{CostModel, Money, PricingPolicy, Tier};
    pub use stream::{FaultPlan, FaultSite};
    pub use tracegen::{Trace, TraceConfig};
}

pub use prelude::*;
