//! The tiering MDP: reward function (Eq. 4) and the training environment.

use crate::features::FeatureConfig;
use crate::optimal::{oracle_action, suffix_values};
use pricing::{CostModel, Money, Tier, TIER_COUNT};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rl::{Env, Step};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tracegen::Trace;

/// Functional form of the reward.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardKind {
    /// The paper's Eq. 4 verbatim: `R = α / C + Δ`. Faithful, but the
    /// reciprocal weights near-free idle files far more than expensive
    /// mistakes on busy files (see the `reward_ablation` experiment).
    Reciprocal,
    /// `R = -α · C + Δ` on the normalized cost: reward differences are
    /// proportional to dollars saved, which trains markedly better and is
    /// the default for the headline experiments (documented in DESIGN.md).
    NegCost,
    /// `R = -α · C + Δ` on the **raw dollar** cost (no per-file
    /// normalization), matching the paper's `C(s_t, a_t)` literally:
    /// gradient weight is proportional to actual dollars at stake, so the
    /// expensive head of the popularity distribution dominates training.
    NegCostRaw,
    /// Potential-based shaping with the offline value function:
    /// `R = -α · (Q*(s, a) - min_a' Q*(s, a'))` normalized by the file's
    /// always-hot cost. Zero for the optimal action, negative in proportion
    /// to the dollars the action forfeits against the offline optimum.
    /// Potential-based shaping preserves the optimal policy (Ng et al.),
    /// and the oracle Q is computable here because training runs against
    /// historical data where future frequencies are known — exactly the
    /// setting of the paper's trace-driven training. This is the default
    /// for the headline experiments; the unshaped kinds remain as
    /// ablations (see the experiment harness).
    ShapedRegret,
}

/// The reward function (paper Eq. 4 and its shaping).
///
/// `C` is the money cost of the action, normalized by the file's always-hot
/// daily cost so rewards are scale-free across the popularity range. The
/// `floor` keeps the paper's reciprocal finite on near-free actions and the
/// result is clamped to `±cap`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Functional form.
    pub kind: RewardKind,
    /// Scale α of Eq. 4.
    pub alpha: f64,
    /// Additive offset Δ of Eq. 4.
    pub delta: f64,
    /// Floor added to the normalized cost before taking the reciprocal
    /// (Reciprocal kind only).
    pub floor: f64,
    /// Clamp on the cost-dependent term's magnitude.
    pub cap: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig { kind: RewardKind::NegCost, alpha: 1.0, delta: 0.0, floor: 0.05, cap: 20.0 }
    }
}

impl RewardConfig {
    /// The paper's literal Eq. 4 configuration.
    #[must_use]
    pub fn paper_eq4() -> RewardConfig {
        RewardConfig { kind: RewardKind::Reciprocal, ..RewardConfig::default() }
    }

    /// The shaped-regret configuration the headline experiments train with.
    #[must_use]
    pub fn shaped() -> RewardConfig {
        RewardConfig { kind: RewardKind::ShapedRegret, ..RewardConfig::default() }
    }

    /// Regret-shaped reward: `-α · regret / reference`, clamped at `-cap`.
    #[must_use]
    pub fn regret_reward(&self, regret: Money, reference: Money) -> f64 {
        debug_assert!(regret >= Money::ZERO, "regret must be non-negative");
        let normalized = regret.ratio_with_floor(reference, 1e-9);
        (-self.alpha * normalized).max(-self.cap) + self.delta
    }

    /// Reward for paying `cost` where `reference` is the file's always-hot
    /// cost for the same day (the normalizer). Higher reward for lower cost.
    #[must_use]
    pub fn reward(&self, cost: Money, reference: Money) -> f64 {
        let normalized = cost.ratio_with_floor(reference, 1e-12).max(0.0);
        let term = match self.kind {
            RewardKind::Reciprocal => (self.alpha / (normalized + self.floor)).min(self.cap),
            RewardKind::NegCost => (-self.alpha * normalized).max(-self.cap),
            RewardKind::NegCostRaw => (-self.alpha * cost.as_dollars()).max(-self.cap),
            RewardKind::ShapedRegret => {
                unreachable!("ShapedRegret is computed by the environment, not per-cost")
            }
        };
        term + self.delta
    }
}

/// Configuration of the training environment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TieringEnvConfig {
    /// Featurization (history window).
    pub features: FeatureConfig,
    /// Reward shaping.
    pub reward: RewardConfig,
    /// Decisions per episode (the paper's weekly decision period: 7).
    pub episode_len: usize,
    /// RNG seed for file/day sampling.
    pub seed: u64,
    /// Whether to precompute the per-file optimal-action oracle (needed for
    /// the optimal-action-rate metric; costs `O(files * days)` memory).
    pub with_oracle: bool,
}

impl Default for TieringEnvConfig {
    fn default() -> Self {
        TieringEnvConfig {
            features: FeatureConfig::default(),
            reward: RewardConfig::default(),
            episode_len: 7,
            seed: 0,
            with_oracle: true,
        }
    }
}

/// Per-file oracle tables: `tables[file_ix]` is the suffix-value DP of
/// [`suffix_values`] (or `None` when the oracle is disabled). Computing
/// them is the dominant cost of environment construction, so the training
/// pipeline builds them once — in parallel, via
/// [`crate::engine::par_map_indices`] — and shares one `Arc` across all
/// A3C workers ([`TieringEnv::with_oracle_tables`]).
pub type OracleTables = Vec<Option<Vec<[Money; TIER_COUNT]>>>;

/// The storage-tiering MDP over a trace.
///
/// Each episode samples one file and a start day, then walks `episode_len`
/// daily decisions: the action assigns the file's tier for the day, the
/// cost model charges tier change + storage + operations, and the Eq. 4
/// reward is emitted. States encode only information observable at decision
/// time (the history window strictly precedes the decided day).
pub struct TieringEnv {
    trace: Arc<Trace>,
    model: Arc<CostModel>,
    cfg: TieringEnvConfig,
    oracle: Arc<OracleTables>,
    rng: StdRng,
    // Episode state.
    file_ix: usize,
    day: usize,
    tier: Tier,
    steps_left: usize,
}

impl TieringEnv {
    /// Creates an environment. Panics if the trace is empty or shorter than
    /// one episode.
    #[must_use]
    pub fn new(trace: Arc<Trace>, model: Arc<CostModel>, cfg: TieringEnvConfig) -> TieringEnv {
        let oracle: Arc<OracleTables> = if cfg.with_oracle {
            Arc::new(trace.files.iter().map(|f| Some(suffix_values(f, &model))).collect())
        } else {
            Arc::new(vec![None; trace.files.len()])
        };
        TieringEnv::with_oracle_tables(trace, model, cfg, oracle)
    }

    /// Creates an environment around precomputed, shared oracle tables —
    /// the multi-worker path: tables are computed once and every worker's
    /// environment clones the `Arc` instead of redoing the `O(files × days)`
    /// suffix DP. `cfg.with_oracle` is ignored; the tables passed in decide.
    ///
    /// Panics if the trace is empty, shorter than one episode, or if the
    /// table count does not match the file count.
    #[must_use]
    pub fn with_oracle_tables(
        trace: Arc<Trace>,
        model: Arc<CostModel>,
        cfg: TieringEnvConfig,
        oracle: Arc<OracleTables>,
    ) -> TieringEnv {
        assert!(!trace.is_empty(), "trace must contain files");
        assert!(cfg.episode_len > 0, "episode_len must be positive");
        assert!(
            trace.days >= cfg.episode_len,
            "trace ({} days) shorter than one episode ({})",
            trace.days,
            cfg.episode_len
        );
        assert_eq!(oracle.len(), trace.files.len(), "one oracle table per file");
        let seed = cfg.seed;
        let mut env = TieringEnv {
            trace,
            model,
            cfg,
            oracle,
            rng: StdRng::seed_from_u64(seed ^ 0x7137_E21F),
            file_ix: 0,
            day: 0,
            tier: Tier::Hot,
            steps_left: 0,
        };
        let _ = env.reset_episode();
        env
    }

    fn reset_episode(&mut self) -> Vec<f64> {
        self.file_ix = self.rng.random_range(0..self.trace.files.len());
        // Episodes start at day >= 1: the day-0 state is all padding and
        // identical across files (see RlPolicy::decide_one), so training
        // on it would only teach a blind majority action.
        let latest_start = self.trace.days - self.cfg.episode_len;
        self.day =
            if latest_start <= 1 { latest_start } else { self.rng.random_range(1..=latest_start) };
        self.tier = Tier::ALL[self.rng.random_range(0..TIER_COUNT)];
        self.steps_left = self.cfg.episode_len;
        self.state()
    }

    fn state(&self) -> Vec<f64> {
        self.cfg.features.encode(&self.trace.files[self.file_ix], self.day, self.tier)
    }

    /// The environment's RNG-independent cost of taking `action` now:
    /// change cost plus the decided day's steady cost.
    fn action_cost(&self, action: Tier) -> Money {
        let file = &self.trace.files[self.file_ix];
        let (r, w) = file.day(self.day);
        self.model.policy().change_cost(self.tier, action, file.size_gb)
            + self.model.steady_day_cost(file.size_gb, r, w, action)
    }

    /// Regret of taking `action` now versus the oracle's best action:
    /// `Q*(s, a) - min_a' Q*(s, a')` where
    /// `Q*(s, a) = change + steady + V[d+1][a]` from the suffix DP.
    /// Requires the oracle tables (`with_oracle`).
    fn action_regret(&self, action: Tier) -> Money {
        let Some(values) = self.oracle[self.file_ix].as_ref() else {
            // ShapedRegret requires `with_oracle = true`; without the tables
            // the regret signal is undefined, so report zero regret (the
            // reward degenerates to its constant offset).
            debug_assert!(false, "ShapedRegret reward requires with_oracle = true");
            return Money::ZERO;
        };
        let file = &self.trace.files[self.file_ix];
        let (r, w) = file.day(self.day);
        let q = |a: Tier| -> Money {
            self.model
                .policy()
                .change_cost(self.tier, a, file.size_gb)
                .saturating_add(self.model.steady_day_cost(file.size_gb, r, w, a))
                .saturating_add(values[self.day + 1][a.index()])
        };
        let q_a = q(action);
        let q_best = Tier::all().map(q).reduce(Money::min).unwrap_or(q_a);
        q_a - q_best
    }

    /// Always-hot reference cost for the decided day (reward normalizer).
    fn reference_cost(&self) -> Money {
        let file = &self.trace.files[self.file_ix];
        let (r, w) = file.day(self.day);
        self.model.steady_day_cost(file.size_gb, r, w, Tier::Hot)
    }
}

impl Env for TieringEnv {
    fn state_dim(&self) -> usize {
        self.cfg.features.state_dim()
    }

    fn n_actions(&self) -> usize {
        TIER_COUNT
    }

    fn reset(&mut self) -> Vec<f64> {
        self.reset_episode()
    }

    fn step(&mut self, action: usize) -> Step {
        assert!(action < TIER_COUNT, "action out of range");
        assert!(self.steps_left > 0, "step after episode end; call reset");
        let tier = Tier::ALL[action];
        let reward = if self.cfg.reward.kind == RewardKind::ShapedRegret {
            let regret = self.action_regret(tier);
            self.cfg.reward.regret_reward(regret, self.reference_cost())
        } else {
            let cost = self.action_cost(tier);
            self.cfg.reward.reward(cost, self.reference_cost())
        };

        self.tier = tier;
        self.day += 1;
        self.steps_left -= 1;
        let done = self.steps_left == 0 || self.day >= self.trace.days;
        Step { next_state: self.state(), reward, done }
    }

    fn optimal_action(&self) -> Option<usize> {
        let values = self.oracle[self.file_ix].as_ref()?;
        if self.day >= self.trace.days {
            return None;
        }
        let file = &self.trace.files[self.file_ix];
        Some(oracle_action(file, &self.model, values, self.day, self.tier).index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pricing::PricingPolicy;
    use tracegen::TraceConfig;

    fn env(seed: u64) -> TieringEnv {
        let trace = Arc::new(Trace::generate(&TraceConfig::small(20, 21, 5)));
        let model = Arc::new(CostModel::new(PricingPolicy::azure_blob_2020()));
        TieringEnv::new(trace, model, TieringEnvConfig { seed, ..Default::default() })
    }

    #[test]
    fn reward_prefers_cheaper_actions() {
        let r = RewardConfig::default();
        let reference = Money::from_dollars(1.0);
        let cheap = r.reward(Money::from_dollars(0.1), reference);
        let pricey = r.reward(Money::from_dollars(2.0), reference);
        assert!(cheap > pricey, "{cheap} vs {pricey}");
    }

    #[test]
    fn reward_is_capped_and_offset() {
        let r = RewardConfig {
            kind: RewardKind::Reciprocal,
            alpha: 1.0,
            delta: 2.0,
            floor: 0.0,
            cap: 5.0,
        };
        // Zero cost: alpha / 0 would explode; cap holds it at 5 (+delta).
        let v = r.reward(Money::ZERO, Money::from_dollars(1.0));
        assert_eq!(v, 7.0);
    }

    #[test]
    fn reward_kinds_rank_actions_identically() {
        // Whatever the functional form, cheaper must be better.
        let reference = Money::from_dollars(0.01);
        for kind in [RewardKind::Reciprocal, RewardKind::NegCost, RewardKind::NegCostRaw] {
            let r = RewardConfig { kind, ..RewardConfig::default() };
            let cheap = r.reward(Money::from_dollars(0.001), reference);
            let pricey = r.reward(Money::from_dollars(0.02), reference);
            assert!(cheap > pricey, "{kind:?}: {cheap} vs {pricey}");
        }
    }

    #[test]
    fn negcost_raw_ignores_reference() {
        let r =
            RewardConfig { kind: RewardKind::NegCostRaw, alpha: 100.0, ..RewardConfig::default() };
        let a = r.reward(Money::from_dollars(0.02), Money::from_dollars(1.0));
        let b = r.reward(Money::from_dollars(0.02), Money::from_dollars(0.001));
        assert_eq!(a, b);
        assert_eq!(a, -2.0);
    }

    #[test]
    fn reward_is_scale_free() {
        let r = RewardConfig::default();
        // Same cost ratio at different absolute scales => same reward.
        let a = r.reward(Money::from_dollars(0.02), Money::from_dollars(0.1));
        let b = r.reward(Money::from_dollars(20.0), Money::from_dollars(100.0));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn env_shapes_are_consistent() {
        let mut e = env(1);
        assert_eq!(e.n_actions(), 3);
        let s = e.reset();
        assert_eq!(s.len(), e.state_dim());
        let step = e.step(0);
        assert_eq!(step.next_state.len(), e.state_dim());
        assert!(step.reward.is_finite());
    }

    #[test]
    fn episodes_terminate_after_episode_len() {
        let mut e = env(2);
        e.reset();
        let mut dones = 0;
        for i in 0..7 {
            let step = e.step(1);
            if step.done {
                dones += 1;
                assert_eq!(i, 6, "episode must end exactly at step 7");
            }
        }
        assert_eq!(dones, 1);
    }

    #[test]
    #[should_panic(expected = "after episode end")]
    fn stepping_past_done_panics() {
        let mut e = env(3);
        e.reset();
        for _ in 0..8 {
            let _ = e.step(0);
        }
    }

    #[test]
    fn reset_is_seed_deterministic() {
        let mut a = env(7);
        let mut b = env(7);
        assert_eq!(a.reset(), b.reset());
        assert_eq!(a.step(2), b.step(2));
        let mut c = env(8);
        // Different seed: very likely a different episode.
        assert_ne!(a.reset(), c.reset());
    }

    #[test]
    fn oracle_action_is_valid_tier() {
        let mut e = env(4);
        e.reset();
        for _ in 0..5 {
            let oracle = e.optimal_action().expect("oracle enabled");
            assert!(oracle < 3);
            let _ = e.step(oracle);
        }
    }

    #[test]
    fn oracle_can_be_disabled() {
        let trace = Arc::new(Trace::generate(&TraceConfig::small(5, 14, 5)));
        let model = Arc::new(CostModel::new(PricingPolicy::azure_blob_2020()));
        let mut e = TieringEnv::new(
            trace,
            model,
            TieringEnvConfig { with_oracle: false, ..Default::default() },
        );
        e.reset();
        assert_eq!(e.optimal_action(), None);
    }

    #[test]
    fn following_oracle_beats_fighting_it() {
        // Cumulative reward from oracle actions must beat the anti-oracle
        // (always pick a non-oracle action) over many episodes.
        let mut e = env(5);
        let mut oracle_total = 0.0;
        let mut anti_total = 0.0;
        for _ in 0..50 {
            let _ = e.reset();
            loop {
                let a = e.optimal_action().unwrap();
                let step = e.step(a);
                oracle_total += step.reward;
                if step.done {
                    break;
                }
            }
            let _ = e.reset();
            loop {
                let a = (e.optimal_action().unwrap() + 1) % 3;
                let step = e.step(a);
                anti_total += step.reward;
                if step.done {
                    break;
                }
            }
        }
        assert!(oracle_total > anti_total, "oracle {oracle_total} vs anti {anti_total}");
    }

    #[test]
    #[should_panic(expected = "shorter than one episode")]
    fn short_trace_rejected() {
        let trace = Arc::new(Trace::generate(&TraceConfig::small(5, 3, 5)));
        let model = Arc::new(CostModel::new(PricingPolicy::azure_blob_2020()));
        let _ = TieringEnv::new(trace, model, TieringEnvConfig::default());
    }
}
