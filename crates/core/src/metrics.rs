//! Experiment metrics: per-bucket cost attribution, normalized-cost tables,
//! and wall-clock overhead timing (Figs. 7, 8, 12).

use crate::sim::SimResult;
use pricing::Money;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use tracegen::analysis::{bucket_members, CV_BUCKET_COUNT};
use tracegen::Trace;

/// Total cost per CV bucket: attributes each file's ledger entry to its
/// request-frequency-variability bucket (the x-axis of Figs. 3, 4, 8).
///
/// Panics if `per_file` does not match the trace's file count.
#[must_use]
pub fn bucket_costs(trace: &Trace, per_file: &[Money]) -> [Money; CV_BUCKET_COUNT] {
    assert_eq!(per_file.len(), trace.files.len(), "ledger/trace mismatch");
    let members = bucket_members(trace);
    let mut out = [Money::ZERO; CV_BUCKET_COUNT];
    for (bucket, files) in members.iter().enumerate() {
        out[bucket] = files.iter().map(|&ix| per_file[ix]).sum();
    }
    out
}

/// Costs normalized by a reference (the paper's Fig. 7 normalizes by
/// *Optimal*). Returns `cost / reference` per result; a zero reference maps
/// to 1.0 when the cost is also zero, `f64::INFINITY` otherwise.
#[must_use]
pub fn normalized_costs(results: &[&SimResult], reference: Money) -> Vec<f64> {
    results
        .iter()
        .map(|r| {
            let cost = r.total_cost();
            if reference.is_zero() {
                if cost.is_zero() {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                cost.ratio_to(reference)
            }
        })
        .collect()
}

/// An accumulating wall-clock timer for the Fig. 12 overhead measurements.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct OverheadTimer {
    samples_ms: Vec<f64>,
}

impl OverheadTimer {
    /// Creates an empty timer.
    #[must_use]
    pub fn new() -> OverheadTimer {
        OverheadTimer::default()
    }

    /// Times `f`, records the elapsed milliseconds, and returns its value.
    pub fn measure<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let value = f();
        self.samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
        value
    }

    /// Records an externally measured sample.
    pub fn record_ms(&mut self, ms: f64) {
        self.samples_ms.push(ms);
    }

    /// All samples in milliseconds.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples_ms
    }

    /// Mean milliseconds; 0.0 when empty.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        if self.samples_ms.is_empty() {
            0.0
        } else {
            self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64
        }
    }

    /// Total milliseconds recorded.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.samples_ms.iter().sum()
    }
}

/// Decision-latency digest of a (possibly sharded) [`SimResult`] — the
/// Fig. 12 "computing overhead" measurement, made meaningful for parallel
/// runs. The wall-clock cost of a parallel decision day is the slowest
/// shard (the critical path), while the serial reference is the sum of all
/// shard ledgers; their ratio is the achieved speedup.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DecisionLatency {
    /// Total decision milliseconds per shard, in fixed shard order.
    pub shard_total_ms: Vec<f64>,
    /// Sum over decision days of the slowest shard's latency — what a
    /// caller actually waits for.
    pub critical_path_ms: f64,
    /// Sum of every shard's ledger — the single-threaded equivalent work.
    pub serial_ms: f64,
}

impl DecisionLatency {
    /// Achieved decision speedup (`serial / critical path`); 1.0 for an
    /// empty or single-shard run.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.critical_path_ms > 0.0 {
            self.serial_ms / self.critical_path_ms
        } else {
            1.0
        }
    }

    /// `speedup / shards`: 1.0 means perfectly balanced shards.
    #[must_use]
    pub fn parallel_efficiency(&self) -> f64 {
        if self.shard_total_ms.is_empty() {
            1.0
        } else {
            self.speedup() / self.shard_total_ms.len() as f64
        }
    }
}

/// Digests `result`'s per-shard decision ledgers (ordered reductions over
/// the fixed shard order — never thread-completion order).
#[must_use]
pub fn decision_latency(result: &SimResult) -> DecisionLatency {
    let shard_total_ms: Vec<f64> =
        result.shard_decision_millis.iter().map(|shard| shard.iter().sum()).collect();
    DecisionLatency {
        critical_path_ms: result.total_decision_millis(),
        serial_ms: shard_total_ms.iter().sum(),
        shard_total_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::HotPolicy;
    use crate::sim::{simulate, SimConfig};
    use pricing::{CostModel, PricingPolicy};
    use tracegen::TraceConfig;

    #[test]
    fn bucket_costs_partition_the_total() {
        let trace = Trace::generate(&TraceConfig::small(100, 21, 4));
        let model = CostModel::new(PricingPolicy::azure_blob_2020());
        let result = simulate(&trace, &model, &mut HotPolicy, &SimConfig::default());
        let buckets = bucket_costs(&trace, &result.per_file);
        let sum: Money = buckets.iter().sum();
        assert_eq!(sum, result.total_cost());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn bucket_costs_rejects_wrong_ledger() {
        let trace = Trace::generate(&TraceConfig::small(5, 7, 4));
        let _ = bucket_costs(&trace, &[Money::ZERO; 3]);
    }

    #[test]
    fn normalized_costs_reference_semantics() {
        let trace = Trace::generate(&TraceConfig::small(10, 7, 4));
        let model = CostModel::new(PricingPolicy::azure_blob_2020());
        let result = simulate(&trace, &model, &mut HotPolicy, &SimConfig::default());
        let normalized = normalized_costs(&[&result], result.total_cost());
        assert!((normalized[0] - 1.0).abs() < 1e-12);
        // Zero reference.
        let inf = normalized_costs(&[&result], Money::ZERO);
        assert!(inf[0].is_infinite());
    }

    #[test]
    fn overhead_timer_accumulates() {
        // Deterministic: no sleeps in timing paths — measured samples are
        // only checked for presence and non-negativity, arithmetic is
        // exercised through recorded samples.
        let mut timer = OverheadTimer::new();
        assert_eq!(timer.mean_ms(), 0.0);
        let value = timer.measure(|| 42);
        assert_eq!(value, 42);
        assert!(timer.samples()[0] >= 0.0);
        timer.record_ms(10.0);
        timer.record_ms(20.0);
        assert_eq!(timer.samples().len(), 3);
        assert!(timer.total_ms() >= 30.0);
        assert!(timer.mean_ms() >= 10.0);
    }

    #[test]
    fn decision_latency_digests_shard_ledgers() {
        let trace = Trace::generate(&TraceConfig::small(30, 7, 4));
        let model = CostModel::new(PricingPolicy::azure_blob_2020());
        let mut result = simulate(&trace, &model, &mut HotPolicy, &SimConfig::default());
        // Overwrite the wall-clock ledgers with known values: 2 shards,
        // per-day maxima 3.0 and 4.0.
        result.shard_decision_millis = vec![vec![1.0, 4.0], vec![3.0, 2.0]];
        result.decision_millis = vec![3.0, 4.0];
        let latency = decision_latency(&result);
        assert_eq!(latency.shard_total_ms, vec![5.0, 5.0]);
        assert_eq!(latency.serial_ms, 10.0);
        assert_eq!(latency.critical_path_ms, 7.0);
        assert!((latency.speedup() - 10.0 / 7.0).abs() < 1e-12);
        assert!((latency.parallel_efficiency() - 10.0 / 14.0).abs() < 1e-12);

        // Degenerate cases stay finite.
        let empty = DecisionLatency::default();
        assert_eq!(empty.speedup(), 1.0);
        assert_eq!(empty.parallel_efficiency(), 1.0);
    }
}
