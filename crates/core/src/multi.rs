//! Multi-datacenter / multi-CSP placement (§4.1's `D_s` set).
//!
//! The paper's system model stores files "among one or multiple CSPs'
//! datacenters ... each datacenter has its own pricing policy", and §4.2.1
//! notes the tier set Γ generalizes across CSPs. This module makes that
//! concrete: a [`MultiCspModel`] holds one [`CostModel`] per datacenter
//! plus a migration price, the location space is the product
//! `datacenter x tier`, and [`optimal_location_plan`] runs the same
//! shortest-path optimization over it. The `multi_csp` example uses this to
//! quantify how much a provider-aware plan saves over replaying another
//! provider's plan.

use pricing::{CostModel, Money, Tier, TIER_COUNT};
use serde::{Deserialize, Serialize};
use tracegen::FileSeries;

/// A storage location: a datacenter (by index) and a tier within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Datacenter index into [`MultiCspModel::models`].
    pub dc: usize,
    /// Storage tier within the datacenter.
    pub tier: Tier,
}

/// Pricing across multiple datacenters.
#[derive(Clone, Debug)]
pub struct MultiCspModel {
    /// One cost model per datacenter (each with its own pricing policy).
    pub models: Vec<CostModel>,
    /// Cross-datacenter migration price in dollars per GB (network egress;
    /// charged on top of the destination's tier-change cost).
    pub migration_per_gb: f64,
}

impl MultiCspModel {
    /// Creates a multi-CSP model. Panics if `models` is empty or the
    /// migration price is negative.
    #[must_use]
    pub fn new(models: Vec<CostModel>, migration_per_gb: f64) -> MultiCspModel {
        assert!(!models.is_empty(), "need at least one datacenter");
        assert!(migration_per_gb >= 0.0, "migration price must be non-negative");
        MultiCspModel { models, migration_per_gb }
    }

    /// Number of locations (`datacenters x tiers`).
    #[must_use]
    pub fn location_count(&self) -> usize {
        self.models.len() * TIER_COUNT
    }

    /// Enumerates all locations in dense order.
    pub fn locations(&self) -> impl Iterator<Item = Location> + '_ {
        (0..self.models.len()).flat_map(|dc| Tier::all().map(move |tier| Location { dc, tier }))
    }

    /// Steady one-day cost of a file at `location`.
    #[must_use]
    pub fn steady_day_cost(
        &self,
        location: Location,
        size_gb: f64,
        reads: u64,
        writes: u64,
    ) -> Money {
        self.models[location.dc].steady_day_cost(size_gb, reads, writes, location.tier)
    }

    /// One-time cost of moving a file between locations: within a
    /// datacenter, the tier-change price; across datacenters, egress plus
    /// the destination's cheapest-ingress tier-change (entering `to.tier`
    /// from hot, the upload tier).
    #[must_use]
    pub fn move_cost(&self, from: Location, to: Location, size_gb: f64) -> Money {
        if from == to {
            return Money::ZERO;
        }
        if from.dc == to.dc {
            self.models[from.dc].policy().change_cost(from.tier, to.tier, size_gb)
        } else {
            Money::from_dollars(self.migration_per_gb * size_gb)
                + self.models[to.dc].policy().change_cost(Tier::Hot, to.tier, size_gb)
        }
    }
}

/// The exact cheapest location sequence for one file over its whole series,
/// starting from `initial` — the multi-datacenter generalization of
/// [`crate::optimal::optimal_plan`] (`O(days * locations^2)`).
#[must_use]
pub fn optimal_location_plan(
    file: &FileSeries,
    model: &MultiCspModel,
    initial: Location,
) -> (Vec<Location>, Money) {
    let days = file.days();
    if days == 0 {
        return (Vec::new(), Money::ZERO);
    }
    let locations: Vec<Location> = model.locations().collect();
    let n = locations.len();
    let mut best = vec![vec![Money::MAX; n]; days];
    let mut parent = vec![vec![0usize; n]; days];

    let (r0, w0) = file.day(0);
    for (j, &loc) in locations.iter().enumerate() {
        best[0][j] = model.move_cost(initial, loc, file.size_gb)
            + model.steady_day_cost(loc, file.size_gb, r0, w0);
    }
    for d in 1..days {
        let (r, w) = file.day(d);
        for (j, &loc) in locations.iter().enumerate() {
            let steady = model.steady_day_cost(loc, file.size_gb, r, w);
            let (prev, cost) = locations
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    (i, best[d - 1][i].saturating_add(model.move_cost(p, loc, file.size_gb)))
                })
                .min_by_key(|&(_, c)| c)
                .unwrap_or((0, Money::MAX));
            best[d][j] = cost.saturating_add(steady);
            parent[d][j] = prev;
        }
    }

    let (mut last, mut total) = (0, Money::MAX);
    for (i, &c) in best[days - 1].iter().enumerate() {
        if c < total {
            last = i;
            total = c;
        }
    }
    let mut plan = vec![initial; days];
    for d in (0..days).rev() {
        plan[d] = locations[last];
        if d > 0 {
            last = parent[d][last];
        }
    }
    (plan, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::optimal_plan;
    use pricing::PricingPolicy;
    use tracegen::FileId;

    fn file(size_gb: f64, reads: Vec<u64>) -> FileSeries {
        let writes = vec![0; reads.len()];
        FileSeries { id: FileId(0), size_gb, reads, writes }
    }

    fn duo() -> MultiCspModel {
        MultiCspModel::new(
            vec![
                CostModel::new(PricingPolicy::paper_2020()),
                CostModel::new(PricingPolicy::aws_s3_like()),
            ],
            0.05,
        )
    }

    #[test]
    fn location_enumeration() {
        let m = duo();
        assert_eq!(m.location_count(), 6);
        let locs: Vec<Location> = m.locations().collect();
        assert_eq!(locs.len(), 6);
        assert_eq!(locs[0], Location { dc: 0, tier: Tier::Hot });
        assert_eq!(locs[5], Location { dc: 1, tier: Tier::Archive });
    }

    #[test]
    fn single_dc_reduces_to_tier_dp() {
        // With one datacenter the location DP must agree exactly with the
        // single-CSP optimal plan.
        let m = MultiCspModel::new(vec![CostModel::new(PricingPolicy::paper_2020())], 0.05);
        let f = file(0.2, vec![10, 5_000, 0, 300, 80, 0, 12_000]);
        let single = CostModel::new(PricingPolicy::paper_2020());
        let (tier_plan, tier_cost) = optimal_plan(&f, &single, Tier::Hot);
        let (loc_plan, loc_cost) =
            optimal_location_plan(&f, &m, Location { dc: 0, tier: Tier::Hot });
        assert_eq!(loc_cost, tier_cost);
        assert_eq!(loc_plan.iter().map(|l| l.tier).collect::<Vec<_>>(), tier_plan);
        assert!(loc_plan.iter().all(|l| l.dc == 0));
    }

    #[test]
    fn multi_dc_never_costs_more_than_best_single_dc() {
        let m = duo();
        let f = file(0.1, vec![50, 8_000, 0, 0, 120, 9_000, 3]);
        let (_, multi) = optimal_location_plan(&f, &m, Location { dc: 0, tier: Tier::Hot });
        for dc in 0..2 {
            let single = MultiCspModel::new(vec![m.models[dc].clone()], m.migration_per_gb);
            let initial = Location { dc: 0, tier: Tier::Hot };
            let (_, single_cost) = optimal_location_plan(&f, &single, initial);
            // The multi-DC optimum starts in dc 0; landing in dc 1 pays
            // migration, so only the dc-0-restricted comparison is a strict
            // upper bound.
            if dc == 0 {
                assert!(multi <= single_cost, "multi {multi} vs dc0-only {single_cost}");
            }
        }
    }

    #[test]
    fn migration_cost_gates_provider_hopping() {
        // An expensive migration price must pin the file to its home DC.
        let mut m = duo();
        m.migration_per_gb = 1_000.0;
        let f = file(1.0, vec![100; 10]);
        let (plan, _) = optimal_location_plan(&f, &m, Location { dc: 0, tier: Tier::Hot });
        assert!(plan.iter().all(|l| l.dc == 0), "{plan:?}");
        // Free migration: the optimizer may use either provider.
        m.migration_per_gb = 0.0;
        let (plan_free, cost_free) =
            optimal_location_plan(&f, &m, Location { dc: 0, tier: Tier::Hot });
        let pinned_model = MultiCspModel::new(vec![m.models[0].clone()], 0.0);
        let (_, cost_pinned) =
            optimal_location_plan(&f, &pinned_model, Location { dc: 0, tier: Tier::Hot });
        assert!(cost_free <= cost_pinned);
        assert_eq!(plan_free.len(), 10);
    }

    #[test]
    fn move_cost_semantics() {
        let m = duo();
        let a = Location { dc: 0, tier: Tier::Hot };
        let b = Location { dc: 0, tier: Tier::Cool };
        let c = Location { dc: 1, tier: Tier::Hot };
        assert_eq!(m.move_cost(a, a, 1.0), Money::ZERO);
        assert_eq!(
            m.move_cost(a, b, 1.0),
            m.models[0].policy().change_cost(Tier::Hot, Tier::Cool, 1.0)
        );
        assert!(m.move_cost(a, c, 1.0) >= Money::from_dollars(0.05));
    }

    #[test]
    fn empty_series_plan_is_empty() {
        let m = duo();
        let f = file(0.1, vec![]);
        let (plan, cost) = optimal_location_plan(&f, &m, Location { dc: 0, tier: Tier::Hot });
        assert!(plan.is_empty());
        assert_eq!(cost, Money::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one datacenter")]
    fn empty_model_rejected() {
        let _ = MultiCspModel::new(vec![], 0.0);
    }
}
