//! The offline optimal solver.
//!
//! The paper's *Optimal* baseline is an "offline-brutal-force method": with
//! full knowledge of future request frequencies it enumerates every possible
//! tier-assignment plan per file and keeps the cheapest (§6.1). Because the
//! total cost (Eqs. 5–9) is a sum of per-file terms and the per-file cost is
//! a sum over days of (steady day cost + change cost between consecutive
//! days' tiers), the exhaustive search factorizes exactly into a per-file
//! shortest path over a `(day, tier)` lattice. [`optimal_plan`] solves that
//! in `O(days · Γ²)`; [`brute_force_plan`] is the literal `Γ^days`
//! enumeration kept as an executable proof of equivalence (see tests and
//! the property test in `tests/policy_ordering.rs`).

use pricing::{CostModel, Money, Tier, TIER_COUNT};
use tracegen::FileSeries;

/// The exact cheapest tier sequence for one file, given it starts in
/// `initial_tier` *before* day 0 (a change on day 0 is charged).
///
/// Returns the per-day tier plan and its total cost.
#[must_use]
pub fn optimal_plan(
    file: &FileSeries,
    model: &CostModel,
    initial_tier: Tier,
) -> (Vec<Tier>, Money) {
    let days = file.days();
    if days == 0 {
        return (Vec::new(), Money::ZERO);
    }
    // best[d][t]: min cost of days 0..=d ending day d in tier t.
    // parent[d][t]: tier on day d-1 achieving it.
    let mut best = vec![[Money::MAX; TIER_COUNT]; days];
    let mut parent = vec![[0usize; TIER_COUNT]; days];

    let (r0, w0) = file.day(0);
    for tier in Tier::all() {
        best[0][tier.index()] = model.policy().change_cost(initial_tier, tier, file.size_gb)
            + model.steady_day_cost(file.size_gb, r0, w0, tier);
    }

    for d in 1..days {
        let (r, w) = file.day(d);
        for tier in Tier::all() {
            let steady = model.steady_day_cost(file.size_gb, r, w, tier);
            let mut best_cost = Money::MAX;
            let mut best_prev = 0;
            for prev in Tier::all() {
                let cost = best[d - 1][prev.index()].saturating_add(model.policy().change_cost(
                    prev,
                    tier,
                    file.size_gb,
                ));
                if cost < best_cost {
                    best_cost = cost;
                    best_prev = prev.index();
                }
            }
            best[d][tier.index()] = best_cost.saturating_add(steady);
            parent[d][tier.index()] = best_prev;
        }
    }

    // Backtrack from the cheapest final tier.
    let mut last = Tier::Hot;
    for t in Tier::all() {
        if best[days - 1][t.index()] < best[days - 1][last.index()] {
            last = t;
        }
    }
    let total = best[days - 1][last.index()];
    let mut plan = vec![Tier::Hot; days];
    for d in (0..days).rev() {
        plan[d] = last;
        if d > 0 {
            last = Tier::ALL[parent[d][last.index()]];
        }
    }
    (plan, total)
}

/// Cost of executing a given per-day tier `plan` for `file`, starting from
/// `initial_tier` (changes are charged at each day boundary, including
/// day 0). Panics if the plan length differs from the series length.
#[must_use]
pub fn plan_cost(file: &FileSeries, model: &CostModel, initial_tier: Tier, plan: &[Tier]) -> Money {
    assert_eq!(plan.len(), file.days(), "plan length must match series length");
    let mut total = Money::ZERO;
    let mut current = initial_tier;
    for (d, &tier) in plan.iter().enumerate() {
        let (r, w) = file.day(d);
        total += model.policy().change_cost(current, tier, file.size_gb);
        total += model.steady_day_cost(file.size_gb, r, w, tier);
        current = tier;
    }
    total
}

/// The literal `Γ^days` enumeration of every plan (the paper's description
/// of *Optimal*). Exponential — only usable for short horizons; exists to
/// validate [`optimal_plan`]. Panics if `days > 12`.
#[must_use]
pub fn brute_force_plan(
    file: &FileSeries,
    model: &CostModel,
    initial_tier: Tier,
) -> (Vec<Tier>, Money) {
    let days = file.days();
    assert!(days <= 12, "brute force is exponential; use optimal_plan");
    if days == 0 {
        return (Vec::new(), Money::ZERO);
    }
    let mut best_plan = Vec::new();
    let mut best_cost = Money::MAX;
    // `days <= 12` is asserted above, so the exponent always fits; saturate
    // rather than truncate if that invariant ever moves.
    let combos = (TIER_COUNT as u64).pow(u32::try_from(days).unwrap_or(u32::MAX));
    for code in 0..combos {
        let mut c = code;
        let plan: Vec<Tier> = (0..days)
            .map(|_| {
                let t = Tier::ALL[(c % TIER_COUNT as u64) as usize];
                c /= TIER_COUNT as u64;
                t
            })
            .collect();
        let cost = plan_cost(file, model, initial_tier, &plan);
        if cost < best_cost {
            best_cost = cost;
            best_plan = plan;
        }
    }
    (best_plan, best_cost)
}

/// Suffix value tables for the optimal-action oracle.
///
/// `values[d][t]` is the minimum cost of days `d..days` given the file
/// *enters* day `d` residing in tier `t` (so the day-`d` decision may move
/// it, paying the change). `values[days][t] == 0`.
///
/// The oracle action at `(day, current_tier)` is the argmin in
/// [`oracle_action`]; this is exactly the action the paper's *Optimal*
/// takes, used for the optimal-action-rate metric (Figs. 9–11).
#[must_use]
pub fn suffix_values(file: &FileSeries, model: &CostModel) -> Vec<[Money; TIER_COUNT]> {
    let days = file.days();
    let mut values = vec![[Money::ZERO; TIER_COUNT]; days + 1];
    for d in (0..days).rev() {
        let (r, w) = file.day(d);
        for cur in Tier::all() {
            let mut best = Money::MAX;
            for a in Tier::all() {
                let cost = model
                    .policy()
                    .change_cost(cur, a, file.size_gb)
                    .saturating_add(model.steady_day_cost(file.size_gb, r, w, a))
                    .saturating_add(values[d + 1][a.index()]);
                best = best.min(cost);
            }
            values[d][cur.index()] = best;
        }
    }
    values
}

/// The optimal action (tier for day `day`) given the file enters `day` in
/// `current`, using precomputed [`suffix_values`].
///
/// Panics if `day >= file.days()`.
#[must_use]
pub fn oracle_action(
    file: &FileSeries,
    model: &CostModel,
    values: &[[Money; TIER_COUNT]],
    day: usize,
    current: Tier,
) -> Tier {
    assert!(day < file.days(), "day out of range");
    let (r, w) = file.day(day);
    let q = |a: Tier| {
        model
            .policy()
            .change_cost(current, a, file.size_gb)
            .saturating_add(model.steady_day_cost(file.size_gb, r, w, a))
            .saturating_add(values[day + 1][a.index()])
    };
    Tier::all().reduce(|best, a| if q(a) < q(best) { a } else { best }).unwrap_or(Tier::Hot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pricing::PricingPolicy;
    use proptest::prelude::*;
    use tracegen::FileId;

    fn model() -> CostModel {
        CostModel::new(PricingPolicy::azure_blob_2020())
    }

    fn file(size_gb: f64, reads: Vec<u64>) -> FileSeries {
        let writes = reads.iter().map(|r| r / 50).collect();
        FileSeries { id: FileId(0), size_gb, reads, writes }
    }

    #[test]
    fn empty_series_has_empty_plan() {
        let f = file(0.1, vec![]);
        let (plan, cost) = optimal_plan(&f, &model(), Tier::Hot);
        assert!(plan.is_empty());
        assert_eq!(cost, Money::ZERO);
    }

    #[test]
    fn idle_file_goes_to_archive() {
        let f = file(1.0, vec![0; 7]);
        let (plan, _) = optimal_plan(&f, &model(), Tier::Hot);
        // All-idle: the cheapest storage wins (change cost hot->archive is
        // tiny relative to a week of storage deltas at 1 GB).
        assert!(plan.iter().all(|&t| t == Tier::Archive), "{plan:?}");
    }

    #[test]
    fn busy_file_stays_hot() {
        let f = file(0.1, vec![100_000; 7]);
        let (plan, _) = optimal_plan(&f, &model(), Tier::Hot);
        assert!(plan.iter().all(|&t| t == Tier::Hot), "{plan:?}");
    }

    #[test]
    fn plan_cost_matches_reported_cost() {
        let f = file(0.25, vec![10, 5_000, 0, 300, 80, 0, 12_000]);
        let m = model();
        let (plan, cost) = optimal_plan(&f, &m, Tier::Cool);
        assert_eq!(plan_cost(&f, &m, Tier::Cool, &plan), cost);
    }

    #[test]
    fn dp_equals_brute_force_on_bursty_file() {
        let f = file(0.5, vec![0, 0, 40_000, 0, 0, 0, 30_000]);
        let m = model();
        for init in Tier::all() {
            let (_, dp_cost) = optimal_plan(&f, &m, init);
            let (_, bf_cost) = brute_force_plan(&f, &m, init);
            assert_eq!(dp_cost, bf_cost, "init {init}");
        }
    }

    #[test]
    fn optimal_beats_every_constant_plan() {
        let f = file(0.2, vec![500, 0, 0, 0, 9_000, 0, 0]);
        let m = model();
        let (_, opt) = optimal_plan(&f, &m, Tier::Hot);
        for t in Tier::all() {
            let fixed = plan_cost(&f, &m, Tier::Hot, &[t; 7]);
            assert!(opt <= fixed, "optimal {opt:?} vs all-{t} {fixed:?}");
        }
    }

    #[test]
    fn initial_tier_changes_are_charged() {
        // A file that wants to be hot: starting in archive must cost at
        // least the rehydration charge more than starting hot.
        let f = file(1.0, vec![50_000; 3]);
        let m = model();
        let (_, from_hot) = optimal_plan(&f, &m, Tier::Hot);
        let (_, from_archive) = optimal_plan(&f, &m, Tier::Archive);
        assert!(from_archive > from_hot);
    }

    #[test]
    fn suffix_values_day_zero_matches_plan_cost() {
        let f = file(0.3, vec![100, 2_000, 0, 0, 700, 50, 0]);
        let m = model();
        let values = suffix_values(&f, &m);
        let (_, opt) = optimal_plan(&f, &m, Tier::Hot);
        assert_eq!(values[0][Tier::Hot.index()], opt);
    }

    #[test]
    fn oracle_first_action_matches_dp_plan() {
        let f = file(0.3, vec![4_000, 0, 0, 0, 0, 6_000, 0]);
        let m = model();
        let values = suffix_values(&f, &m);
        let (plan, _) = optimal_plan(&f, &m, Tier::Cool);
        assert_eq!(oracle_action(&f, &m, &values, 0, Tier::Cool), plan[0]);
    }

    #[test]
    fn oracle_is_consistent_along_its_own_trajectory() {
        let f = file(0.4, vec![900, 0, 12_000, 3, 0, 0, 800]);
        let m = model();
        let values = suffix_values(&f, &m);
        // Following oracle actions day by day must reproduce the DP plan
        // cost exactly.
        let mut tier = Tier::Hot;
        let mut total = Money::ZERO;
        for d in 0..f.days() {
            let a = oracle_action(&f, &m, &values, d, tier);
            let (r, w) = f.day(d);
            total += m.policy().change_cost(tier, a, f.size_gb);
            total += m.steady_day_cost(f.size_gb, r, w, a);
            tier = a;
        }
        let (_, opt) = optimal_plan(&f, &m, Tier::Hot);
        assert_eq!(total, opt);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn brute_force_rejects_long_horizons() {
        let f = file(0.1, vec![1; 13]);
        let _ = brute_force_plan(&f, &model(), Tier::Hot);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn dp_equals_brute_force(
            reads in proptest::collection::vec(0u64..20_000, 1..7),
            size in 0.01f64..2.0,
            init_ix in 0usize..3,
        ) {
            let f = file(size, reads);
            let m = model();
            let init = Tier::from_index(init_ix).unwrap();
            let (_, dp) = optimal_plan(&f, &m, init);
            let (_, bf) = brute_force_plan(&f, &m, init);
            prop_assert_eq!(dp, bf);
        }

        #[test]
        fn optimal_beats_random_plans(
            reads in proptest::collection::vec(0u64..20_000, 1..10),
            plan_ix in proptest::collection::vec(0usize..3, 1..10),
            size in 0.01f64..2.0,
        ) {
            prop_assume!(reads.len() == plan_ix.len());
            let f = file(size, reads);
            let m = model();
            let plan: Vec<Tier> = plan_ix.iter().map(|&i| Tier::from_index(i).unwrap()).collect();
            let (_, opt) = optimal_plan(&f, &m, Tier::Hot);
            prop_assert!(opt <= plan_cost(&f, &m, Tier::Hot, &plan));
        }

        #[test]
        fn suffix_values_decrease_toward_horizon(
            reads in proptest::collection::vec(0u64..5_000, 2..12),
            size in 0.01f64..1.0,
        ) {
            let f = file(size, reads);
            let values = suffix_values(&f, &model());
            // Remaining cost can only shrink as fewer days remain.
            for d in 0..f.days() {
                for (a, b) in values[d].iter().zip(&values[d + 1]) {
                    prop_assert!(a >= b);
                }
            }
        }
    }
}
