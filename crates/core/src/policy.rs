//! The paper's five data-storage-type assignment strategies (§6.1):
//! *Hot*, *Cold*, *Greedy*, *Optimal*, and the RL-driven *MiniCost* policy.
//!
//! The trait is **batch-first and columnar**: the simulator hands every
//! policy a [`DecisionContext`] describing a *batch* of files (identified by
//! their global indices into the columnar [`FleetState`]) and asks for one
//! tier per batch entry. A batch may be the whole fleet (single-threaded
//! runs) or one shard of it (the parallel engine in [`crate::engine`]). The
//! sharding determinism contract (DESIGN.md §9) requires every policy's
//! decision for a file to depend only on that file, the day, and the file's
//! own current tier — never on which other files share the batch.

use crate::features::FeatureConfig;
use crate::fleet::{FeatureBlock, FleetState, FleetView};
use crate::optimal::optimal_plan;
use pricing::{CostModel, Money, Tier};
use rl::actor_critic::argmax;
use rl::{NetSpec, TrainResult};
use tracegen::Trace;

/// Everything a policy may observe when deciding tiers for one batch of
/// files on one day.
///
/// The information model follows the paper: *Hot*/*Cold* ignore the fleet;
/// *Greedy* reads the decided day's true frequencies (it is an "offline
/// greedy algorithm for each day"); *Optimal* reads the whole future;
/// the RL policy reads only history strictly before `day`.
pub struct DecisionContext<'a> {
    /// The day being decided (tiers apply for this whole day).
    pub day: usize,
    /// The whole fleet in columnar form (each policy uses only its allowed
    /// slice of history).
    pub fleet: &'a FleetState,
    /// The pricing/cost model.
    pub model: &'a CostModel,
    /// Global indices (into `fleet`) of the files in this batch, in
    /// ascending order.
    pub batch: &'a [usize],
    /// Tier each batch entry occupied at the end of the previous day,
    /// parallel to `batch`.
    pub current: &'a [Tier],
}

impl<'a> DecisionContext<'a> {
    /// Number of files in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// The global fleet index of batch entry `slot`. Total: an
    /// out-of-range slot maps to index `usize::MAX`, which every fleet
    /// accessor then reads as zero values.
    #[must_use]
    pub fn global(&self, slot: usize) -> usize {
        self.batch.get(slot).copied().unwrap_or(usize::MAX)
    }

    /// Size of batch entry `slot`.
    #[must_use]
    pub fn size_gb(&self, slot: usize) -> f64 {
        self.fleet.size_gb(self.global(slot))
    }

    /// Full daily read series of batch entry `slot`.
    #[must_use]
    pub fn reads(&self, slot: usize) -> &'a [u64] {
        self.fleet.reads(self.global(slot))
    }

    /// Full daily write series of batch entry `slot`.
    #[must_use]
    pub fn writes(&self, slot: usize) -> &'a [u64] {
        self.fleet.writes(self.global(slot))
    }

    /// Read/write pair of batch entry `slot` on the decided day.
    #[must_use]
    pub fn day_counts(&self, slot: usize) -> (u64, u64) {
        self.fleet.day_counts(self.global(slot), self.day)
    }

    /// The batch as a borrowed [`FleetView`] (the batched-featurization
    /// input).
    #[must_use]
    pub fn view(&self) -> FleetView<'a> {
        self.fleet.view(self.batch, self.day)
    }
}

/// A data-storage-type assignment strategy.
///
/// Implementors provide [`Policy::decide_one`] (and may override
/// [`Policy::decide_batch_into`] when a batched formulation is cheaper, as
/// the RL policy's single network pass is) plus [`Policy::fork`], which
/// the parallel engine uses to give each shard worker a private instance.
///
/// The batch API is *buffer-reusing*: the engine's day loop calls
/// [`Policy::decide_batch_into`] with one decision buffer hoisted outside
/// the loop, so steady-state decision sweeps allocate nothing (the F5
/// `hot-alloc` gate in `cargo xtask check` enforces this).
/// [`Policy::decide_batch`] is the owned-buffer convenience wrapper.
///
/// # Determinism contract
///
/// `decide_one(ctx, slot)` must be a pure function of
/// `(file, day, current-tier-of-that-file, policy state)`, and
/// `decide_batch_into` must equal slot-wise `decide_one` bit-for-bit —
/// regardless of the buffer's prior contents — so that sharded and
/// single-threaded simulations produce identical ledgers (DESIGN.md §9).
/// The policy-conformance suite in `tests/policy_conformance.rs` enforces
/// both properties for every shipped policy.
pub trait Policy: Send {
    /// Short name for reports ("hot", "greedy", "minicost", ...).
    fn name(&self) -> &'static str;

    /// Tier for the single batch entry `slot` of `ctx`.
    fn decide_one(&mut self, ctx: &DecisionContext<'_>, slot: usize) -> Tier;

    /// Writes one tier per batch entry of `ctx` into `out`, in batch
    /// order, replacing whatever `out` held before.
    ///
    /// The default implementation maps [`Policy::decide_one`] over the
    /// batch; override it only with an implementation that writes the
    /// exact same tiers. Implementations must fully overwrite `out`
    /// (clear-then-fill) so a dirty reused buffer can never leak a stale
    /// decision.
    fn decide_batch_into(&mut self, ctx: &DecisionContext<'_>, out: &mut Vec<Tier>) {
        out.clear();
        out.extend((0..ctx.len()).map(|slot| self.decide_one(ctx, slot)));
    }

    /// Tiers for every batch entry of `ctx`, one per file, in batch order.
    ///
    /// Owned-buffer convenience over [`Policy::decide_batch_into`] for
    /// call sites outside the engine's day loop; the sharded engine reuses
    /// one buffer instead.
    fn decide_batch(&mut self, ctx: &DecisionContext<'_>) -> Vec<Tier> {
        let mut out = Vec::new();
        self.decide_batch_into(ctx, &mut out);
        out
    }

    /// Decides the whole columnar fleet in one batch (convenience for call
    /// sites outside the sharded engine). `current` must hold one tier per
    /// fleet file.
    fn decide_full(
        &mut self,
        day: usize,
        fleet: &FleetState,
        model: &CostModel,
        current: &[Tier],
    ) -> Vec<Tier> {
        assert_eq!(current.len(), fleet.len(), "one current tier per file");
        let batch: Vec<usize> = (0..fleet.len()).collect();
        let ctx = DecisionContext { day, fleet, model, batch: &batch, current };
        self.decide_batch(&ctx)
    }

    /// [`Policy::decide_full`] from a row-major [`Trace`]: columnarizes the
    /// trace first, so only suitable for one-shot calls (tests, examples) —
    /// repeated callers should build the [`FleetState`] once themselves.
    fn decide_fleet(
        &mut self,
        day: usize,
        trace: &Trace,
        model: &CostModel,
        current: &[Tier],
    ) -> Vec<Tier> {
        self.decide_full(day, &FleetState::from_trace(trace), model, current)
    }

    /// An independent copy for a parallel shard worker.
    ///
    /// The fork must make decisions identical to `self`'s; accumulated
    /// per-instance state (caches, plans) may be dropped as long as it is
    /// rebuilt deterministically.
    fn fork(&self) -> Box<dyn Policy>;
}

/// Keeps every file in one fixed tier forever.
#[derive(Clone, Copy, Debug)]
pub struct SingleTierPolicy {
    tier: Tier,
    name: &'static str,
}

impl SingleTierPolicy {
    /// A policy pinned to `tier`.
    #[must_use]
    pub fn new(tier: Tier) -> SingleTierPolicy {
        SingleTierPolicy { tier, name: tier.name() }
    }
}

impl Policy for SingleTierPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn decide_one(&mut self, _ctx: &DecisionContext<'_>, _slot: usize) -> Tier {
        self.tier
    }

    fn decide_batch_into(&mut self, ctx: &DecisionContext<'_>, out: &mut Vec<Tier>) {
        out.clear();
        out.resize(ctx.len(), self.tier);
    }

    fn fork(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// The paper's *Hot* baseline: everything in hot storage.
#[derive(Clone, Copy, Debug, Default)]
pub struct HotPolicy;

impl Policy for HotPolicy {
    fn name(&self) -> &'static str {
        "hot"
    }

    fn decide_one(&mut self, _ctx: &DecisionContext<'_>, _slot: usize) -> Tier {
        Tier::Hot
    }

    fn decide_batch_into(&mut self, ctx: &DecisionContext<'_>, out: &mut Vec<Tier>) {
        out.clear();
        out.resize(ctx.len(), Tier::Hot);
    }

    fn fork(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// The paper's *Cold* baseline: everything in cool storage.
#[derive(Clone, Copy, Debug, Default)]
pub struct ColdPolicy;

impl Policy for ColdPolicy {
    fn name(&self) -> &'static str {
        "cold"
    }

    fn decide_one(&mut self, _ctx: &DecisionContext<'_>, _slot: usize) -> Tier {
        Tier::Cool
    }

    fn decide_batch_into(&mut self, ctx: &DecisionContext<'_>, out: &mut Vec<Tier>) {
        out.clear();
        out.resize(ctx.len(), Tier::Cool);
    }

    fn fork(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// The paper's *Greedy* baseline: for each day, each file goes to the tier
/// minimizing that single day's cost including the tier-change charge
/// ("simply select the storage type with the minimum money cost only for
/// the next day", §3.2). Myopic by construction — no look-ahead.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyPolicy;

impl Policy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>, slot: usize) -> Tier {
        let cur = ctx.current[slot];
        let size_gb = ctx.size_gb(slot);
        let (r, w) = ctx.day_counts(slot);
        let q = |t: Tier| {
            ctx.model.policy().change_cost(cur, t, size_gb)
                + ctx.model.steady_day_cost(size_gb, r, w, t)
        };
        Tier::all().reduce(|best, t| if q(t) < q(best) { t } else { best }).unwrap_or(cur)
    }

    fn fork(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// The paper's *Optimal* baseline: the exact offline optimum, precomputed
/// per file over the full horizon (see [`crate::optimal`]).
#[derive(Clone, Debug)]
pub struct OptimalPolicy {
    plans: Vec<Vec<Tier>>,
    /// Total cost the planner expects (useful for cross-checking the
    /// simulator's ledger).
    pub planned_cost: Money,
}

impl OptimalPolicy {
    /// Solves the full-horizon optimum for every file of `trace`.
    #[must_use]
    pub fn plan(trace: &Trace, model: &CostModel, initial_tier: Tier) -> OptimalPolicy {
        let mut plans = Vec::with_capacity(trace.files.len());
        let mut planned_cost = Money::ZERO;
        for file in &trace.files {
            let (plan, cost) = optimal_plan(file, model, initial_tier);
            planned_cost += cost;
            plans.push(plan);
        }
        OptimalPolicy { plans, planned_cost }
    }
}

impl Policy for OptimalPolicy {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>, slot: usize) -> Tier {
        self.plans[ctx.global(slot)][ctx.day]
    }

    fn fork(&self) -> Box<dyn Policy> {
        Box::new(self.clone())
    }
}

/// The trained MiniCost policy: one shared actor network applied per file
/// (O(1) per decision, O(n) per day — §5.1).
pub struct RlPolicy {
    actor: nn::Network,
    spec: NetSpec,
    features: FeatureConfig,
    name: &'static str,
    /// Batched-featurization scratch, hoisted so the daily decision sweep
    /// reuses one `files x state_dim` block instead of reallocating it.
    block: FeatureBlock,
    /// Forward-pass ping-pong buffers, reused for the same reason.
    scratch: nn::ForwardScratch,
}

impl RlPolicy {
    /// Wraps a trained actor. The spec's state width must match the
    /// feature configuration.
    #[must_use]
    pub fn new(result: &TrainResult, features: FeatureConfig) -> RlPolicy {
        RlPolicy::from_params(result.spec, &result.actor_params, features)
    }

    /// Builds directly from a spec and parameter vector.
    #[must_use]
    pub fn from_params(spec: NetSpec, actor_params: &[f64], features: FeatureConfig) -> RlPolicy {
        assert_eq!(
            spec.state_dim(),
            features.state_dim(),
            "network spec and feature config disagree on state width"
        );
        let mut actor = spec.build_actor(0);
        actor.set_params(actor_params);
        RlPolicy {
            actor,
            spec,
            features,
            name: "minicost",
            block: FeatureBlock::new(),
            scratch: nn::ForwardScratch::new(),
        }
    }
}

impl Policy for RlPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>, slot: usize) -> Tier {
        let current = ctx.current[slot];
        if ctx.day == 0 {
            // Nothing has been observed yet: every file encodes to the same
            // all-padding state, so acting would apply one blind action to
            // the whole catalog (catastrophic for the traffic head). Hold
            // the current tier until the first observation arrives.
            return current;
        }
        let state = self.features.encode_state(
            ctx.reads(slot),
            ctx.writes(slot),
            ctx.size_gb(slot),
            ctx.day,
            current,
        );
        let logits = self.actor.forward(&nn::Matrix::row_vector(&state));
        // The actor emits one logit per tier, so argmax is always a valid
        // index; hold the current tier if the network is ever mis-sized.
        Tier::from_index(argmax(logits.row(0))).unwrap_or(current)
    }

    /// Greedy actions for the whole batch in one network pass.
    ///
    /// The batch is featurized straight off the columnar fleet into the
    /// policy's hoisted [`FeatureBlock`] and pushed through the actor's
    /// buffer-reusing [`nn::Network::forward_into`], so the steady-state
    /// sweep allocates nothing — this is what makes the daily decision
    /// sweep of Fig. 12 cheap at scale. Every forward row depends only on
    /// its own input row, so the result is bit-identical to slot-wise
    /// [`Policy::decide_one`] regardless of batch composition.
    fn decide_batch_into(&mut self, ctx: &DecisionContext<'_>, out: &mut Vec<Tier>) {
        out.clear();
        if ctx.day == 0 || ctx.is_empty() {
            out.extend_from_slice(ctx.current);
            return;
        }
        self.features.encode_block(&ctx.view(), ctx.current, &mut self.block);
        let logits = self.actor.forward_into(self.block.matrix(), &mut self.scratch);
        out.extend(
            ctx.current
                .iter()
                .enumerate()
                .map(|(row, &cur)| Tier::from_index(argmax(logits.row(row))).unwrap_or(cur)),
        );
    }

    fn fork(&self) -> Box<dyn Policy> {
        Box::new(RlPolicy::from_params(self.spec, &self.actor.param_vector(), self.features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pricing::PricingPolicy;
    use tracegen::TraceConfig;

    fn setup() -> (Trace, CostModel) {
        (
            Trace::generate(&TraceConfig::small(30, 14, 3)),
            CostModel::new(PricingPolicy::azure_blob_2020()),
        )
    }

    fn fleet(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    fn ctx<'a>(
        fleet: &'a FleetState,
        model: &'a CostModel,
        day: usize,
        batch: &'a [usize],
        current: &'a [Tier],
    ) -> DecisionContext<'a> {
        DecisionContext { day, fleet, model, batch, current }
    }

    fn test_spec() -> NetSpec {
        NetSpec {
            window: 4,
            channels: crate::features::FeatureConfig::CHANNELS,
            extras: crate::features::EXTRA_FEATURES,
            filters: 4,
            kernel: 2,
            stride: 1,
            hidden: 8,
            actions: 3,
        }
    }

    #[test]
    fn single_tier_policies_are_constant() {
        let (trace, model) = setup();
        let columns = FleetState::from_trace(&trace);
        let batch = fleet(trace.len());
        let current = vec![Tier::Hot; trace.len()];
        let c = ctx(&columns, &model, 0, &batch, &current);
        assert!(HotPolicy.decide_batch(&c).iter().all(|&t| t == Tier::Hot));
        assert!(ColdPolicy.decide_batch(&c).iter().all(|&t| t == Tier::Cool));
        let mut archive = SingleTierPolicy::new(Tier::Archive);
        assert!(archive.decide_batch(&c).iter().all(|&t| t == Tier::Archive));
        assert_eq!(HotPolicy.name(), "hot");
        assert_eq!(ColdPolicy.name(), "cold");
        assert_eq!(archive.name(), "archive");
    }

    #[test]
    fn greedy_picks_the_cheapest_single_day() {
        let (trace, model) = setup();
        let columns = FleetState::from_trace(&trace);
        let batch = fleet(trace.len());
        let current = vec![Tier::Hot; trace.len()];
        let c = ctx(&columns, &model, 5, &batch, &current);
        let decision = GreedyPolicy.decide_batch(&c);
        for (i, (&chosen, file)) in decision.iter().zip(&trace.files).enumerate() {
            let (r, w) = file.day(5);
            let cost_of = |t: Tier| {
                model.policy().change_cost(Tier::Hot, t, file.size_gb)
                    + model.steady_day_cost(file.size_gb, r, w, t)
            };
            for other in Tier::all() {
                assert!(
                    cost_of(chosen) <= cost_of(other),
                    "file {i}: {chosen} not cheapest vs {other}"
                );
            }
        }
    }

    #[test]
    fn greedy_accounts_for_change_cost() {
        // A 20 GB file in cool storage with one read today: moving to hot
        // would save on the read but the cool->hot retrieval charge
        // (\$0.01/GB over 20 GB) exceeds the saving, so greedy stays put.
        let (_, model) = setup();
        let file = tracegen::FileSeries {
            id: tracegen::FileId(0),
            size_gb: 20.0,
            reads: vec![1],
            writes: vec![0],
        };
        let trace = Trace { days: 1, files: vec![file] };
        let current = vec![Tier::Cool];
        let decision = GreedyPolicy.decide_fleet(0, &trace, &model, &current);
        assert_eq!(decision[0], Tier::Cool, "change cost must deter the move");

        // Sanity check of the premise: with two reads the saving flips and
        // greedy moves to hot.
        let file2 = tracegen::FileSeries {
            id: tracegen::FileId(0),
            size_gb: 20.0,
            reads: vec![2],
            writes: vec![0],
        };
        let trace2 = Trace { days: 1, files: vec![file2] };
        assert_eq!(GreedyPolicy.decide_fleet(0, &trace2, &model, &current)[0], Tier::Hot);
    }

    #[test]
    fn optimal_policy_replays_its_plans() {
        let (trace, model) = setup();
        let mut opt = OptimalPolicy::plan(&trace, &model, Tier::Hot);
        assert!(opt.planned_cost > Money::ZERO);
        let current = vec![Tier::Hot; trace.len()];
        for day in [0usize, 7, 13] {
            let decision = opt.decide_fleet(day, &trace, &model, &current);
            assert_eq!(decision.len(), trace.len());
            for (plan, &tier) in opt.plans.iter().zip(&decision) {
                assert_eq!(plan[day], tier);
            }
        }
        assert_eq!(opt.name(), "optimal");
    }

    #[test]
    fn optimal_indexes_plans_by_global_index() {
        // A sub-batch must look plans up by global trace index, not by the
        // file's position inside the batch — the sharding correctness
        // linchpin.
        let (trace, model) = setup();
        let mut opt = OptimalPolicy::plan(&trace, &model, Tier::Hot);
        let columns = FleetState::from_trace(&trace);
        let batch = vec![7usize, 12, 25];
        let current = vec![Tier::Hot; batch.len()];
        let c = ctx(&columns, &model, 9, &batch, &current);
        let decision = opt.decide_batch(&c);
        for (slot, &ix) in batch.iter().enumerate() {
            assert_eq!(decision[slot], opt.plans[ix][9]);
        }
    }

    #[test]
    fn rl_policy_produces_valid_tiers() {
        let features = FeatureConfig { window: 4 };
        let spec = test_spec();
        let actor = spec.build_actor(1);
        let mut policy = RlPolicy::from_params(spec, &actor.param_vector(), features);
        let (trace, model) = setup();
        let current = vec![Tier::Hot; trace.len()];
        let decision = policy.decide_fleet(6, &trace, &model, &current);
        assert_eq!(decision.len(), trace.len());
        assert_eq!(policy.name(), "minicost");
    }

    #[test]
    fn rl_policy_is_deterministic() {
        let features = FeatureConfig { window: 4 };
        let spec = test_spec();
        let actor = spec.build_actor(2);
        let mut p1 = RlPolicy::from_params(spec, &actor.param_vector(), features);
        let mut p2 = RlPolicy::from_params(spec, &actor.param_vector(), features);
        let (trace, model) = setup();
        let current = vec![Tier::Cool; trace.len()];
        assert_eq!(
            p1.decide_fleet(9, &trace, &model, &current),
            p2.decide_fleet(9, &trace, &model, &current)
        );
    }

    #[test]
    fn batched_decide_matches_per_file() {
        let features = FeatureConfig { window: 4 };
        let spec = test_spec();
        let actor = spec.build_actor(9);
        let mut policy = RlPolicy::from_params(spec, &actor.param_vector(), features);
        let (trace, model) = setup();
        let columns = FleetState::from_trace(&trace);
        let batch = fleet(trace.len());
        let current: Vec<Tier> =
            (0..trace.len()).map(|i| Tier::from_index(i % 3).unwrap()).collect();
        for day in [0usize, 1, 7] {
            let c = ctx(&columns, &model, day, &batch, &current);
            let batched = policy.decide_batch(&c);
            let singly: Vec<Tier> = (0..c.len()).map(|slot| policy.decide_one(&c, slot)).collect();
            assert_eq!(batched, singly, "day {day}");
        }
    }

    #[test]
    fn decide_batch_into_overwrites_dirty_buffers() {
        // The engine reuses one decision buffer across days; a stale entry
        // must never survive a refill, for any override of the method.
        let features = FeatureConfig { window: 4 };
        let spec = test_spec();
        let actor = spec.build_actor(9);
        let rl = RlPolicy::from_params(spec, &actor.param_vector(), features);
        let (trace, model) = setup();
        let columns = FleetState::from_trace(&trace);
        let batch = fleet(trace.len());
        let current = vec![Tier::Hot; trace.len()];
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(HotPolicy),
            Box::new(ColdPolicy),
            Box::new(SingleTierPolicy::new(Tier::Archive)),
            Box::new(GreedyPolicy),
            rl.fork(),
        ];
        for day in [0usize, 3] {
            let c = ctx(&columns, &model, day, &batch, &current);
            for policy in &mut policies {
                let mut dirty = vec![Tier::Archive; trace.len() + 17];
                policy.decide_batch_into(&c, &mut dirty);
                assert_eq!(dirty, policy.decide_batch(&c), "{} day {day}", policy.name());
            }
        }
    }

    #[test]
    fn forked_rl_policy_decides_identically() {
        let features = FeatureConfig { window: 4 };
        let spec = test_spec();
        let actor = spec.build_actor(5);
        let mut policy = RlPolicy::from_params(spec, &actor.param_vector(), features);
        let mut fork = policy.fork();
        let (trace, model) = setup();
        let current = vec![Tier::Hot; trace.len()];
        assert_eq!(
            policy.decide_fleet(6, &trace, &model, &current),
            fork.decide_fleet(6, &trace, &model, &current)
        );
        assert_eq!(fork.name(), "minicost");
    }

    #[test]
    #[should_panic(expected = "disagree on state width")]
    fn rl_policy_rejects_mismatched_features() {
        let spec = NetSpec {
            window: 4,
            channels: crate::features::FeatureConfig::CHANNELS,
            extras: 1, // wrong: EXTRA_FEATURES is larger
            filters: 4,
            kernel: 2,
            stride: 1,
            hidden: 8,
            actions: 3,
        };
        let actor = spec.build_actor(1);
        let _ = RlPolicy::from_params(spec, &actor.param_vector(), FeatureConfig { window: 4 });
    }
}
