//! The paper's five data-storage-type assignment strategies (§6.1):
//! *Hot*, *Cold*, *Greedy*, *Optimal*, and the RL-driven *MiniCost* policy.

use crate::features::FeatureConfig;
use crate::optimal::optimal_plan;
use pricing::{CostModel, Money, Tier};
use rl::actor_critic::argmax;
use rl::{NetSpec, TrainResult};
use tracegen::Trace;

/// Everything a policy may observe when deciding tiers for one day.
///
/// The information model follows the paper: *Hot*/*Cold* ignore the trace;
/// *Greedy* reads the decided day's true frequencies (it is an "offline
/// greedy algorithm for each day"); *Optimal* reads the whole future;
/// the RL policy reads only history strictly before `day`.
pub struct DecisionContext<'a> {
    /// The day being decided (tiers apply for this whole day).
    pub day: usize,
    /// The full trace (each policy uses only its allowed slice).
    pub trace: &'a Trace,
    /// The pricing/cost model.
    pub model: &'a CostModel,
    /// Tier each file occupied at the end of the previous day.
    pub current: &'a [Tier],
}

/// A data-storage-type assignment strategy.
pub trait Policy {
    /// Short name for reports ("hot", "greedy", "minicost", ...).
    fn name(&self) -> &'static str;

    /// Tiers for every file for `ctx.day`. Must return exactly one tier per
    /// file.
    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<Tier>;
}

/// Keeps every file in one fixed tier forever.
#[derive(Clone, Copy, Debug)]
pub struct SingleTierPolicy {
    tier: Tier,
    name: &'static str,
}

impl SingleTierPolicy {
    /// A policy pinned to `tier`.
    #[must_use]
    pub fn new(tier: Tier) -> SingleTierPolicy {
        SingleTierPolicy { tier, name: tier.name() }
    }
}

impl Policy for SingleTierPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<Tier> {
        vec![self.tier; ctx.trace.files.len()]
    }
}

/// The paper's *Hot* baseline: everything in hot storage.
#[derive(Clone, Copy, Debug, Default)]
pub struct HotPolicy;

impl Policy for HotPolicy {
    fn name(&self) -> &'static str {
        "hot"
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<Tier> {
        vec![Tier::Hot; ctx.trace.files.len()]
    }
}

/// The paper's *Cold* baseline: everything in cool storage.
#[derive(Clone, Copy, Debug, Default)]
pub struct ColdPolicy;

impl Policy for ColdPolicy {
    fn name(&self) -> &'static str {
        "cold"
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<Tier> {
        vec![Tier::Cool; ctx.trace.files.len()]
    }
}

/// The paper's *Greedy* baseline: for each day, each file goes to the tier
/// minimizing that single day's cost including the tier-change charge
/// ("simply select the storage type with the minimum money cost only for
/// the next day", §3.2). Myopic by construction — no look-ahead.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyPolicy;

impl Policy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<Tier> {
        ctx.trace
            .files
            .iter()
            .zip(ctx.current)
            .map(|(file, &cur)| {
                let (r, w) = file.day(ctx.day);
                let q = |t: Tier| {
                    ctx.model.policy().change_cost(cur, t, file.size_gb)
                        + ctx.model.steady_day_cost(file.size_gb, r, w, t)
                };
                Tier::all().reduce(|best, t| if q(t) < q(best) { t } else { best }).unwrap_or(cur)
            })
            .collect()
    }
}

/// The paper's *Optimal* baseline: the exact offline optimum, precomputed
/// per file over the full horizon (see [`crate::optimal`]).
#[derive(Clone, Debug)]
pub struct OptimalPolicy {
    plans: Vec<Vec<Tier>>,
    /// Total cost the planner expects (useful for cross-checking the
    /// simulator's ledger).
    pub planned_cost: Money,
}

impl OptimalPolicy {
    /// Solves the full-horizon optimum for every file of `trace`.
    #[must_use]
    pub fn plan(trace: &Trace, model: &CostModel, initial_tier: Tier) -> OptimalPolicy {
        let mut plans = Vec::with_capacity(trace.files.len());
        let mut planned_cost = Money::ZERO;
        for file in &trace.files {
            let (plan, cost) = optimal_plan(file, model, initial_tier);
            planned_cost += cost;
            plans.push(plan);
        }
        OptimalPolicy { plans, planned_cost }
    }
}

impl Policy for OptimalPolicy {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<Tier> {
        self.plans.iter().map(|plan| plan[ctx.day]).collect()
    }
}

/// The trained MiniCost policy: one shared actor network applied per file
/// (O(1) per decision, O(n) per day — §5.1).
pub struct RlPolicy {
    actor: nn::Network,
    features: FeatureConfig,
    name: &'static str,
}

impl RlPolicy {
    /// Wraps a trained actor. The spec's state width must match the
    /// feature configuration.
    #[must_use]
    pub fn new(result: &TrainResult, features: FeatureConfig) -> RlPolicy {
        RlPolicy::from_params(result.spec, &result.actor_params, features)
    }

    /// Builds directly from a spec and parameter vector.
    #[must_use]
    pub fn from_params(spec: NetSpec, actor_params: &[f64], features: FeatureConfig) -> RlPolicy {
        assert_eq!(
            spec.state_dim(),
            features.state_dim(),
            "network spec and feature config disagree on state width"
        );
        let mut actor = spec.build_actor(0);
        actor.set_params(actor_params);
        RlPolicy { actor, features, name: "minicost" }
    }

    /// Greedy action for one file on one day.
    #[must_use]
    pub fn decide_file(&mut self, file: &tracegen::FileSeries, day: usize, current: Tier) -> Tier {
        if day == 0 {
            // Nothing has been observed yet: every file encodes to the same
            // all-padding state, so acting would apply one blind action to
            // the whole catalog (catastrophic for the traffic head). Hold
            // the current tier until the first observation arrives.
            return current;
        }
        let state = self.features.encode(file, day, current);
        let logits = self.actor.forward(&nn::Matrix::row_vector(&state));
        // The actor emits one logit per tier, so argmax is always a valid
        // index; hold the current tier if the network is ever mis-sized.
        Tier::from_index(argmax(logits.row(0))).unwrap_or(current)
    }
}

impl RlPolicy {
    /// Greedy actions for a batch of files in one network pass.
    ///
    /// One `files x state_dim` matrix through the actor amortizes the
    /// per-call overhead across the catalog — this is what makes the daily
    /// decision sweep of Fig. 12 cheap at scale. Day 0 holds current tiers
    /// (see [`RlPolicy::decide_file`]).
    #[must_use]
    pub fn decide_batch(
        &mut self,
        files: &[tracegen::FileSeries],
        day: usize,
        current: &[Tier],
    ) -> Vec<Tier> {
        assert_eq!(files.len(), current.len(), "one current tier per file");
        if day == 0 || files.is_empty() {
            return current.to_vec();
        }
        let dim = self.features.state_dim();
        let mut states = Vec::with_capacity(files.len() * dim);
        for (file, &cur) in files.iter().zip(current) {
            states.extend(self.features.encode(file, day, cur));
        }
        let batch = nn::Matrix::from_vec(files.len(), dim, states);
        let logits = self.actor.forward(&batch);
        (0..files.len())
            .map(|row| Tier::from_index(argmax(logits.row(row))).unwrap_or(current[row]))
            .collect()
    }
}

impl Policy for RlPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Vec<Tier> {
        self.decide_batch(&ctx.trace.files, ctx.day, ctx.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pricing::PricingPolicy;
    use tracegen::TraceConfig;

    fn setup() -> (Trace, CostModel) {
        (
            Trace::generate(&TraceConfig::small(30, 14, 3)),
            CostModel::new(PricingPolicy::azure_blob_2020()),
        )
    }

    fn ctx<'a>(
        trace: &'a Trace,
        model: &'a CostModel,
        day: usize,
        current: &'a [Tier],
    ) -> DecisionContext<'a> {
        DecisionContext { day, trace, model, current }
    }

    #[test]
    fn single_tier_policies_are_constant() {
        let (trace, model) = setup();
        let current = vec![Tier::Hot; trace.len()];
        let c = ctx(&trace, &model, 0, &current);
        assert!(HotPolicy.decide(&c).iter().all(|&t| t == Tier::Hot));
        assert!(ColdPolicy.decide(&c).iter().all(|&t| t == Tier::Cool));
        let mut archive = SingleTierPolicy::new(Tier::Archive);
        assert!(archive.decide(&c).iter().all(|&t| t == Tier::Archive));
        assert_eq!(HotPolicy.name(), "hot");
        assert_eq!(ColdPolicy.name(), "cold");
        assert_eq!(archive.name(), "archive");
    }

    #[test]
    fn greedy_picks_the_cheapest_single_day() {
        let (trace, model) = setup();
        let current = vec![Tier::Hot; trace.len()];
        let c = ctx(&trace, &model, 5, &current);
        let decision = GreedyPolicy.decide(&c);
        for (i, (&chosen, file)) in decision.iter().zip(&trace.files).enumerate() {
            let (r, w) = file.day(5);
            let cost_of = |t: Tier| {
                model.policy().change_cost(Tier::Hot, t, file.size_gb)
                    + model.steady_day_cost(file.size_gb, r, w, t)
            };
            for other in Tier::all() {
                assert!(
                    cost_of(chosen) <= cost_of(other),
                    "file {i}: {chosen} not cheapest vs {other}"
                );
            }
        }
    }

    #[test]
    fn greedy_accounts_for_change_cost() {
        // A 20 GB file in cool storage with one read today: moving to hot
        // would save on the read but the cool->hot retrieval charge
        // (\$0.01/GB over 20 GB) exceeds the saving, so greedy stays put.
        let (_, model) = setup();
        let file = tracegen::FileSeries {
            id: tracegen::FileId(0),
            size_gb: 20.0,
            reads: vec![1],
            writes: vec![0],
        };
        let trace = Trace { days: 1, files: vec![file] };
        let current = vec![Tier::Cool];
        let c = ctx(&trace, &model, 0, &current);
        let decision = GreedyPolicy.decide(&c);
        assert_eq!(decision[0], Tier::Cool, "change cost must deter the move");

        // Sanity check of the premise: with two reads the saving flips and
        // greedy moves to hot.
        let file2 = tracegen::FileSeries {
            id: tracegen::FileId(0),
            size_gb: 20.0,
            reads: vec![2],
            writes: vec![0],
        };
        let trace2 = Trace { days: 1, files: vec![file2] };
        let c2 = ctx(&trace2, &model, 0, &current);
        assert_eq!(GreedyPolicy.decide(&c2)[0], Tier::Hot);
    }

    #[test]
    fn optimal_policy_replays_its_plans() {
        let (trace, model) = setup();
        let mut opt = OptimalPolicy::plan(&trace, &model, Tier::Hot);
        assert!(opt.planned_cost > Money::ZERO);
        let current = vec![Tier::Hot; trace.len()];
        for day in [0usize, 7, 13] {
            let decision = opt.decide(&ctx(&trace, &model, day, &current));
            assert_eq!(decision.len(), trace.len());
            for (plan, &tier) in opt.plans.iter().zip(&decision) {
                assert_eq!(plan[day], tier);
            }
        }
        assert_eq!(opt.name(), "optimal");
    }

    #[test]
    fn rl_policy_produces_valid_tiers() {
        let features = FeatureConfig { window: 4 };
        let spec = NetSpec {
            window: 4,
            channels: crate::features::FeatureConfig::CHANNELS,
            extras: crate::features::EXTRA_FEATURES,
            filters: 4,
            kernel: 2,
            stride: 1,
            hidden: 8,
            actions: 3,
        };
        let actor = spec.build_actor(1);
        let mut policy = RlPolicy::from_params(spec, &actor.param_vector(), features);
        let (trace, model) = setup();
        let current = vec![Tier::Hot; trace.len()];
        let decision = policy.decide(&ctx(&trace, &model, 6, &current));
        assert_eq!(decision.len(), trace.len());
        assert_eq!(policy.name(), "minicost");
    }

    #[test]
    fn rl_policy_is_deterministic() {
        let features = FeatureConfig { window: 4 };
        let spec = NetSpec {
            window: 4,
            channels: crate::features::FeatureConfig::CHANNELS,
            extras: crate::features::EXTRA_FEATURES,
            filters: 4,
            kernel: 2,
            stride: 1,
            hidden: 8,
            actions: 3,
        };
        let actor = spec.build_actor(2);
        let mut p1 = RlPolicy::from_params(spec, &actor.param_vector(), features);
        let mut p2 = RlPolicy::from_params(spec, &actor.param_vector(), features);
        let (trace, model) = setup();
        let current = vec![Tier::Cool; trace.len()];
        let c = ctx(&trace, &model, 9, &current);
        assert_eq!(p1.decide(&c), p2.decide(&c));
    }

    #[test]
    fn batched_decide_matches_per_file() {
        let features = FeatureConfig { window: 4 };
        let spec = NetSpec {
            window: 4,
            channels: crate::features::FeatureConfig::CHANNELS,
            extras: crate::features::EXTRA_FEATURES,
            filters: 4,
            kernel: 2,
            stride: 1,
            hidden: 8,
            actions: 3,
        };
        let actor = spec.build_actor(9);
        let mut policy = RlPolicy::from_params(spec, &actor.param_vector(), features);
        let (trace, _) = setup();
        let current: Vec<Tier> =
            (0..trace.len()).map(|i| Tier::from_index(i % 3).unwrap()).collect();
        for day in [0usize, 1, 7] {
            let batched = policy.decide_batch(&trace.files, day, &current);
            let singly: Vec<Tier> = if day == 0 {
                current.clone()
            } else {
                trace
                    .files
                    .iter()
                    .zip(&current)
                    .map(|(f, &c)| policy.decide_file(f, day, c))
                    .collect()
            };
            assert_eq!(batched, singly, "day {day}");
        }
    }

    #[test]
    #[should_panic(expected = "disagree on state width")]
    fn rl_policy_rejects_mismatched_features() {
        let spec = NetSpec {
            window: 4,
            channels: crate::features::FeatureConfig::CHANNELS,
            extras: 1, // wrong: EXTRA_FEATURES is larger
            filters: 4,
            kernel: 2,
            stride: 1,
            hidden: 8,
            actions: 3,
        };
        let actor = spec.build_actor(1);
        let _ = RlPolicy::from_params(spec, &actor.param_vector(), FeatureConfig { window: 4 });
    }
}
