//! Prediction-based planning — the alternative the paper argues against.
//!
//! §3.2 of the paper: "the data storage type assignment system needs
//! long-term file request frequency prediction and then specifies the type
//! of storage accordingly" — but Fig. 4 shows ARIMA's errors explode on the
//! high-variability files that hold the most savings. This module makes
//! that argument executable: [`PredictivePolicy`] forecasts each file's
//! next decision period with a pluggable [`forecast::Forecaster`] and runs
//! the exact DP on the *predicted* frequencies. Where predictions are good
//! it approaches Optimal; where they are not (the viral bucket) it pays for
//! its confidence — the `ablation_prediction` experiment quantifies both.

use crate::policy::{DecisionContext, Policy};
use pricing::{Money, Tier, TIER_COUNT};

/// A planner that forecasts request frequencies and optimizes tiers against
/// the forecast.
///
/// Every `horizon` days it re-forecasts each file's next `horizon` daily
/// read counts from the observed history (strictly before the decision
/// day), plans the cheapest tier sequence for that window with the same DP
/// as [`crate::optimal`], and replays the plan until the next refit.
///
/// Plans are keyed by **global** file index and built lazily per batch, so
/// a file's plan is the same whether it is decided in the full fleet or in
/// a shard — the sharding determinism contract of DESIGN.md §9.
pub struct PredictivePolicy<F: forecast::Forecaster> {
    forecaster: F,
    horizon: usize,
    /// Lazily-built per-file plans for the current window, keyed by global
    /// file index; cleared at every refit boundary.
    plans: Vec<Option<Vec<Tier>>>,
    planned_at: Option<usize>,
}

impl<F: forecast::Forecaster> PredictivePolicy<F> {
    /// Creates a planner that refits every `horizon` days (the paper's
    /// weekly decision period is 7). Panics if `horizon == 0`.
    #[must_use]
    pub fn new(forecaster: F, horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        PredictivePolicy { forecaster, horizon, plans: Vec::new(), planned_at: None }
    }

    /// Clears all plans and restarts the window when the decision day has
    /// moved past the current one. The cadence depends only on the sequence
    /// of decision days, never on which files are in the batch, so every
    /// shard fork refits on the same days.
    fn refit_if_due(&mut self, day: usize, files: usize) {
        let refit = match self.planned_at {
            None => true,
            Some(at) => day >= at + self.horizon,
        };
        if refit {
            self.plans.clear();
            self.plans.resize(files, None);
            self.planned_at = Some(day);
        }
    }

    /// Plans one file's next window from predicted frequencies, given the
    /// file's raw daily columns.
    fn plan_file(
        &self,
        reads: &[u64],
        writes: &[u64],
        size_gb: f64,
        day: usize,
        current: Tier,
        model: &pricing::CostModel,
    ) -> Vec<Tier> {
        let history: Vec<f64> = reads[..day].iter().map(|&r| r as f64).collect();
        let window = self.horizon.min(reads.len() - day);
        let predicted_reads = self.forecaster.forecast(&history, window);
        // Writes follow the file's observed write/read ratio.
        let observed_reads: u64 = reads[..day].iter().sum();
        let observed_writes: u64 = writes[..day].iter().sum();
        let write_ratio =
            if observed_reads == 0 { 0.0 } else { observed_writes as f64 / observed_reads as f64 };

        // DP over (day-in-window, tier) on predicted frequencies — same
        // recurrence as `optimal::optimal_plan`, inlined here because the
        // inputs are fractional predictions, not integer history.
        let days = predicted_reads.len();
        if days == 0 {
            return vec![current];
        }
        let cost_of = |pred: f64, tier: Tier| -> Money {
            let reads = pred.max(0.0).round() as u64;
            let writes = (pred.max(0.0) * write_ratio).round() as u64;
            model.steady_day_cost(size_gb, reads, writes, tier)
        };
        let mut best = vec![[Money::MAX; TIER_COUNT]; days];
        let mut parent = vec![[0usize; TIER_COUNT]; days];
        for tier in Tier::all() {
            best[0][tier.index()] = model.policy().change_cost(current, tier, size_gb)
                + cost_of(predicted_reads[0], tier);
        }
        for d in 1..days {
            for tier in Tier::all() {
                let steady = cost_of(predicted_reads[d], tier);
                let (prev, cost) = Tier::all()
                    .map(|p| {
                        (
                            p,
                            best[d - 1][p.index()]
                                .saturating_add(model.policy().change_cost(p, tier, size_gb)),
                        )
                    })
                    .fold(None, |best: Option<(Tier, Money)>, cand| match best {
                        Some(b) if b.1 <= cand.1 => Some(b),
                        _ => Some(cand),
                    })
                    .unwrap_or((Tier::Hot, Money::MAX));
                best[d][tier.index()] = cost.saturating_add(steady);
                parent[d][tier.index()] = prev.index();
            }
        }
        let mut last = Tier::Hot;
        for t in Tier::all() {
            if best[days - 1][t.index()] < best[days - 1][last.index()] {
                last = t;
            }
        }
        let mut plan = vec![Tier::Hot; days];
        for d in (0..days).rev() {
            plan[d] = last;
            if d > 0 {
                last = Tier::ALL[parent[d][last.index()]];
            }
        }
        plan
    }
}

impl<F: forecast::Forecaster + Clone + Send + 'static> Policy for PredictivePolicy<F> {
    fn name(&self) -> &'static str {
        "predictive"
    }

    fn decide_one(&mut self, ctx: &DecisionContext<'_>, slot: usize) -> Tier {
        self.refit_if_due(ctx.day, ctx.fleet.len());
        let at = self.planned_at.unwrap_or(ctx.day);
        let global = ctx.global(slot);
        let cur = ctx.current[slot];
        if self.plans.len() <= global {
            self.plans.resize(global + 1, None);
        }
        if self.plans[global].is_none() {
            let plan = if at == 0 {
                // Nothing observed yet; hold (same rationale as RlPolicy's
                // day-0 rule).
                vec![cur; self.horizon]
            } else {
                // History is cut at the refit day, so a plan built lazily
                // later in the window is identical to one built at refit.
                self.plan_file(
                    ctx.reads(slot),
                    ctx.writes(slot),
                    ctx.size_gb(slot),
                    at,
                    cur,
                    ctx.model,
                )
            };
            self.plans[global] = Some(plan);
        }
        let offset = ctx.day - at;
        self.plans[global].as_ref().and_then(|plan| plan.get(offset)).copied().unwrap_or(cur)
    }

    fn fork(&self) -> Box<dyn Policy> {
        // A fork starts with empty plans: plans depend only on
        // (file, refit day, tier at refit), so each shard rebuilds exactly
        // the same ones for its own files.
        Box::new(PredictivePolicy {
            forecaster: self.forecaster.clone(),
            horizon: self.horizon,
            plans: Vec::new(),
            planned_at: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{HotPolicy, OptimalPolicy};
    use crate::sim::{simulate, SimConfig};
    use forecast::{Naive, SeasonalNaive};
    use pricing::{CostModel, PricingPolicy};
    use tracegen::{Trace, TraceConfig};

    fn setup() -> (Trace, CostModel) {
        (
            Trace::generate(&TraceConfig::small(120, 28, 21)),
            CostModel::new(PricingPolicy::paper_2020()),
        )
    }

    #[test]
    fn predictive_policy_runs_end_to_end() {
        let (trace, model) = setup();
        let cfg = SimConfig::default();
        let mut policy = PredictivePolicy::new(SeasonalNaive::new(7), 7);
        let run = simulate(&trace, &model, &mut policy, &cfg);
        assert_eq!(run.days(), trace.days);
        assert_eq!(run.policy_name, "predictive");

        // Bounded by the oracle on one side and sanity on the other.
        let opt = simulate(
            &trace,
            &model,
            &mut OptimalPolicy::plan(&trace, &model, cfg.initial_tier),
            &cfg,
        )
        .total_cost();
        assert!(run.total_cost() >= opt);
    }

    #[test]
    fn good_predictions_approach_optimal() {
        // On a trace with strong weekly structure, the seasonal-naive
        // planner should clearly beat always-hot.
        let trace = Trace::generate(&TraceConfig {
            files: 150,
            days: 28,
            seed: 5,
            seasonal_share: 0.9,
            ..TraceConfig::default()
        });
        let model = CostModel::new(PricingPolicy::paper_2020());
        let cfg = SimConfig::default();
        let mut policy = PredictivePolicy::new(SeasonalNaive::new(7), 7);
        let predictive = simulate(&trace, &model, &mut policy, &cfg).total_cost();
        let hot = simulate(&trace, &model, &mut HotPolicy, &cfg).total_cost();
        assert!(predictive < hot, "predictive {predictive} should beat always-hot {hot}");
    }

    #[test]
    fn refits_only_at_horizon_boundaries() {
        let (trace, model) = setup();
        let mut policy = PredictivePolicy::new(Naive, 7);
        let current = vec![Tier::Hot; trace.len()];
        // Decisions inside one window come from one plan (same object).
        let d7 = policy.decide_fleet(7, &trace, &model, &current);
        let planned_at = policy.planned_at;
        let _ = policy.decide_fleet(9, &trace, &model, &current);
        assert_eq!(policy.planned_at, planned_at, "no refit inside the window");
        let _ = policy.decide_fleet(14, &trace, &model, &current);
        assert_ne!(policy.planned_at, planned_at, "refit at the boundary");
        assert_eq!(d7.len(), trace.len());
    }

    #[test]
    fn day_zero_holds_current_tiers() {
        let (trace, model) = setup();
        let mut policy = PredictivePolicy::new(Naive, 7);
        let current = vec![Tier::Archive; trace.len()];
        let decision = policy.decide_fleet(0, &trace, &model, &current);
        assert!(decision.iter().all(|&t| t == Tier::Archive));
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        let _ = PredictivePolicy::new(Naive, 0);
    }
}
