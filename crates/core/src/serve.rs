//! Online serving: drive a [`Policy`] from streamed request events.
//!
//! The batch simulator ([`crate::sim::simulate`]) replays a fully
//! materialized file × day matrix. This module is the production-shaped
//! counterpart: it *observes* requests one hourly [`stream::Event`] at a
//! time, maintains bounded-memory online statistics, runs the policy at
//! the decision cadence on features assembled **from those statistics
//! alone**, accrues exact [`pricing::Money`] ledgers incrementally, and
//! snapshots everything atomically so a killed server resumes
//! bit-identically (DESIGN.md §10).
//!
//! # Equivalence contract (the keystone)
//!
//! In exact mode ([`ServeConfig::max_tracked`] = `None`) the serving loop
//! reproduces the batch engine bit-for-bit: for the same trace, policy,
//! cadence, and initial tier, [`serve`] returns `daily` / `per_file` /
//! `tier_changes` / `occupancy` ledgers equal to [`crate::sim::simulate`]'s
//! — including runs interrupted by a kill and resumed from a checkpoint.
//! The argument, piece by piece:
//!
//! * the event stream conserves each file's daily totals exactly
//!   (largest-remainder apportionment), so day-binned counts — and thus
//!   billing — are exact;
//! * the feature encoder reads only the last `window` days positionally
//!   plus prefix *sums* (for its normalizing means); the online stats keep
//!   exactly those, so the synthetic per-file series rebuilt at decision
//!   time encodes to bit-identical `f64` features;
//! * the greedy baseline reads the decided day's true counts, which the
//!   loop holds as the exact open-day pending counters;
//! * checkpoints cut only at day boundaries, and event expansion is seeded
//!   statelessly per `(file, day)`, so the resumed stream is the exact
//!   suffix of the uninterrupted one.
//!
//! In bounded mode (`max_tracked = Some(k)`) only *decision features*
//! degrade to sketch estimates for untracked files — billing stays exact
//! because the loop owns the dense open-day counters either way.

use crate::fleet::FleetState;
use crate::policy::Policy;
use crate::sim::SimResult;
use crate::supervise::{IncidentKind, IncidentLog, SuperviseConfig, Supervisor};
use pricing::{CostBreakdown, CostLedger, CostModel, FileDay, Money, Tier, TIER_COUNT};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;
use store::{
    logical_bytes, recover, JobId, JobPhase, Journal, MigrateConfig, MigrationEventKind,
    MigrationJob, Migrator, PoolBuild, StoragePool, TierIo,
};
use stream::{
    rotate, rotation_candidates, BoundedConfig, BoundedStats, DayBatch, Event, EventSource,
    ExactStats, FaultyBackend, FaultySource, FsBackend, Snapshot, SnapshotError, StorageBackend,
    TraceSource, SNAPSHOT_VERSION,
};
use tracegen::{DiurnalProfile, Trace};

/// Configuration for one serving run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Tier every file occupies before day 0.
    pub initial_tier: Tier,
    /// Run the policy every `decide_every` days (must be positive).
    pub decide_every: usize,
    /// Feature window in days; must match the policy's
    /// [`crate::features::FeatureConfig::window`] for RL policies.
    pub window: usize,
    /// Seed for the hourly event expansion (and sketch hashing).
    pub seed: u64,
    /// `None` runs exact per-file statistics (the batch-equivalent mode);
    /// `Some(k)` caps exact tracking at the `k` heaviest files and serves
    /// the long tail from sketch estimates.
    pub max_tracked: Option<usize>,
    /// Write a snapshot every this many decision epochs (0 = never).
    pub checkpoint_every: u64,
    /// Where snapshots are written; also consulted at startup — an existing
    /// readable snapshot there resumes the run.
    pub checkpoint_path: Option<PathBuf>,
    /// Stop after serving this many days (used to emulate a mid-run kill);
    /// `None` serves the full trace horizon.
    pub max_days: Option<usize>,
    /// Rotation depth: how many predecessor snapshots to keep next to the
    /// checkpoint (`checkpoint.json.1`, `.2`, ...). Restore falls back
    /// through them newest-first when the newest snapshot is corrupt. `0`
    /// disables rotation (saves overwrite in place).
    pub checkpoint_keep: usize,
    /// Attach a tiered object store: every decided tier change then runs
    /// through the migration pipeline (copy → verify → commit → delete)
    /// before it is billed. `None` serves ledgers only, as before.
    pub store: Option<StoreConfig>,
}

/// Configuration for the tiered object store attached to a serving run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Where the pool's vdevs (and, for directory pools, the migration
    /// journal) live. Memory pools cannot resume from a checkpoint.
    pub build: PoolBuild,
    /// Migration pipeline tuning (`--migrate-bw`, `--migrate-inflight`).
    pub migrate: MigrateConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            initial_tier: Tier::Hot,
            decide_every: 1,
            window: crate::features::FeatureConfig::default().window,
            seed: 0,
            max_tracked: None,
            checkpoint_every: 0,
            checkpoint_path: None,
            max_days: None,
            checkpoint_keep: 2,
            store: None,
        }
    }
}

/// Why a serving run could not start or finish.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Invalid configuration (message explains the field).
    Config(String),
    /// A checkpoint failed to save or load.
    Snapshot(SnapshotError),
    /// An existing snapshot is incompatible with this run's configuration.
    SnapshotMismatch(String),
    /// Checkpoints exist but every rotation candidate is corrupt or
    /// unusable — resuming would require manual intervention.
    Unrecoverable(String),
    /// A fault persisted past the supervisor's bounded retry budget.
    RetriesExhausted {
        /// The operation that kept failing.
        what: String,
        /// Retries spent before giving up.
        attempts: u32,
        /// The last observed failure.
        last: String,
    },
    /// The event source could not deliver (or read-repair) an in-horizon
    /// day.
    Stream(String),
    /// The object store is in a state recovery cannot explain, or its
    /// journal disagrees with the billed tier changes — manual
    /// intervention required (CLI exit code 5).
    Pool(String),
    /// The injected crash fired between a migration's copy and commit.
    /// The run aborted *before* billing the day; a restart from the last
    /// checkpoint replays it deterministically (CLI exit code 6).
    InjectedCrash(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "serve config error: {msg}"),
            ServeError::Snapshot(e) => write!(f, "serve snapshot error: {e}"),
            ServeError::SnapshotMismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
            ServeError::Unrecoverable(msg) => write!(f, "unrecoverable checkpoints: {msg}"),
            ServeError::RetriesExhausted { what, attempts, last } => {
                write!(f, "{what} still failing after {attempts} retries: {last}")
            }
            ServeError::Stream(msg) => write!(f, "event stream error: {msg}"),
            ServeError::Pool(msg) => write!(f, "unrecoverable pool error: {msg}"),
            ServeError::InjectedCrash(msg) => write!(f, "injected crash: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> ServeError {
        ServeError::Snapshot(e)
    }
}

/// The outcome of a serving run: the batch-comparable ledgers plus
/// serving-specific bookkeeping.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Ledgers in the batch result shape; in exact mode `daily`,
    /// `per_file`, `tier_changes`, and `occupancy` are bit-identical to
    /// [`crate::sim::simulate`] (wall-clock `decision_millis` legitimately
    /// differ).
    pub result: SimResult,
    /// Decision epochs completed over the life of the run.
    pub epochs: u64,
    /// Day the run resumed from, when a snapshot was restored.
    pub resumed_from_day: Option<usize>,
    /// Snapshots written during this invocation.
    pub checkpoints_written: u64,
    /// Whether the full horizon was served (false when `max_days` cut the
    /// run short — the checkpoint then carries the rest).
    pub days_served_through: usize,
    /// Every recovery action the supervisor took; empty for a clean run,
    /// bit-identical across reruns of the same fault plan.
    pub incidents: IncidentLog,
    /// Decision epochs served by the degraded fallback policy.
    pub degraded_epochs: u64,
    /// Object-store accounting, when [`ServeConfig::store`] was set.
    pub store: Option<StoreReport>,
}

/// What the attached object store did over the run. The headline
/// invariant has already been enforced when this exists:
/// `committed_bytes == billed_change_bytes`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreReport {
    /// Objects resident in the pool at shutdown.
    pub objects: usize,
    /// Migration jobs committed during this invocation.
    pub jobs_committed: u64,
    /// Jobs skipped because the journal already recorded them durable
    /// (day replay after a restart).
    pub jobs_skipped: u64,
    /// Jobs pinned to their source tier after retry exhaustion.
    pub jobs_pinned: u64,
    /// Torn migrations rolled back by startup recovery.
    pub jobs_rolled_back: u64,
    /// Committed migrations rolled forward by startup recovery.
    pub jobs_replayed: u64,
    /// Logical bytes the journal holds commit records for (all time).
    pub committed_bytes: u64,
    /// Logical bytes billed as tier changes (all time, snapshot-carried).
    pub billed_change_bytes: u64,
    /// Virtual ms spent draining migration batches this invocation.
    pub migration_ms: u64,
    /// Per-tier vdev I/O counters for this invocation.
    pub io: [TierIo; TIER_COUNT],
}

/// Mutable serving state; mirrors [`Snapshot`] field-for-field.
struct ServeState {
    next_day: usize,
    epoch: u64,
    tiers: Vec<Tier>,
    ledger: CostLedger,
    per_file: Vec<Money>,
    occupancy: Vec<[usize; TIER_COUNT]>,
    tier_changes: u64,
    billed_change_bytes: u64,
    decision_millis: Vec<f64>,
    exact: Option<ExactStats>,
    bounded: Option<BoundedStats>,
}

impl ServeState {
    fn fresh(cfg: &ServeConfig, fleet: usize) -> ServeState {
        let (exact, bounded) = match cfg.max_tracked {
            None => (Some(ExactStats::new(cfg.window, fleet)), None),
            Some(k) => (
                None,
                Some(BoundedStats::new(BoundedConfig {
                    max_tracked: k,
                    cms_width: 2048,
                    cms_depth: 4,
                    window: cfg.window,
                    seed: cfg.seed,
                })),
            ),
        };
        ServeState {
            next_day: 0,
            epoch: 0,
            tiers: vec![cfg.initial_tier; fleet],
            ledger: CostLedger::new(),
            per_file: vec![Money::ZERO; fleet],
            occupancy: Vec::new(),
            tier_changes: 0,
            billed_change_bytes: 0,
            decision_millis: Vec::new(),
            exact: None,
            bounded: None,
        }
        .with_stats(exact, bounded)
    }

    fn with_stats(
        mut self,
        exact: Option<ExactStats>,
        bounded: Option<BoundedStats>,
    ) -> ServeState {
        self.exact = exact;
        self.bounded = bounded;
        self
    }

    fn from_snapshot(snap: Snapshot) -> ServeState {
        ServeState {
            next_day: snap.next_day,
            epoch: snap.epoch,
            tiers: snap.tiers,
            ledger: snap.ledger,
            per_file: snap.per_file,
            occupancy: snap.occupancy,
            tier_changes: snap.tier_changes,
            billed_change_bytes: snap.billed_change_bytes,
            decision_millis: snap.decision_millis,
            exact: snap.exact,
            bounded: snap.bounded,
        }
    }

    fn to_snapshot(&self, cfg: &ServeConfig, policy_name: &str) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            policy_name: policy_name.to_owned(),
            seed: cfg.seed,
            next_day: self.next_day,
            epoch: self.epoch,
            decide_every: cfg.decide_every,
            window: cfg.window,
            initial_tier: cfg.initial_tier,
            tiers: self.tiers.clone(),
            ledger: self.ledger.clone(),
            per_file: self.per_file.clone(),
            occupancy: self.occupancy.clone(),
            tier_changes: self.tier_changes,
            billed_change_bytes: self.billed_change_bytes,
            decision_millis: self.decision_millis.clone(),
            exact: self.exact.clone(),
            bounded: self.bounded.clone(),
        }
    }
}

/// Validates a restored snapshot against this run's configuration.
fn check_snapshot(
    snap: &Snapshot,
    cfg: &ServeConfig,
    policy_name: &str,
    fleet: usize,
) -> Result<(), ServeError> {
    let mismatch = |what: &str| Err(ServeError::SnapshotMismatch(what.to_owned()));
    if snap.policy_name != policy_name {
        return mismatch(&format!("policy {} vs {}", snap.policy_name, policy_name));
    }
    if snap.seed != cfg.seed {
        return mismatch("stream seed differs");
    }
    if snap.decide_every != cfg.decide_every {
        return mismatch("decision cadence differs");
    }
    if snap.window != cfg.window {
        return mismatch("feature window differs");
    }
    if snap.initial_tier != cfg.initial_tier {
        return mismatch("initial tier differs");
    }
    if snap.tiers.len() != fleet {
        return mismatch(&format!("fleet size {} vs {}", snap.tiers.len(), fleet));
    }
    match cfg.max_tracked {
        None if snap.exact.is_none() => mismatch("snapshot lacks exact statistics"),
        Some(_) if snap.bounded.is_none() => mismatch("snapshot lacks bounded statistics"),
        _ => Ok(()),
    }
}

/// Spreads `total` over `m` filler slots so they sum exactly to `total`.
/// Individual values are never read by any shipped policy (the encoder
/// touches only the last `window` slots positionally and the prefix sum);
/// only the exact total matters.
fn push_filler(out: &mut Vec<u64>, total: u64, m: usize) {
    if m == 0 {
        return;
    }
    let m64 = m as u64;
    let base = total / m64;
    // xtask-allow(panic-reachability): m == 0 returned early above, so m64 >= 1
    let rem = (total % m64) as usize;
    for i in 0..m {
        out.push(base + u64::from(i < rem));
    }
}

/// One file's online statistics as the series synthesizer consumes them.
struct SeriesStats<'a> {
    /// Recent closed-day reads, oldest first.
    ring_reads: &'a [u64],
    /// Recent closed-day writes, oldest first.
    ring_writes: &'a [u64],
    /// Lifetime closed-day read total.
    sum_reads: u64,
    /// Lifetime closed-day write total.
    sum_writes: u64,
    /// Open-day (read, write) counts.
    pending: (u64, u64),
}

/// Appends one file's `day + 1`-entry daily series to the flat columnar
/// buffers: filler conserving the exact prefix sums, then the recent window
/// verbatim, then the open day's pending counts at index `day`. The
/// synthesis kernel behind [`synthesize_fleet`].
fn push_series(reads: &mut Vec<u64>, writes: &mut Vec<u64>, day: usize, s: &SeriesStats<'_>) {
    let keep = s.ring_reads.len().min(day);
    let ring_reads = &s.ring_reads[s.ring_reads.len() - keep..];
    let ring_writes = &s.ring_writes[s.ring_writes.len() - keep..];
    let filler = day - keep;
    let ring_sum_r: u64 = ring_reads.iter().sum();
    let ring_sum_w: u64 = ring_writes.iter().sum();
    push_filler(reads, s.sum_reads.saturating_sub(ring_sum_r), filler);
    push_filler(writes, s.sum_writes.saturating_sub(ring_sum_w), filler);
    reads.extend_from_slice(ring_reads);
    writes.extend_from_slice(ring_writes);
    reads.push(s.pending.0);
    writes.push(s.pending.1);
}

/// Rebuilds the fleet-wide synthetic columnar state the policy decides on
/// for `day`: every file's `day + 1`-entry series appended straight into
/// the flat [`FleetState`] columns — no intermediate per-file `Vec`s, no
/// `Trace` detour.
fn synthesize_fleet(
    catalog: &Trace,
    state: &ServeState,
    pending_reads: &[u64],
    pending_writes: &[u64],
    day: usize,
) -> FleetState {
    let n = catalog.files.len();
    let mut ids = Vec::with_capacity(n);
    let mut sizes = Vec::with_capacity(n);
    let mut reads = Vec::with_capacity(n * (day + 1));
    let mut writes = Vec::with_capacity(n * (day + 1));
    for (ix, file) in catalog.files.iter().enumerate() {
        ids.push(file.id);
        sizes.push(file.size_gb);
        let pending = (pending_reads[ix], pending_writes[ix]);
        if let Some(exact) = &state.exact {
            let empty = stream::FileStats::new();
            let s = exact.file(ix).unwrap_or(&empty);
            let stats = SeriesStats {
                ring_reads: s.recent_reads(),
                ring_writes: s.recent_writes(),
                sum_reads: s.sum_reads(),
                sum_writes: s.sum_writes(),
                pending,
            };
            push_series(&mut reads, &mut writes, day, &stats);
        } else if let Some(bounded) = &state.bounded {
            let (sum_reads, sum_writes) = bounded.lifetime(file.id.0);
            let ring_reads = bounded.window_reads(file.id.0);
            let ring_writes = bounded.window_writes(file.id.0);
            let stats = SeriesStats {
                ring_reads: &ring_reads,
                ring_writes: &ring_writes,
                sum_reads,
                sum_writes,
                pending,
            };
            push_series(&mut reads, &mut writes, day, &stats);
        } else {
            // Unreachable by construction (one mode is always present);
            // degrade to an all-zero history rather than panic.
            let stats = SeriesStats {
                ring_reads: &[],
                ring_writes: &[],
                sum_reads: 0,
                sum_writes: 0,
                pending,
            };
            push_series(&mut reads, &mut writes, day, &stats);
        }
    }
    FleetState::from_columns(day + 1, ids, sizes, reads, writes)
}

/// Restores serving state from the newest usable rotation candidate.
///
/// Candidates are tried newest-first (`path`, `path.1`, ...). A candidate
/// is usable when it loads (transient read failures are retried), passes
/// the v2 checksum, and agrees with this run's configuration. Falling back
/// to an older slot is recorded as [`IncidentKind::RolledBack`].
///
/// Returns `Ok(None)` when no candidate file exists (fresh start). When
/// candidates exist but none is usable: the newest candidate's failure is
/// surfaced — as [`ServeError::SnapshotMismatch`] if it was a
/// configuration disagreement (operator error, not data loss), otherwise
/// wrapped in [`ServeError::Unrecoverable`].
fn restore(
    sup: &mut Supervisor,
    backend: &mut dyn StorageBackend,
    path: &Path,
    cfg: &ServeConfig,
    policy_name: &str,
    fleet: usize,
) -> Result<Option<Snapshot>, ServeError> {
    let candidates = rotation_candidates(path, cfg.checkpoint_keep);
    let mut newest_failure: Option<ServeError> = None;
    let mut tried = 0usize;
    for (slot, cand) in candidates.iter().enumerate() {
        if !backend.exists(cand) {
            continue;
        }
        tried += 1;
        let loaded = sup.retry_snapshot(0, IncidentKind::LoadRetried, "checkpoint load", || {
            Snapshot::load_with(backend, cand)
        });
        match loaded {
            Ok(snap) => match check_snapshot(&snap, cfg, policy_name, fleet) {
                Ok(()) => {
                    if slot > 0 {
                        sup.record(
                            snap.next_day,
                            IncidentKind::RolledBack,
                            format!("restored rotation slot {slot} ({})", cand.display()),
                        );
                    }
                    return Ok(Some(snap));
                }
                Err(e) => {
                    sup.record(0, IncidentKind::CheckpointMismatch, format!("slot {slot}: {e}"));
                    newest_failure.get_or_insert(e);
                }
            },
            Err(e @ ServeError::RetriesExhausted { .. }) => return Err(e),
            Err(e) => {
                sup.record(0, IncidentKind::CheckpointCorrupt, format!("slot {slot}: {e}"));
                newest_failure.get_or_insert(e);
            }
        }
    }
    match newest_failure {
        None => Ok(None),
        Some(ServeError::SnapshotMismatch(m)) => Err(ServeError::SnapshotMismatch(m)),
        Some(e) => Err(ServeError::Unrecoverable(format!(
            "no usable checkpoint among {tried} candidate(s); newest failure: {e}"
        ))),
    }
}

/// Rotates predecessors down one slot, then writes the snapshot — both
/// under the supervisor's transient-retry policy.
fn write_checkpoint(
    sup: &mut Supervisor,
    backend: &mut dyn StorageBackend,
    snap: &Snapshot,
    keep: usize,
    path: &Path,
    day: usize,
) -> Result<(), ServeError> {
    sup.retry_snapshot(day, IncidentKind::SaveRetried, "checkpoint rotation", || {
        rotate(backend, path, keep)
    })?;
    sup.retry_snapshot(day, IncidentKind::SaveRetried, "checkpoint write", || {
        snap.save_with(backend, path)
    })
}

/// Re-reads one day's canonical batch from the durable log (exempt from
/// delivery faults by construction) after a delivery anomaly.
fn refetch_day(source: &mut dyn EventSource, day: usize) -> Result<Vec<Event>, ServeError> {
    match source.refetch(day) {
        Some(batch) if batch.verifies() => Ok(batch.events),
        Some(_) => Err(ServeError::Stream(format!("read-repair of day {day} failed its digest"))),
        None => Err(ServeError::Stream(format!("day {day} is unavailable from the durable log"))),
    }
}

/// Acquires exactly `day`'s canonical events from a possibly-anomalous
/// delivery stream, recording and recovering every detectable anomaly:
///
/// * stale redelivery (`batch.day < day`) — skipped;
/// * gap (`batch.day > day` or stream ended early) — the future batch is
///   stashed in `lookahead` and the missing day is read-repaired;
/// * digest mismatch — first re-sorted to canonical order (repairs pure
///   reordering locally), else read-repaired from the durable log.
fn acquire_day(
    sup: &mut Supervisor,
    source: &mut dyn EventSource,
    lookahead: &mut Option<DayBatch>,
    day: usize,
) -> Result<Vec<Event>, ServeError> {
    loop {
        let Some(batch) = lookahead.take().or_else(|| source.next_batch()) else {
            sup.record(
                day,
                IncidentKind::DroppedDay,
                "delivery ended before the day; read-repair".to_owned(),
            );
            return refetch_day(source, day);
        };
        if batch.day < day {
            sup.record(
                batch.day,
                IncidentKind::DuplicateDay,
                "stale redelivery skipped".to_owned(),
            );
            continue;
        }
        if batch.day > day {
            sup.record(
                day,
                IncidentKind::DroppedDay,
                format!("delivery jumped to day {}; read-repair", batch.day),
            );
            *lookahead = Some(batch);
            return refetch_day(source, day);
        }
        if batch.verifies() {
            return Ok(batch.events);
        }
        // Pure reordering is repairable locally: restore canonical order
        // (ascending hour, ties by file id) and recheck before paying for
        // a durable-log read.
        let mut sorted = batch;
        sorted.events.sort_by_key(|e| (e.hour, e.file.0));
        if sorted.verifies() {
            sup.record(day, IncidentKind::OutOfOrder, "re-sorted to canonical order".to_owned());
            return Ok(sorted.events);
        }
        sup.record(day, IncidentKind::CorruptBatch, "digest mismatch; read-repair".to_owned());
        return refetch_day(source, day);
    }
}

/// Serves `trace` through `policy` under `cfg`, streaming events and
/// deciding online. Resumes from `cfg.checkpoint_path` when a compatible
/// snapshot exists there (falling back through rotation slots if the
/// newest is corrupt).
///
/// The trace is read only as (a) the event source behind
/// [`stream::TraceSource`] and (b) the size/id catalog — per-day request
/// counts reach the policy exclusively through the online statistics.
///
/// This is the unsupervised spelling: it runs under a quiet
/// [`Supervisor`] (no fault plan, no degraded fallback). To arm the chaos
/// harness or degraded mode, build a [`Supervisor`] with a
/// [`SuperviseConfig`] and call [`Supervisor::run`].
///
/// # Errors
///
/// [`ServeError::Config`] for invalid cadence, [`ServeError::Snapshot`] /
/// [`ServeError::SnapshotMismatch`] / [`ServeError::Unrecoverable`] for
/// checkpoint problems.
pub fn serve(
    trace: &Trace,
    model: &CostModel,
    policy: &mut dyn Policy,
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    Supervisor::new(SuperviseConfig::default()).run(trace, model, policy, cfg)
}

/// Live object-store state for one serving run: the pool, its journal,
/// the migrator, and this invocation's counters.
struct StoreRuntime {
    pool: StoragePool,
    journal: Journal,
    migrator: Migrator,
    /// Object key → fleet index, for pinned-job decision overrides.
    file_ix: BTreeMap<u64, usize>,
    jobs_committed: u64,
    jobs_skipped: u64,
    jobs_pinned: u64,
    jobs_rolled_back: u64,
    jobs_replayed: u64,
    migration_ms: u64,
}

/// Opens (or builds) the pool and journal, runs crash recovery, then
/// reconciles the recovered pool against the restored serving state:
/// missing objects are placed at their snapshot tier; an object resident
/// *ahead* of the snapshot is legitimate only when a durable journal
/// record from a to-be-replayed day explains it.
///
/// Recovery and initial placement run before the fault injector is
/// attached — chaos targets the migration pipeline, not the repair path.
fn setup_store(
    sup: &mut Supervisor,
    trace: &Trace,
    sc: &StoreConfig,
    state: &ServeState,
    resumed: bool,
) -> Result<StoreRuntime, ServeError> {
    if resumed && sc.build == PoolBuild::Memory {
        return Err(ServeError::Config(
            "a memory store cannot resume from a checkpoint; use a directory store".to_owned(),
        ));
    }
    let mut pool = StoragePool::build(&sc.build).map_err(|e| ServeError::Pool(e.to_string()))?;
    let mut journal = match sc.build.journal_path() {
        Some(path) => {
            Journal::open_file(&path).map_err(|e| ServeError::Pool(format!("journal: {e}")))?
        }
        None => Journal::in_memory(),
    };
    let recovery = recover(&mut pool, &mut journal).map_err(|e| ServeError::Pool(e.to_string()))?;
    for id in &recovery.rolled_back {
        sup.record(
            id.day,
            IncidentKind::MigrationRolledBack,
            format!("{id}: torn copy rolled back to {}", id.from),
        );
    }
    for id in &recovery.replayed {
        sup.record(
            id.day,
            IncidentKind::MigrationReplayed,
            format!("{id}: durable commit rolled forward to {}", id.to),
        );
    }
    let mut file_ix = BTreeMap::new();
    for (ix, file) in trace.files.iter().enumerate() {
        let key = u64::from(file.id.0);
        file_ix.insert(key, ix);
        let Some(&expected) = state.tiers.get(ix) else { continue };
        match pool.location(key) {
            None => pool
                .put(key, expected, logical_bytes(file.size_gb))
                .map_err(|e| ServeError::Pool(e.to_string()))?,
            Some(t) if t == expected => {}
            Some(t) => {
                let explained = journal.records().iter().any(|r| {
                    r.job.file == key
                        && r.job.to == t
                        && r.job.day >= state.next_day
                        && matches!(r.phase, JobPhase::Committed | JobPhase::Done)
                });
                if !explained {
                    return Err(ServeError::Pool(format!(
                        "object {key:016x} resident on {t} but the snapshot says {expected}, \
                         with no journal record explaining it"
                    )));
                }
            }
        }
    }
    if let Some(inj) = sup.injector() {
        pool.attach_injector(inj);
    }
    Ok(StoreRuntime {
        pool,
        journal,
        migrator: Migrator::new(sc.migrate),
        file_ix,
        jobs_committed: 0,
        jobs_skipped: 0,
        jobs_pinned: 0,
        jobs_rolled_back: recovery.rolled_back.len() as u64,
        jobs_replayed: recovery.replayed.len() as u64,
        migration_ms: 0,
    })
}

/// Drains one decision epoch's tier changes through the migration
/// pipeline *before* billing. Pinned jobs (retry budget exhausted)
/// overwrite the decision back to the source tier, so the billing sweep
/// that follows charges the file where it actually stayed. An injected
/// crash aborts the run before the day is billed — the restart replays
/// the day and the journal dedups whatever had already committed.
fn run_migrations(
    sup: &mut Supervisor,
    rt: &mut StoreRuntime,
    trace: &Trace,
    day: usize,
    decision: &mut [Tier],
    current: &[Tier],
) -> Result<(), ServeError> {
    let mut jobs = Vec::new();
    for ((file, &from), &to) in trace.files.iter().zip(current.iter()).zip(decision.iter()) {
        if from != to {
            jobs.push(MigrationJob {
                id: JobId { day, file: u64::from(file.id.0), from, to },
                logical_bytes: logical_bytes(file.size_gb),
            });
        }
    }
    if jobs.is_empty() {
        return Ok(());
    }
    let out = rt
        .migrator
        .run_batch(&mut rt.pool, &mut rt.journal, &jobs)
        .map_err(|e| ServeError::Pool(e.to_string()))?;
    for ev in &out.events {
        let kind = match ev.kind {
            MigrationEventKind::Retried => IncidentKind::MigrationRetried,
            MigrationEventKind::Pinned => IncidentKind::MigrationPinned,
            MigrationEventKind::RolledBack => IncidentKind::MigrationRolledBack,
            MigrationEventKind::Replayed => IncidentKind::MigrationReplayed,
            MigrationEventKind::Crashed => IncidentKind::MigrationCrashed,
        };
        sup.record_at(ev.at_ms, day, kind, format!("{}: {}", ev.job, ev.detail));
    }
    sup.advance_ms(out.elapsed_ms);
    rt.migration_ms = rt.migration_ms.saturating_add(out.elapsed_ms);
    rt.jobs_committed += out.committed_jobs;
    rt.jobs_skipped += out.skipped_jobs;
    rt.jobs_pinned += out.pinned.len() as u64;
    for id in &out.pinned {
        if let Some(slot) = rt.file_ix.get(&id.file).and_then(|&ix| decision.get_mut(ix)) {
            *slot = id.from;
        }
    }
    if out.crashed {
        return Err(ServeError::InjectedCrash(format!(
            "migration batch on day {day} stopped between copy and commit; \
             restart from the last checkpoint to recover"
        )));
    }
    Ok(())
}

/// The supervised serve loop behind both [`serve`] and
/// [`Supervisor::run`].
pub(crate) fn run_supervised(
    sup: &mut Supervisor,
    trace: &Trace,
    model: &CostModel,
    policy: &mut dyn Policy,
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    if cfg.decide_every == 0 {
        return Err(ServeError::Config("decide_every must be positive".to_owned()));
    }
    let fleet = trace.files.len();

    // The storage backend and event source, wrapped in their faulty
    // counterparts when a chaos plan is armed.
    let mut backend: Box<dyn StorageBackend> = match sup.injector() {
        Some(inj) => Box::new(FaultyBackend::new(FsBackend, inj)),
        None => Box::new(FsBackend),
    };

    // Restore from the newest usable rotation candidate, or start fresh.
    let mut resumed_from_day = None;
    let mut state = match &cfg.checkpoint_path {
        Some(path) => match restore(sup, backend.as_mut(), path, cfg, policy.name(), fleet)? {
            Some(snap) => {
                resumed_from_day = Some(snap.next_day);
                ServeState::from_snapshot(snap)
            }
            None => ServeState::fresh(cfg, fleet),
        },
        None => ServeState::fresh(cfg, fleet),
    };

    // The object store, when attached: recover torn migrations, reconcile
    // with the restored state, place any missing objects.
    let mut store_rt = match &cfg.store {
        Some(sc) => Some(setup_store(sup, trace, sc, &state, resumed_from_day.is_some())?),
        None => None,
    };

    let end = cfg.max_days.map_or(trace.days, |m| m.min(trace.days));
    let clean = TraceSource::new(trace, DiurnalProfile::web_default(), cfg.seed, state.next_day);
    let mut source: Box<dyn EventSource + '_> = match sup.injector() {
        Some(inj) => Box::new(FaultySource::new(clean, inj)),
        None => Box::new(clean),
    };
    let mut lookahead: Option<DayBatch> = None;
    let mut pending_reads = vec![0u64; fleet];
    let mut pending_writes = vec![0u64; fleet];
    let mut checkpoints_written = 0u64;

    for day in state.next_day..end {
        sup.tick();
        // Ingest phase: acquire this day's canonical events (recovering
        // any delivery anomaly) and drain them into the online statistics
        // and the exact open-day counters billing runs on.
        let events = acquire_day(sup, source.as_mut(), &mut lookahead, day)?;
        pending_reads.iter_mut().for_each(|c| *c = 0);
        pending_writes.iter_mut().for_each(|c| *c = 0);
        for event in &events {
            if let Some(exact) = &mut state.exact {
                exact.ingest(event);
            }
            if let Some(bounded) = &mut state.bounded {
                bounded.ingest(event);
            }
            if let Some(slot) = pending_reads.get_mut(event.file.index()) {
                *slot = slot.saturating_add(event.reads);
            }
            if let Some(slot) = pending_writes.get_mut(event.file.index()) {
                *slot = slot.saturating_add(event.writes);
            }
        }

        // Decision phase, at the batch engine's cadence, on features
        // assembled purely from online statistics. The supervisor retries
        // injected policy-step failures and degrades past the budget.
        let mut decided = if day % cfg.decide_every == 0 {
            let synthetic = synthesize_fleet(trace, &state, &pending_reads, &pending_writes, day);
            let start = Instant::now();
            let decision = sup.decide(policy, day, &synthetic, model, &state.tiers)?;
            state.decision_millis.push(start.elapsed().as_secs_f64() * 1e3);
            Some(decision)
        } else {
            None
        };

        // Migration phase: physically apply the decision's tier changes
        // through the pipeline before billing, so exhausted jobs can pin
        // their file (and its bill) to the source tier, and an injected
        // crash aborts before the day is billed.
        if let (Some(rt), Some(decision)) = (store_rt.as_mut(), decided.as_mut()) {
            run_migrations(sup, rt, trace, day, decision, &state.tiers)?;
        }

        // Billing phase: identical ordering and arithmetic to
        // `engine::run_shard`, fed by the exact open-day counters.
        let mut breakdown = CostBreakdown::default();
        for ix in 0..fleet {
            let target = decided.as_ref().map_or(state.tiers[ix], |d| d[ix]);
            let changed_from = if target != state.tiers[ix] {
                state.tier_changes += 1;
                state.billed_change_bytes = state
                    .billed_change_bytes
                    .saturating_add(logical_bytes(trace.files[ix].size_gb));
                Some(state.tiers[ix])
            } else {
                None
            };
            let day_bill = model.day_breakdown(&FileDay {
                size_gb: trace.files[ix].size_gb,
                reads: pending_reads[ix],
                writes: pending_writes[ix],
                tier: target,
                changed_from,
            });
            state.per_file[ix] += day_bill.total();
            breakdown += day_bill;
            state.tiers[ix] = target;
        }
        state.ledger.accrue(breakdown);
        let mut counts = [0usize; TIER_COUNT];
        for &tier in &state.tiers {
            counts[tier.index()] += 1;
        }
        state.occupancy.push(counts);

        // Close the day everywhere; the next event belongs to `day + 1`.
        if let Some(exact) = &mut state.exact {
            exact.close_day();
        }
        if let Some(bounded) = &mut state.bounded {
            bounded.close_day();
        }
        state.next_day = day + 1;

        if decided.is_some() {
            state.epoch += 1;
            if cfg.checkpoint_every > 0 && state.epoch % cfg.checkpoint_every == 0 {
                if let Some(path) = &cfg.checkpoint_path {
                    let snap = state.to_snapshot(cfg, policy.name());
                    write_checkpoint(sup, backend.as_mut(), &snap, cfg.checkpoint_keep, path, day)?;
                    checkpoints_written += 1;
                }
            }
        }
    }

    // The headline invariant, checked before the final checkpoint so a
    // disagreeing ledger is never persisted as clean: every logical byte
    // billed as a tier change must have a durable commit record, and vice
    // versa (DESIGN.md §15).
    let store_report = match &store_rt {
        Some(rt) => {
            let committed = rt.journal.committed_bytes();
            if committed != state.billed_change_bytes {
                return Err(ServeError::Pool(format!(
                    "store/ledger invariant violated: billed {} tier-change byte(s) but the \
                     journal committed {committed}",
                    state.billed_change_bytes
                )));
            }
            Some(StoreReport {
                objects: rt.pool.len(),
                jobs_committed: rt.jobs_committed,
                jobs_skipped: rt.jobs_skipped,
                jobs_pinned: rt.jobs_pinned,
                jobs_rolled_back: rt.jobs_rolled_back,
                jobs_replayed: rt.jobs_replayed,
                committed_bytes: committed,
                billed_change_bytes: state.billed_change_bytes,
                migration_ms: rt.migration_ms,
                io: rt.pool.io_all(),
            })
        }
        None => None,
    };

    // A final snapshot at shutdown so `max_days`-interrupted runs resume
    // from exactly where they stopped, not the last periodic checkpoint.
    if let Some(path) = &cfg.checkpoint_path {
        if cfg.checkpoint_every > 0 {
            let snap = state.to_snapshot(cfg, policy.name());
            write_checkpoint(
                sup,
                backend.as_mut(),
                &snap,
                cfg.checkpoint_keep,
                path,
                state.next_day,
            )?;
            checkpoints_written += 1;
        }
    }

    let decision_millis = state.decision_millis.clone();
    Ok(ServeReport {
        result: SimResult {
            policy_name: policy.name().to_owned(),
            daily: state.ledger.daily().to_vec(),
            per_file: state.per_file,
            decision_millis: decision_millis.clone(),
            shard_decision_millis: vec![decision_millis],
            tier_changes: state.tier_changes,
            occupancy: state.occupancy,
        },
        epochs: state.epoch,
        resumed_from_day,
        checkpoints_written,
        days_served_through: state.next_day,
        incidents: sup.take_incidents(),
        degraded_epochs: sup.degraded_epochs(),
        store: store_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GreedyPolicy, HotPolicy};
    use crate::sim::{simulate, SimConfig};
    use pricing::PricingPolicy;
    use tracegen::TraceConfig;

    fn setup() -> (Trace, CostModel) {
        (
            Trace::generate(&TraceConfig::small(24, 12, 17)),
            CostModel::new(PricingPolicy::azure_blob_2020()),
        )
    }

    fn batch_cfg() -> SimConfig {
        SimConfig { workers: 1, ..SimConfig::default() }
    }

    #[test]
    fn exact_serve_matches_batch_greedy_bit_for_bit() {
        let (trace, model) = setup();
        let batch = simulate(&trace, &model, &mut GreedyPolicy, &batch_cfg());
        let report = serve(&trace, &model, &mut GreedyPolicy, &ServeConfig::default()).unwrap();
        assert_eq!(report.result.daily, batch.daily);
        assert_eq!(report.result.per_file, batch.per_file);
        assert_eq!(report.result.tier_changes, batch.tier_changes);
        assert_eq!(report.result.occupancy, batch.occupancy);
        assert_eq!(report.epochs, trace.days as u64);
        assert_eq!(report.days_served_through, trace.days);
    }

    #[test]
    fn exact_serve_matches_batch_at_weekly_cadence() {
        let (trace, model) = setup();
        let batch = simulate(
            &trace,
            &model,
            &mut GreedyPolicy,
            &SimConfig { decide_every: 7, ..batch_cfg() },
        );
        let cfg = ServeConfig { decide_every: 7, ..ServeConfig::default() };
        let report = serve(&trace, &model, &mut GreedyPolicy, &cfg).unwrap();
        assert_eq!(report.result.daily, batch.daily);
        assert_eq!(report.result.per_file, batch.per_file);
        assert_eq!(report.result.occupancy, batch.occupancy);
        assert_eq!(report.epochs, 2, "12 days at weekly cadence decide on days 0 and 7");
    }

    #[test]
    fn bounded_serve_bills_exactly_even_with_sketched_features() {
        let (trace, model) = setup();
        let cfg = ServeConfig { max_tracked: Some(4), ..ServeConfig::default() };
        let report = serve(&trace, &model, &mut GreedyPolicy, &cfg).unwrap();
        // Hot baseline ignores features entirely, so bounded mode must be
        // bit-identical there; greedy may legitimately diverge in decisions
        // but its ledgers must still be self-consistent.
        let per_file_total: Money = report.result.per_file.iter().sum();
        assert_eq!(per_file_total, report.result.total_cost());
        let hot_cfg = ServeConfig { max_tracked: Some(4), ..ServeConfig::default() };
        let hot = serve(&trace, &model, &mut HotPolicy, &hot_cfg).unwrap();
        let batch_hot = simulate(&trace, &model, &mut HotPolicy, &batch_cfg());
        assert_eq!(hot.result.daily, batch_hot.daily);
        assert_eq!(hot.result.per_file, batch_hot.per_file);
    }

    #[test]
    fn zero_cadence_is_rejected() {
        let (trace, model) = setup();
        let cfg = ServeConfig { decide_every: 0, ..ServeConfig::default() };
        assert!(matches!(
            serve(&trace, &model, &mut GreedyPolicy, &cfg),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn push_series_conserves_prefix_sums_and_length() {
        // The columnar kernel must emit exactly `day + 1` entries whose
        // filler conserves the lifetime sums, for short, window-sized, and
        // filler-heavy days.
        let stats = SeriesStats {
            ring_reads: &[3, 4, 5],
            ring_writes: &[1, 0, 2],
            sum_reads: 40,
            sum_writes: 9,
            pending: (7, 1),
        };
        for day in [0usize, 2, 3, 9] {
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            push_series(&mut reads, &mut writes, day, &stats);
            assert_eq!(reads.len(), day + 1, "day {day}");
            assert_eq!(writes.len(), day + 1, "day {day}");
            // Once filler slots exist, filler + ring conserve the exact
            // lifetime prefix sums.
            if day > stats.ring_reads.len() {
                assert_eq!(reads[..day].iter().sum::<u64>(), stats.sum_reads, "day {day}");
                assert_eq!(writes[..day].iter().sum::<u64>(), stats.sum_writes, "day {day}");
            }
            assert_eq!(reads[day], stats.pending.0, "day {day}");
            assert_eq!(writes[day], stats.pending.1, "day {day}");
        }
    }

    #[test]
    fn filler_spread_conserves_totals() {
        for (total, m) in [(0u64, 0usize), (0, 3), (10, 3), (7, 7), (5, 9), (1_000_003, 11)] {
            let mut out = Vec::new();
            push_filler(&mut out, total, m);
            assert_eq!(out.len(), m);
            assert_eq!(out.iter().sum::<u64>(), total, "total={total} m={m}");
        }
    }
}
