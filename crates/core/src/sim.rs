//! The day-stepping billing simulator.
//!
//! Runs a [`Policy`] over a trace day by day, exactly as the paper's agent
//! server operates (§5.1: "Everyday, the trained agent runs one time for
//! all data files, generates the action for each data file in the next
//! day"): at each decision day the policy assigns every file a tier, tier
//! changes are charged once (Eq. 9), then the day's storage and operation
//! costs accrue (Eqs. 6–8). Ledgers are exact integer micro-dollars.
//!
//! With [`SimConfig::workers`] > 1 the fleet is partitioned into
//! deterministic shards and simulated on scoped threads by the
//! [`crate::engine`]; the merged [`SimResult`] is bit-identical to the
//! single-threaded run (see DESIGN.md §9 for the contract).

use crate::engine;
use crate::fleet::FleetState;
use crate::policy::Policy;
use pricing::{CostBreakdown, CostModel, Money, Tier, TIER_COUNT};
use serde::{Deserialize, Serialize};
use tracegen::Trace;

/// Default worker count: the `MINICOST_WORKERS` environment variable if it
/// parses as a positive integer, otherwise 1 (single-threaded). CI runs the
/// whole test suite under both `MINICOST_WORKERS=1` and `=4`; the sharding
/// determinism contract is what makes that legal.
#[must_use]
pub fn default_workers() -> usize {
    std::env::var("MINICOST_WORKERS")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .map_or(1, |w| w.max(1))
}

/// Simulation parameters. Construct via [`SimConfig::builder`]; the struct
/// stays plain-old-data so configs serialize and diff cleanly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Tier every file occupies before day 0 (a day-0 decision that differs
    /// is charged as a change).
    pub initial_tier: Tier,
    /// Run the policy every `decide_every` days; tiers persist in between.
    /// The paper's agent decides daily (1).
    pub decide_every: usize,
    /// Number of simulation shards/threads. 1 runs the caller's policy in
    /// place; >1 forks the policy per shard. Never alters `Money` ledgers.
    #[serde(default = "default_workers")]
    pub workers: usize,
    /// Seed for the stable shard-assignment hash (and only that — billing
    /// itself is deterministic). Required by the builder so runs are
    /// reproducible by construction.
    #[serde(default)]
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { initial_tier: Tier::Hot, decide_every: 1, workers: default_workers(), seed: 0 }
    }
}

impl SimConfig {
    /// Starts a validating builder seeded with the paper's defaults
    /// (initial tier Hot, daily decisions, [`default_workers`] threads).
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            initial_tier: Tier::Hot,
            decide_every: 1,
            workers: default_workers(),
            seed: None,
        }
    }
}

/// A validation failure from [`SimConfigBuilder::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimConfigError {
    /// `decide_every` was zero: the policy would never run.
    ZeroDecideEvery,
    /// No seed was provided; shard assignment would not be reproducible
    /// by construction.
    MissingSeed,
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimConfigError::ZeroDecideEvery => {
                write!(f, "decide_every must be a positive number of days")
            }
            SimConfigError::MissingSeed => {
                write!(f, "a shard seed is required (call .seed(..))")
            }
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Builder for [`SimConfig`]: clamps `workers` to ≥ 1, rejects a zero
/// decision cadence, and requires a seed.
#[derive(Clone, Copy, Debug)]
pub struct SimConfigBuilder {
    initial_tier: Tier,
    decide_every: usize,
    workers: usize,
    seed: Option<u64>,
}

impl SimConfigBuilder {
    /// Sets the tier every file occupies before day 0.
    #[must_use]
    pub fn initial_tier(mut self, tier: Tier) -> Self {
        self.initial_tier = tier;
        self
    }

    /// Sets the decision cadence in days (validated non-zero at build).
    #[must_use]
    pub fn decide_every(mut self, days: usize) -> Self {
        self.decide_every = days;
        self
    }

    /// Sets the shard/thread count; values below 1 are clamped to 1.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the required shard-assignment seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Validates and produces the config.
    ///
    /// # Errors
    ///
    /// [`SimConfigError::ZeroDecideEvery`] if the cadence is zero and
    /// [`SimConfigError::MissingSeed`] if [`Self::seed`] was never called.
    pub fn build(self) -> Result<SimConfig, SimConfigError> {
        if self.decide_every == 0 {
            return Err(SimConfigError::ZeroDecideEvery);
        }
        let Some(seed) = self.seed else {
            return Err(SimConfigError::MissingSeed);
        };
        Ok(SimConfig {
            initial_tier: self.initial_tier,
            decide_every: self.decide_every,
            workers: self.workers.max(1),
            seed,
        })
    }
}

/// The outcome of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy that produced the run.
    pub policy_name: String,
    /// Aggregate cost components per day.
    pub daily: Vec<CostBreakdown>,
    /// Cumulative cost per file over the whole run.
    pub per_file: Vec<Money>,
    /// Wall-clock milliseconds per decision day (the paper's Fig. 12
    /// "computing overhead"). Under sharded runs this is the per-day
    /// maximum across shards — the parallel critical path — and is the one
    /// ledger that legitimately varies with `workers`.
    pub decision_millis: Vec<f64>,
    /// Raw per-shard decision ledgers (`shard_decision_millis[shard][k]`),
    /// in fixed shard order. Single-threaded runs have exactly one entry.
    #[serde(default)]
    pub shard_decision_millis: Vec<Vec<f64>>,
    /// Total number of tier changes applied.
    pub tier_changes: u64,
    /// Files resident in each tier at the end of each day
    /// (`occupancy[day][tier]`), for tier-drift analysis.
    pub occupancy: Vec<[usize; TIER_COUNT]>,
}

impl SimResult {
    /// Total cost across all files and days.
    #[must_use]
    pub fn total_cost(&self) -> Money {
        self.daily.iter().map(CostBreakdown::total).sum()
    }

    /// Cumulative cost through day `d` inclusive (clamped to the horizon).
    #[must_use]
    pub fn cumulative_cost(&self, d: usize) -> Money {
        self.daily.iter().take(d.saturating_add(1)).map(CostBreakdown::total).sum()
    }

    /// Number of simulated days.
    #[must_use]
    pub fn days(&self) -> usize {
        self.daily.len()
    }

    /// Total wall-clock milliseconds spent deciding (critical path under
    /// sharding).
    #[must_use]
    pub fn total_decision_millis(&self) -> f64 {
        self.decision_millis.iter().sum()
    }
}

/// Runs `policy` over `trace` under `model`.
///
/// With `cfg.workers == 1` the caller's policy instance decides in place;
/// with more, each deterministic shard gets a [`Policy::fork`] on its own
/// scoped thread and the results are merged in fixed shard order, so every
/// `Money`/occupancy/tier-change ledger is bit-identical to the
/// single-threaded run (DESIGN.md §9).
///
/// Panics if the policy returns a tier vector of the wrong length or if
/// `cfg.decide_every == 0` (unreachable through the builder).
pub fn simulate(
    trace: &Trace,
    model: &CostModel,
    policy: &mut dyn Policy,
    cfg: &SimConfig,
) -> SimResult {
    assert!(cfg.decide_every > 0, "decide_every must be positive");
    let n = trace.files.len();
    let workers = cfg.workers.max(1).min(n.max(1));
    // Columnarize once per run; shard workers share the one read-only state.
    let fleet = FleetState::from_trace(trace);

    if workers == 1 {
        let all: Vec<usize> = (0..n).collect();
        let shard = engine::run_shard(&fleet, model, policy, cfg, &all);
        return engine::merge_shards(policy.name(), trace.days, n, std::slice::from_ref(&shard));
    }

    let shards = engine::partition(trace, cfg.seed, workers);
    let runs: Vec<engine::ShardRun> = std::thread::scope(|scope| {
        let fleet = &fleet;
        let handles: Vec<_> = shards
            .iter()
            .map(|indices| {
                let mut forked = policy.fork();
                scope.spawn(move || engine::run_shard(fleet, model, forked.as_mut(), cfg, indices))
            })
            .collect();
        // Join in spawn order == partition order: the merge below must
        // never observe thread-completion order.
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(run) => run,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    engine::merge_shards(policy.name(), trace.days, n, &runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ColdPolicy, GreedyPolicy, HotPolicy, OptimalPolicy};
    use pricing::PricingPolicy;
    use tracegen::TraceConfig;

    fn setup() -> (Trace, CostModel) {
        (
            Trace::generate(&TraceConfig::small(40, 21, 9)),
            CostModel::new(PricingPolicy::azure_blob_2020()),
        )
    }

    fn single() -> SimConfig {
        SimConfig { workers: 1, ..SimConfig::default() }
    }

    #[test]
    fn hot_policy_never_changes_tiers() {
        let (trace, model) = setup();
        let result = simulate(&trace, &model, &mut HotPolicy, &single());
        assert_eq!(result.tier_changes, 0);
        assert_eq!(result.days(), 21);
        assert_eq!(result.per_file.len(), 40);
        assert_eq!(result.policy_name, "hot");
        // No change cost component at all.
        assert!(result.daily.iter().all(|d| d.change == Money::ZERO));
    }

    #[test]
    fn cold_policy_changes_once_per_file() {
        let (trace, model) = setup();
        // Initial tier is Hot, so day 0 moves every file to Cool exactly once.
        let result = simulate(&trace, &model, &mut ColdPolicy, &single());
        assert_eq!(result.tier_changes, 40);
        assert!(result.daily[0].change > Money::ZERO);
        assert!(result.daily[1..].iter().all(|d| d.change == Money::ZERO));
    }

    #[test]
    fn per_file_ledger_sums_to_daily_ledger() {
        let (trace, model) = setup();
        let result = simulate(&trace, &model, &mut GreedyPolicy, &single());
        let per_file_total: Money = result.per_file.iter().sum();
        assert_eq!(per_file_total, result.total_cost());
    }

    #[test]
    fn simulator_reproduces_optimal_planned_cost() {
        // The simulator's ledger for OptimalPolicy must equal the DP's own
        // cost computation exactly — two independent accounting paths.
        let (trace, model) = setup();
        let mut opt = OptimalPolicy::plan(&trace, &model, Tier::Hot);
        let planned = opt.planned_cost;
        let result = simulate(&trace, &model, &mut opt, &single());
        assert_eq!(result.total_cost(), planned);
    }

    #[test]
    fn optimal_is_cheapest() {
        let (trace, model) = setup();
        let cfg = single();
        let hot = simulate(&trace, &model, &mut HotPolicy, &cfg).total_cost();
        let cold = simulate(&trace, &model, &mut ColdPolicy, &cfg).total_cost();
        let greedy = simulate(&trace, &model, &mut GreedyPolicy, &cfg).total_cost();
        let opt = simulate(
            &trace,
            &model,
            &mut OptimalPolicy::plan(&trace, &model, cfg.initial_tier),
            &cfg,
        )
        .total_cost();
        assert!(opt <= greedy, "optimal {opt} vs greedy {greedy}");
        assert!(opt <= hot && opt <= cold);
        // Greedy at least matches the better static baseline... not
        // guaranteed in general, but it never loses to *both* since it can
        // mimic either; assert against the max.
        assert!(greedy <= hot.max(cold), "greedy {greedy} hot {hot} cold {cold}");
    }

    #[test]
    fn occupancy_partitions_the_catalog() {
        let (trace, model) = setup();
        let result = simulate(&trace, &model, &mut GreedyPolicy, &single());
        assert_eq!(result.occupancy.len(), trace.days);
        for day in &result.occupancy {
            assert_eq!(day.iter().sum::<usize>(), trace.len());
        }
        // Hot policy: everything in hot every day.
        let hot = simulate(&trace, &model, &mut HotPolicy, &single());
        assert!(hot.occupancy.iter().all(|d| d[0] == trace.len()));
    }

    #[test]
    fn cumulative_cost_is_monotone() {
        let (trace, model) = setup();
        let result = simulate(&trace, &model, &mut GreedyPolicy, &single());
        let mut prev = Money::ZERO;
        for d in 0..result.days() {
            let c = result.cumulative_cost(d);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(result.cumulative_cost(10_000), result.total_cost());
    }

    #[test]
    fn decide_every_skips_decisions() {
        let (trace, model) = setup();
        let cfg = SimConfig { decide_every: 7, ..single() };
        let result = simulate(&trace, &model, &mut GreedyPolicy, &cfg);
        // 21 days, deciding on days 0, 7, 14.
        assert_eq!(result.decision_millis.len(), 3);
    }

    #[test]
    fn empty_trace_simulates_to_zero() {
        let (_, model) = setup();
        let trace = Trace { days: 0, files: vec![] };
        let result = simulate(&trace, &model, &mut HotPolicy, &SimConfig::default());
        assert_eq!(result.total_cost(), Money::ZERO);
        assert_eq!(result.days(), 0);
    }

    #[test]
    fn initial_tier_affects_day_zero_changes() {
        let (trace, model) = setup();
        let cfg = SimConfig { initial_tier: Tier::Cool, ..single() };
        let result = simulate(&trace, &model, &mut ColdPolicy, &cfg);
        // Already cool: no changes at all.
        assert_eq!(result.tier_changes, 0);
    }

    #[test]
    #[should_panic(expected = "decide_every")]
    fn zero_decide_every_panics() {
        let (trace, model) = setup();
        let cfg = SimConfig { decide_every: 0, ..single() };
        let _ = simulate(&trace, &model, &mut HotPolicy, &cfg);
    }

    #[test]
    fn sharded_greedy_is_bit_identical() {
        let (trace, model) = setup();
        let base = simulate(&trace, &model, &mut GreedyPolicy, &single());
        for workers in [2usize, 3, 5] {
            let cfg = SimConfig { workers, seed: 11, ..SimConfig::default() };
            let sharded = simulate(&trace, &model, &mut GreedyPolicy, &cfg);
            assert_eq!(sharded.daily, base.daily, "workers={workers}");
            assert_eq!(sharded.per_file, base.per_file);
            assert_eq!(sharded.tier_changes, base.tier_changes);
            assert_eq!(sharded.occupancy, base.occupancy);
            assert_eq!(sharded.shard_decision_millis.len(), workers);
        }
    }

    #[test]
    fn more_workers_than_files_degrades_gracefully() {
        let (_, model) = setup();
        let trace = Trace::generate(&TraceConfig::small(3, 7, 1));
        let cfg = SimConfig { workers: 64, seed: 5, ..SimConfig::default() };
        let sharded = simulate(&trace, &model, &mut GreedyPolicy, &cfg);
        let base = simulate(&trace, &model, &mut GreedyPolicy, &single());
        assert_eq!(sharded.daily, base.daily);
    }

    #[test]
    fn builder_validates_and_clamps() {
        let cfg = SimConfig::builder()
            .initial_tier(Tier::Cool)
            .decide_every(3)
            .workers(0)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(cfg.initial_tier, Tier::Cool);
        assert_eq!(cfg.decide_every, 3);
        assert_eq!(cfg.workers, 1, "workers clamps to >= 1");
        assert_eq!(cfg.seed, 99);

        assert_eq!(
            SimConfig::builder().decide_every(0).seed(1).build(),
            Err(SimConfigError::ZeroDecideEvery)
        );
        assert_eq!(SimConfig::builder().build(), Err(SimConfigError::MissingSeed));
        assert!(!SimConfigError::MissingSeed.to_string().is_empty());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
        assert!(SimConfig::default().workers >= 1);
    }
}
