//! The day-stepping billing simulator.
//!
//! Runs a [`Policy`] over a trace day by day, exactly as the paper's agent
//! server operates (§5.1: "Everyday, the trained agent runs one time for
//! all data files, generates the action for each data file in the next
//! day"): at each decision day the policy assigns every file a tier, tier
//! changes are charged once (Eq. 9), then the day's storage and operation
//! costs accrue (Eqs. 6–8). Ledgers are exact integer micro-dollars.

use crate::policy::{DecisionContext, Policy};
use pricing::{CostBreakdown, CostModel, FileDay, Money, Tier, TIER_COUNT};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use tracegen::Trace;

/// Simulation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Tier every file occupies before day 0 (a day-0 decision that differs
    /// is charged as a change).
    pub initial_tier: Tier,
    /// Run the policy every `decide_every` days; tiers persist in between.
    /// The paper's agent decides daily (1).
    pub decide_every: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { initial_tier: Tier::Hot, decide_every: 1 }
    }
}

/// The outcome of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy that produced the run.
    pub policy_name: String,
    /// Aggregate cost components per day.
    pub daily: Vec<CostBreakdown>,
    /// Cumulative cost per file over the whole run.
    pub per_file: Vec<Money>,
    /// Wall-clock milliseconds spent in `Policy::decide`, one entry per
    /// decision day (the paper's Fig. 12 "computing overhead").
    pub decision_millis: Vec<f64>,
    /// Total number of tier changes applied.
    pub tier_changes: u64,
    /// Files resident in each tier at the end of each day
    /// (`occupancy[day][tier]`), for tier-drift analysis.
    pub occupancy: Vec<[usize; TIER_COUNT]>,
}

impl SimResult {
    /// Total cost across all files and days.
    #[must_use]
    pub fn total_cost(&self) -> Money {
        self.daily.iter().map(CostBreakdown::total).sum()
    }

    /// Cumulative cost through day `d` inclusive (clamped to the horizon).
    #[must_use]
    pub fn cumulative_cost(&self, d: usize) -> Money {
        self.daily.iter().take(d.saturating_add(1)).map(CostBreakdown::total).sum()
    }

    /// Number of simulated days.
    #[must_use]
    pub fn days(&self) -> usize {
        self.daily.len()
    }

    /// Total wall-clock milliseconds spent deciding.
    #[must_use]
    pub fn total_decision_millis(&self) -> f64 {
        self.decision_millis.iter().sum()
    }
}

/// Runs `policy` over `trace` under `model`.
///
/// Panics if the policy returns a tier vector of the wrong length or if
/// `decide_every == 0`.
pub fn simulate(
    trace: &Trace,
    model: &CostModel,
    policy: &mut dyn Policy,
    cfg: &SimConfig,
) -> SimResult {
    assert!(cfg.decide_every > 0, "decide_every must be positive");
    let n = trace.files.len();
    let mut current = vec![cfg.initial_tier; n];
    let mut daily = Vec::with_capacity(trace.days);
    let mut per_file = vec![Money::ZERO; n];
    let mut decision_millis = Vec::new();
    let mut tier_changes = 0u64;
    let mut occupancy = Vec::with_capacity(trace.days);

    for day in 0..trace.days {
        // Decision phase.
        let decided = if day % cfg.decide_every == 0 {
            let ctx = DecisionContext { day, trace, model, current: &current };
            let start = Instant::now();
            let decision = policy.decide(&ctx);
            decision_millis.push(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(decision.len(), n, "policy must decide every file");
            Some(decision)
        } else {
            None
        };

        // Billing phase.
        let mut breakdown = CostBreakdown::default();
        for (ix, file) in trace.files.iter().enumerate() {
            let target = decided.as_ref().map_or(current[ix], |d| d[ix]);
            let changed_from = if target != current[ix] {
                tier_changes += 1;
                Some(current[ix])
            } else {
                None
            };
            let (reads, writes) = file.day(day);
            let day_bill = model.day_breakdown(&FileDay {
                size_gb: file.size_gb,
                reads,
                writes,
                tier: target,
                changed_from,
            });
            per_file[ix] += day_bill.total();
            breakdown += day_bill;
            current[ix] = target;
        }
        daily.push(breakdown);
        let mut counts = [0usize; TIER_COUNT];
        for &tier in &current {
            counts[tier.index()] += 1;
        }
        occupancy.push(counts);
    }

    SimResult {
        policy_name: policy.name().to_owned(),
        daily,
        per_file,
        decision_millis,
        tier_changes,
        occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ColdPolicy, GreedyPolicy, HotPolicy, OptimalPolicy};
    use pricing::PricingPolicy;
    use tracegen::TraceConfig;

    fn setup() -> (Trace, CostModel) {
        (
            Trace::generate(&TraceConfig::small(40, 21, 9)),
            CostModel::new(PricingPolicy::azure_blob_2020()),
        )
    }

    #[test]
    fn hot_policy_never_changes_tiers() {
        let (trace, model) = setup();
        let result = simulate(&trace, &model, &mut HotPolicy, &SimConfig::default());
        assert_eq!(result.tier_changes, 0);
        assert_eq!(result.days(), 21);
        assert_eq!(result.per_file.len(), 40);
        assert_eq!(result.policy_name, "hot");
        // No change cost component at all.
        assert!(result.daily.iter().all(|d| d.change == Money::ZERO));
    }

    #[test]
    fn cold_policy_changes_once_per_file() {
        let (trace, model) = setup();
        // Initial tier is Hot, so day 0 moves every file to Cool exactly once.
        let result = simulate(&trace, &model, &mut ColdPolicy, &SimConfig::default());
        assert_eq!(result.tier_changes, 40);
        assert!(result.daily[0].change > Money::ZERO);
        assert!(result.daily[1..].iter().all(|d| d.change == Money::ZERO));
    }

    #[test]
    fn per_file_ledger_sums_to_daily_ledger() {
        let (trace, model) = setup();
        let result = simulate(&trace, &model, &mut GreedyPolicy, &SimConfig::default());
        let per_file_total: Money = result.per_file.iter().sum();
        assert_eq!(per_file_total, result.total_cost());
    }

    #[test]
    fn simulator_reproduces_optimal_planned_cost() {
        // The simulator's ledger for OptimalPolicy must equal the DP's own
        // cost computation exactly — two independent accounting paths.
        let (trace, model) = setup();
        let mut opt = OptimalPolicy::plan(&trace, &model, Tier::Hot);
        let planned = opt.planned_cost;
        let result = simulate(&trace, &model, &mut opt, &SimConfig::default());
        assert_eq!(result.total_cost(), planned);
    }

    #[test]
    fn optimal_is_cheapest() {
        let (trace, model) = setup();
        let cfg = SimConfig::default();
        let hot = simulate(&trace, &model, &mut HotPolicy, &cfg).total_cost();
        let cold = simulate(&trace, &model, &mut ColdPolicy, &cfg).total_cost();
        let greedy = simulate(&trace, &model, &mut GreedyPolicy, &cfg).total_cost();
        let opt = simulate(
            &trace,
            &model,
            &mut OptimalPolicy::plan(&trace, &model, cfg.initial_tier),
            &cfg,
        )
        .total_cost();
        assert!(opt <= greedy, "optimal {opt} vs greedy {greedy}");
        assert!(opt <= hot && opt <= cold);
        // Greedy at least matches the better static baseline... not
        // guaranteed in general, but it never loses to *both* since it can
        // mimic either; assert against the max.
        assert!(greedy <= hot.max(cold), "greedy {greedy} hot {hot} cold {cold}");
    }

    #[test]
    fn occupancy_partitions_the_catalog() {
        let (trace, model) = setup();
        let result = simulate(&trace, &model, &mut GreedyPolicy, &SimConfig::default());
        assert_eq!(result.occupancy.len(), trace.days);
        for day in &result.occupancy {
            assert_eq!(day.iter().sum::<usize>(), trace.len());
        }
        // Hot policy: everything in hot every day.
        let hot = simulate(&trace, &model, &mut HotPolicy, &SimConfig::default());
        assert!(hot.occupancy.iter().all(|d| d[0] == trace.len()));
    }

    #[test]
    fn cumulative_cost_is_monotone() {
        let (trace, model) = setup();
        let result = simulate(&trace, &model, &mut GreedyPolicy, &SimConfig::default());
        let mut prev = Money::ZERO;
        for d in 0..result.days() {
            let c = result.cumulative_cost(d);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(result.cumulative_cost(10_000), result.total_cost());
    }

    #[test]
    fn decide_every_skips_decisions() {
        let (trace, model) = setup();
        let cfg = SimConfig { decide_every: 7, ..SimConfig::default() };
        let result = simulate(&trace, &model, &mut GreedyPolicy, &cfg);
        // 21 days, deciding on days 0, 7, 14.
        assert_eq!(result.decision_millis.len(), 3);
    }

    #[test]
    fn empty_trace_simulates_to_zero() {
        let (_, model) = setup();
        let trace = Trace { days: 0, files: vec![] };
        let result = simulate(&trace, &model, &mut HotPolicy, &SimConfig::default());
        assert_eq!(result.total_cost(), Money::ZERO);
        assert_eq!(result.days(), 0);
    }

    #[test]
    fn initial_tier_affects_day_zero_changes() {
        let (trace, model) = setup();
        let cfg = SimConfig { initial_tier: Tier::Cool, ..SimConfig::default() };
        let result = simulate(&trace, &model, &mut ColdPolicy, &cfg);
        // Already cool: no changes at all.
        assert_eq!(result.tier_changes, 0);
    }

    #[test]
    #[should_panic(expected = "decide_every")]
    fn zero_decide_every_panics() {
        let (trace, model) = setup();
        let cfg = SimConfig { decide_every: 0, ..SimConfig::default() };
        let _ = simulate(&trace, &model, &mut HotPolicy, &cfg);
    }
}
