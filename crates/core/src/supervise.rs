//! Supervision for the serving loop: bounded retries, deterministic
//! backoff, degraded mode, and incident accounting.
//!
//! The [`Supervisor`] is the self-healing shell around
//! [`crate::serve::serve`]. It owns the chaos injector (when a
//! [`FaultPlan`] is armed), the retry/backoff budget for transient
//! checkpoint faults, the fallback policy that keeps decisions flowing
//! when the primary policy's step fails past the retry budget, and the
//! [`IncidentLog`] every recovery action is recorded in.
//!
//! Time here is **virtual**: the backoff clock is a plain `u64`
//! millisecond counter advanced by the deterministic backoff schedule
//! (`base · 2^attempt`, capped), never by the wall clock. Two runs of the
//! same plan therefore produce bit-identical incident logs — the property
//! `tests/chaos_serve.rs` pins (DESIGN.md §11).
//!
//! Recoverability is an arithmetic fact, not a hope: a [`FaultPlan`] with
//! `max_faults` below [`SuperviseConfig::max_retries`] can never exhaust a
//! retry loop, because every retry consults the injector again and each
//! injected failure spends budget. The default allowance (8) exceeds the
//! standard chaos plan's budget (6) for exactly this reason.

use crate::fleet::FleetState;
use crate::policy::{ColdPolicy, GreedyPolicy, HotPolicy, Policy};
use crate::serve::{ServeConfig, ServeError, ServeReport};
use pricing::{CostModel, Tier};
use std::fmt;
use stream::{FaultPlan, FaultSite, SharedInjector, SnapshotError};
use tracegen::Trace;

/// The fallback policy the supervisor pins decisions to when the primary
/// policy's step fails past the retry budget (degraded mode). Restricted
/// to the trivially-available baselines so degraded mode never depends on
/// trained state that may itself be unavailable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradedPolicy {
    /// Pin every file to the hot tier (the paper's availability-first
    /// baseline — never increases read latency).
    Hot,
    /// Pin every file to the cold tier.
    Cold,
    /// Decide with the greedy day-cost heuristic.
    Greedy,
}

impl DegradedPolicy {
    /// Parses a CLI spelling (`hot` / `cold` / `greedy`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid spellings otherwise.
    pub fn parse(s: &str) -> Result<DegradedPolicy, String> {
        match s {
            "hot" => Ok(DegradedPolicy::Hot),
            "cold" => Ok(DegradedPolicy::Cold),
            "greedy" => Ok(DegradedPolicy::Greedy),
            other => Err(format!("unknown degraded policy {other:?} (expected hot|cold|greedy)")),
        }
    }

    /// The canonical spelling (also the constructed policy's name).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DegradedPolicy::Hot => "hot",
            DegradedPolicy::Cold => "cold",
            DegradedPolicy::Greedy => "greedy",
        }
    }

    /// Instantiates the fallback policy.
    fn build(self) -> Box<dyn Policy> {
        match self {
            DegradedPolicy::Hot => Box::new(HotPolicy),
            DegradedPolicy::Cold => Box::new(ColdPolicy),
            DegradedPolicy::Greedy => Box::new(GreedyPolicy),
        }
    }
}

/// Configuration of the supervision shell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// The chaos schedule to replay; `None` (the default) serves cleanly.
    pub fault_plan: Option<FaultPlan>,
    /// Retries allowed per failing operation before it is declared
    /// exhausted. Keep this above the armed plan's `max_faults` to make
    /// the plan provably recoverable.
    pub max_retries: u32,
    /// First backoff delay, in virtual milliseconds.
    pub backoff_base_ms: u64,
    /// Ceiling on one backoff delay, in virtual milliseconds.
    pub backoff_cap_ms: u64,
    /// Fallback policy for degraded mode; `None` means a policy step that
    /// fails past the retry budget aborts the run instead.
    pub degraded: Option<DegradedPolicy>,
}

impl Default for SuperviseConfig {
    fn default() -> SuperviseConfig {
        SuperviseConfig {
            fault_plan: None,
            max_retries: 8,
            backoff_base_ms: 10,
            backoff_cap_ms: 5_000,
            degraded: None,
        }
    }
}

/// What kind of recovery action an [`Incident`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum IncidentKind {
    /// A checkpoint write failed transiently and was retried.
    SaveRetried,
    /// A checkpoint read failed transiently and was retried.
    LoadRetried,
    /// A restore candidate failed checksum/parse validation.
    CheckpointCorrupt,
    /// A restore candidate disagreed with this run's configuration.
    CheckpointMismatch,
    /// Restore fell back to an older rotation slot.
    RolledBack,
    /// A stale day was redelivered and skipped.
    DuplicateDay,
    /// A day was missing from delivery and read-repaired.
    DroppedDay,
    /// A day arrived out of order and was re-sorted locally.
    OutOfOrder,
    /// A day failed its digest and was read-repaired.
    CorruptBatch,
    /// A policy decision step failed and was retried.
    PolicyRetried,
    /// A decision epoch was pinned to the degraded fallback policy.
    Degraded,
    /// A migration attempt failed and was retried after backoff.
    MigrationRetried,
    /// A migration exhausted its retry budget; the file is pinned to its
    /// source tier and billed there.
    MigrationPinned,
    /// Store recovery rolled a torn (uncommitted) migration back.
    MigrationRolledBack,
    /// Store recovery rolled a committed-but-uncleaned migration forward.
    MigrationReplayed,
    /// The injected crash fired between a migration's copy and commit.
    MigrationCrashed,
}

/// Every incident kind, in the fixed order summaries report them in.
pub const INCIDENT_KINDS: [IncidentKind; 16] = [
    IncidentKind::SaveRetried,
    IncidentKind::LoadRetried,
    IncidentKind::CheckpointCorrupt,
    IncidentKind::CheckpointMismatch,
    IncidentKind::RolledBack,
    IncidentKind::DuplicateDay,
    IncidentKind::DroppedDay,
    IncidentKind::OutOfOrder,
    IncidentKind::CorruptBatch,
    IncidentKind::PolicyRetried,
    IncidentKind::Degraded,
    IncidentKind::MigrationRetried,
    IncidentKind::MigrationPinned,
    IncidentKind::MigrationRolledBack,
    IncidentKind::MigrationReplayed,
    IncidentKind::MigrationCrashed,
];

impl IncidentKind {
    /// Stable kebab-case label (used in summaries and CI greps).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IncidentKind::SaveRetried => "save-retried",
            IncidentKind::LoadRetried => "load-retried",
            IncidentKind::CheckpointCorrupt => "checkpoint-corrupt",
            IncidentKind::CheckpointMismatch => "checkpoint-mismatch",
            IncidentKind::RolledBack => "rolled-back",
            IncidentKind::DuplicateDay => "duplicate-day",
            IncidentKind::DroppedDay => "dropped-day",
            IncidentKind::OutOfOrder => "out-of-order",
            IncidentKind::CorruptBatch => "corrupt-batch",
            IncidentKind::PolicyRetried => "policy-retried",
            IncidentKind::Degraded => "degraded",
            IncidentKind::MigrationRetried => "migration-retried",
            IncidentKind::MigrationPinned => "migration-pinned",
            IncidentKind::MigrationRolledBack => "migration-rolled-back",
            IncidentKind::MigrationReplayed => "migration-replayed",
            IncidentKind::MigrationCrashed => "migration-crashed",
        }
    }
}

/// One recovery action, stamped with the virtual clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Incident {
    /// Virtual milliseconds since the run started.
    pub at_ms: u64,
    /// The serving day the incident concerns (0 for restore-time
    /// incidents, which precede day replay).
    pub day: usize,
    /// What happened.
    pub kind: IncidentKind,
    /// Free-form detail (site, slot, attempt number).
    pub detail: String,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t={}ms day {}] {}: {}", self.at_ms, self.day, self.kind.name(), self.detail)
    }
}

/// The ordered record of every recovery action in one run. Deterministic
/// for a fixed [`FaultPlan`]: same plan, same log, bit for bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IncidentLog {
    incidents: Vec<Incident>,
}

impl IncidentLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> IncidentLog {
        IncidentLog::default()
    }

    /// Appends one incident.
    pub fn record(&mut self, incident: Incident) {
        self.incidents.push(incident);
    }

    /// Number of incidents recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// Whether the run was incident-free.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Iterates incidents in record order.
    pub fn iter(&self) -> std::slice::Iter<'_, Incident> {
        self.incidents.iter()
    }

    /// How many incidents of `kind` were recorded.
    #[must_use]
    pub fn count(&self, kind: IncidentKind) -> usize {
        self.incidents.iter().filter(|i| i.kind == kind).count()
    }

    /// A one-line roll-up like `dropped-day×2, policy-retried×8,
    /// degraded×1` (empty string for an incident-free run).
    #[must_use]
    pub fn summary(&self) -> String {
        let parts: Vec<String> = INCIDENT_KINDS
            .iter()
            .filter_map(|&kind| {
                let n = self.count(kind);
                (n > 0).then(|| format!("{}×{n}", kind.name()))
            })
            .collect();
        parts.join(", ")
    }
}

impl fmt::Display for IncidentLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// The self-healing shell around the serve loop: owns the injector, the
/// retry/backoff budget, the degraded-mode fallback, and the incident log.
pub struct Supervisor {
    cfg: SuperviseConfig,
    injector: Option<SharedInjector>,
    fallback: Option<Box<dyn Policy>>,
    now_ms: u64,
    incidents: IncidentLog,
    degraded_epochs: u64,
}

impl Supervisor {
    /// Builds a supervisor, arming the chaos injector and the fallback
    /// policy `cfg` asks for.
    #[must_use]
    pub fn new(cfg: SuperviseConfig) -> Supervisor {
        let injector = cfg.fault_plan.as_ref().map(FaultPlan::injector);
        let fallback = cfg.degraded.map(DegradedPolicy::build);
        Supervisor {
            cfg,
            injector,
            fallback,
            now_ms: 0,
            incidents: IncidentLog::new(),
            degraded_epochs: 0,
        }
    }

    /// Serves `trace` through `policy` under supervision. Equivalent to
    /// [`crate::serve::serve`] when the config is quiet (no plan, no
    /// degraded fallback); with a plan armed, injected faults are recovered
    /// per DESIGN.md §11 and recorded in [`ServeReport::incidents`].
    ///
    /// # Errors
    ///
    /// Everything [`crate::serve::serve`] returns, plus
    /// [`ServeError::RetriesExhausted`] when a fault outlives the retry
    /// budget, [`ServeError::Unrecoverable`] when no rotation candidate
    /// restores, and [`ServeError::Stream`] when read-repair itself fails.
    pub fn run(
        &mut self,
        trace: &Trace,
        model: &CostModel,
        policy: &mut dyn Policy,
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        // Reset per-run state so one supervisor can drive several runs
        // (e.g. kill + restore in the soak test) with a fresh clock/log
        // each time, while the injector keeps its consultation counters —
        // a restarted process resumes the *same* fault schedule.
        self.now_ms = 0;
        self.incidents = IncidentLog::new();
        self.degraded_epochs = 0;
        crate::serve::run_supervised(self, trace, model, policy, cfg)
    }

    /// The shared injector, when a plan is armed.
    pub(crate) fn injector(&self) -> Option<SharedInjector> {
        self.injector.clone()
    }

    /// The backoff delay before retry number `attempt` (0-based):
    /// `base · 2^attempt`, saturating, capped at `backoff_cap_ms`.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.cfg.backoff_base_ms.saturating_mul(factor).min(self.cfg.backoff_cap_ms)
    }

    /// Advances the virtual clock by the backoff delay for `attempt`.
    fn sleep(&mut self, attempt: u32) {
        self.now_ms = self.now_ms.saturating_add(self.backoff_ms(attempt));
    }

    /// Advances the virtual clock by one tick (called once per served day
    /// so incident timestamps are monotone across days).
    pub(crate) fn tick(&mut self) {
        self.now_ms += 1;
    }

    /// Records one incident at the current virtual time.
    pub(crate) fn record(&mut self, day: usize, kind: IncidentKind, detail: String) {
        self.incidents.record(Incident { at_ms: self.now_ms, day, kind, detail });
    }

    /// Records one incident at an explicit offset past the current virtual
    /// time (migration batches report event times relative to their start).
    pub(crate) fn record_at(
        &mut self,
        offset_ms: u64,
        day: usize,
        kind: IncidentKind,
        detail: String,
    ) {
        self.incidents.record(Incident {
            at_ms: self.now_ms.saturating_add(offset_ms),
            day,
            kind,
            detail,
        });
    }

    /// Advances the virtual clock by a migration batch's elapsed time, so
    /// later incidents sort after the batch's own events.
    pub(crate) fn advance_ms(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }

    /// Runs a snapshot operation under the transient-retry policy: each
    /// transient failure ([`SnapshotError::is_transient`]) is recorded and
    /// retried after a deterministic backoff, up to `max_retries` times;
    /// non-transient failures surface immediately as
    /// [`ServeError::Snapshot`].
    pub(crate) fn retry_snapshot<T>(
        &mut self,
        day: usize,
        kind: IncidentKind,
        what: &str,
        mut op: impl FnMut() -> Result<T, SnapshotError>,
    ) -> Result<T, ServeError> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) if e.is_transient() && attempt < self.cfg.max_retries => {
                    let delay = self.backoff_ms(attempt);
                    self.record(day, kind, format!("{what}: {e}; retry {attempt} after {delay}ms"));
                    self.sleep(attempt);
                    attempt += 1;
                }
                Err(e) if e.is_transient() => {
                    return Err(ServeError::RetriesExhausted {
                        what: what.to_owned(),
                        attempts: attempt,
                        last: e.to_string(),
                    });
                }
                Err(e) => return Err(ServeError::Snapshot(e)),
            }
        }
    }

    /// One supervised policy decision: consults the injector's
    /// `PolicyStep` site before each attempt, retries with backoff on
    /// injected failures, and past the retry budget either pins the epoch
    /// to the degraded fallback policy or aborts.
    pub(crate) fn decide(
        &mut self,
        policy: &mut dyn Policy,
        day: usize,
        fleet: &FleetState,
        model: &CostModel,
        current: &[Tier],
    ) -> Result<Vec<Tier>, ServeError> {
        let mut attempt = 0u32;
        loop {
            let fired = match &self.injector {
                Some(inj) => inj.borrow_mut().fires(FaultSite::PolicyStep),
                None => false,
            };
            if !fired {
                return Ok(policy.decide_full(day, fleet, model, current));
            }
            if attempt < self.cfg.max_retries {
                let delay = self.backoff_ms(attempt);
                self.record(
                    day,
                    IncidentKind::PolicyRetried,
                    format!("injected policy failure; retry {attempt} after {delay}ms"),
                );
                self.sleep(attempt);
                attempt += 1;
                continue;
            }
            // Retry budget exhausted: degrade if a fallback is configured,
            // abort otherwise. Take/restore the box to keep the borrow
            // checker out of the incident recording.
            return match self.fallback.take() {
                Some(mut fb) => {
                    self.degraded_epochs += 1;
                    self.record(
                        day,
                        IncidentKind::Degraded,
                        format!("epoch pinned to fallback policy {:?}", fb.name()),
                    );
                    let decision = fb.decide_full(day, fleet, model, current);
                    self.fallback = Some(fb);
                    Ok(decision)
                }
                None => Err(ServeError::RetriesExhausted {
                    what: "policy step".to_owned(),
                    attempts: attempt,
                    last: "injected policy failure".to_owned(),
                }),
            };
        }
    }

    /// Hands the accumulated incident log to the report.
    pub(crate) fn take_incidents(&mut self) -> IncidentLog {
        std::mem::take(&mut self.incidents)
    }

    /// Decision epochs served by the degraded fallback this run.
    pub(crate) fn degraded_epochs(&self) -> u64 {
        self.degraded_epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let sup = Supervisor::new(SuperviseConfig::default());
        assert_eq!(sup.backoff_ms(0), 10);
        assert_eq!(sup.backoff_ms(1), 20);
        assert_eq!(sup.backoff_ms(2), 40);
        assert_eq!(sup.backoff_ms(8), 2_560);
        assert_eq!(sup.backoff_ms(9), 5_000, "delay must cap");
        assert_eq!(sup.backoff_ms(200), 5_000, "huge attempts must not overflow");
    }

    #[test]
    fn degraded_policy_parses_canonical_spellings_only() {
        assert_eq!(DegradedPolicy::parse("hot"), Ok(DegradedPolicy::Hot));
        assert_eq!(DegradedPolicy::parse("cold"), Ok(DegradedPolicy::Cold));
        assert_eq!(DegradedPolicy::parse("greedy"), Ok(DegradedPolicy::Greedy));
        assert!(DegradedPolicy::parse("optimal").is_err(), "non-baselines are not fallbacks");
        for p in [DegradedPolicy::Hot, DegradedPolicy::Cold, DegradedPolicy::Greedy] {
            assert_eq!(p.build().name(), p.name());
        }
    }

    #[test]
    fn incident_log_summary_is_ordered_and_counted() {
        let mut log = IncidentLog::new();
        assert!(log.is_empty());
        assert_eq!(log.summary(), "");
        for _ in 0..2 {
            log.record(Incident {
                at_ms: 1,
                day: 3,
                kind: IncidentKind::PolicyRetried,
                detail: "x".to_owned(),
            });
        }
        log.record(Incident {
            at_ms: 2,
            day: 3,
            kind: IncidentKind::DroppedDay,
            detail: "y".to_owned(),
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(IncidentKind::PolicyRetried), 2);
        // Summary follows INCIDENT_KINDS order, not record order.
        assert_eq!(log.summary(), "dropped-day×1, policy-retried×2");
        assert_eq!(log.to_string(), log.summary());
    }

    #[test]
    fn transient_retries_are_bounded_and_logged() {
        let mut sup =
            Supervisor::new(SuperviseConfig { max_retries: 3, ..SuperviseConfig::default() });
        let mut calls = 0u32;
        let out: Result<(), ServeError> =
            sup.retry_snapshot(5, IncidentKind::SaveRetried, "unit save", || {
                calls += 1;
                Err(SnapshotError::Io("flaky".to_owned()))
            });
        assert_eq!(calls, 4, "initial attempt plus max_retries");
        match out {
            Err(ServeError::RetriesExhausted { what, attempts, .. }) => {
                assert_eq!(what, "unit save");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(sup.incidents.count(IncidentKind::SaveRetried), 3);
        // Virtual clock advanced by 10 + 20 + 40, never by wall time.
        assert_eq!(sup.now_ms, 70);
    }

    #[test]
    fn non_transient_errors_skip_the_retry_loop() {
        let mut sup = Supervisor::new(SuperviseConfig::default());
        let mut calls = 0u32;
        let out: Result<(), ServeError> =
            sup.retry_snapshot(0, IncidentKind::LoadRetried, "unit load", || {
                calls += 1;
                Err(SnapshotError::Corrupt("doctored".to_owned()))
            });
        assert_eq!(calls, 1, "corruption never clears on retry");
        assert!(matches!(out, Err(ServeError::Snapshot(SnapshotError::Corrupt(_)))));
        assert!(sup.incidents.is_empty(), "no retry incident for a permanent failure");
    }

    #[test]
    fn eventual_success_returns_the_value() {
        let mut sup = Supervisor::new(SuperviseConfig::default());
        let mut failures_left = 2u32;
        let out = sup.retry_snapshot(1, IncidentKind::SaveRetried, "unit save", || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(SnapshotError::Sync("lying fsync".to_owned()))
            } else {
                Ok(42u32)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(sup.incidents.count(IncidentKind::SaveRetried), 2);
    }
}
