//! The end-to-end MiniCost training pipeline:
//! trace → tiering environment → A3C → deployable [`RlPolicy`].

use crate::engine::par_map_indices;
use crate::features::{FeatureConfig, EXTRA_FEATURES};
use crate::mdp::{OracleTables, RewardConfig, TieringEnv, TieringEnvConfig};
use crate::optimal::suffix_values;
use crate::policy::RlPolicy;
use crate::sim::default_workers;
use pricing::{CostModel, TIER_COUNT};
use rl::{A3cConfig, A3cTrainer, NetSpec, TrainResult};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tracegen::Trace;

/// Configuration of a full MiniCost training run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MiniCostConfig {
    /// State featurization (history window).
    pub features: FeatureConfig,
    /// Network width: filter count and hidden neurons (paper: 128 each;
    /// Fig. 11 sweeps {4, 16, 32, 64, 128}).
    pub width: usize,
    /// Conv kernel size (paper: 4).
    pub kernel: usize,
    /// Conv stride (paper: 1).
    pub stride: usize,
    /// Reward shaping (Eq. 4 parameters).
    pub reward: RewardConfig,
    /// Decisions per training episode (paper's weekly period: 7).
    pub episode_len: usize,
    /// A3C hyperparameters.
    pub a3c: A3cConfig,
}

impl Default for MiniCostConfig {
    fn default() -> Self {
        MiniCostConfig {
            features: FeatureConfig::default(),
            width: 128,
            kernel: 4,
            stride: 1,
            reward: RewardConfig::default(),
            episode_len: 7,
            a3c: A3cConfig::default(),
        }
    }
}

impl MiniCostConfig {
    /// A small, fast configuration for tests and CI-scale experiments:
    /// 16-wide networks, a short training budget, and the tuned recipe the
    /// experiment harness uses (shaped-regret reward, oracle-guided A3C;
    /// see DESIGN.md §4).
    #[must_use]
    pub fn fast() -> MiniCostConfig {
        MiniCostConfig {
            width: 16,
            reward: RewardConfig { cap: 50.0, ..RewardConfig::shaped() },
            a3c: A3cConfig {
                workers: 2,
                total_updates: 400,
                rollout_len: 32,
                batch_size: 32,
                learning_rate: 0.001,
                entropy_coeff: 0.01,
                gamma: 0.0,
                normalize_advantages: false,
                critic_baseline: false,
                imitation_coeff: 1.0,
                ..A3cConfig::default()
            },
            ..MiniCostConfig::default()
        }
    }

    /// The [`NetSpec`] this configuration induces.
    #[must_use]
    pub fn net_spec(&self) -> NetSpec {
        NetSpec {
            window: self.features.window,
            channels: FeatureConfig::CHANNELS,
            extras: EXTRA_FEATURES,
            filters: self.width,
            kernel: self.kernel,
            stride: self.stride,
            hidden: self.width,
            actions: TIER_COUNT,
        }
    }
}

/// A trained MiniCost agent.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MiniCost {
    /// The raw A3C training result (parameters + progress curves).
    pub result: TrainResult,
    /// The featurization the policy was trained with.
    pub features: FeatureConfig,
}

impl MiniCost {
    /// Trains an agent on `trace` (the 80% training split in the paper's
    /// setup) under `model`'s pricing.
    #[must_use]
    pub fn train(trace: &Trace, model: &CostModel, cfg: &MiniCostConfig) -> MiniCost {
        let spec = cfg.net_spec();
        let trace = Arc::new(trace.clone());
        let model = Arc::new(model.clone());
        let env_cfg_base = TieringEnvConfig {
            features: cfg.features,
            reward: cfg.reward,
            episode_len: cfg.episode_len,
            seed: cfg.a3c.seed,
            with_oracle: true,
        };
        // The suffix-value oracle is the expensive part of environment
        // construction (O(files × days) per build). Compute the tables once
        // — sharded across threads by the simulation engine's index mapper,
        // which returns them in file order regardless of worker count — and
        // share one Arc across every A3C worker's environment.
        let oracle: Arc<OracleTables> = Arc::new(par_map_indices(
            trace.files.len(),
            cfg.a3c.workers.max(default_workers()),
            |ix| Some(suffix_values(&trace.files[ix], &model)),
        ));
        let trainer = A3cTrainer::new(spec, cfg.a3c.clone());
        let result = trainer.train(|worker| {
            TieringEnv::with_oracle_tables(
                Arc::clone(&trace),
                Arc::clone(&model),
                TieringEnvConfig {
                    seed: env_cfg_base.seed ^ ((worker as u64 + 1) << 32),
                    ..env_cfg_base.clone()
                },
                Arc::clone(&oracle),
            )
        });
        MiniCost { result, features: cfg.features }
    }

    /// The deployable greedy policy built from the trained actor.
    #[must_use]
    pub fn policy(&self) -> RlPolicy {
        RlPolicy::new(&self.result, self.features)
    }

    /// Persists the trained agent as JSON.
    ///
    /// # Errors
    /// Propagates filesystem and serialization errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads an agent persisted by [`MiniCost::save`].
    ///
    /// # Errors
    /// Propagates filesystem and deserialization errors.
    pub fn load(path: &std::path::Path) -> std::io::Result<MiniCost> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }

    /// Final optimal-action rate observed during training, if recorded.
    #[must_use]
    pub fn final_optimal_rate(&self) -> Option<f64> {
        self.result.progress.iter().rev().find_map(|p| p.optimal_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{HotPolicy, OptimalPolicy, Policy};
    use crate::sim::{simulate, SimConfig};
    use pricing::{PricingPolicy, Tier};
    use tracegen::TraceConfig;

    fn setup() -> (Trace, CostModel) {
        (
            Trace::generate(&TraceConfig::small(60, 28, 17)),
            CostModel::new(PricingPolicy::azure_blob_2020()),
        )
    }

    #[test]
    fn fast_config_is_valid() {
        let cfg = MiniCostConfig::fast();
        assert!(cfg.a3c.validate().is_ok());
        let spec = cfg.net_spec();
        assert_eq!(spec.state_dim(), cfg.features.state_dim());
        assert_eq!(spec.actions, 3);
    }

    #[test]
    fn training_produces_a_working_policy() {
        let (trace, model) = setup();
        let cfg = MiniCostConfig::fast();
        let agent = MiniCost::train(&trace, &model, &cfg);
        assert!(agent.result.updates >= cfg.a3c.total_updates);
        assert!(agent.final_optimal_rate().is_some());

        // The trained policy must run end-to-end through the simulator.
        let mut policy = agent.policy();
        let sim_cfg = SimConfig::default();
        let result = simulate(&trace, &model, &mut policy, &sim_cfg);
        assert_eq!(result.days(), trace.days);
        assert_eq!(result.policy_name, "minicost");

        // Sanity (not a tight bound at this tiny training budget): the
        // learned policy should not be wildly worse than always-hot, and
        // can never beat Optimal.
        let hot = simulate(&trace, &model, &mut HotPolicy, &sim_cfg).total_cost();
        let opt =
            simulate(&trace, &model, &mut OptimalPolicy::plan(&trace, &model, Tier::Hot), &sim_cfg)
                .total_cost();
        assert!(result.total_cost() >= opt);
        assert!(
            result.total_cost().as_dollars() <= 3.0 * hot.as_dollars(),
            "rl {} vs hot {hot}",
            result.total_cost()
        );
    }

    #[test]
    fn training_is_deterministic_with_one_worker() {
        let (trace, model) = setup();
        let mut cfg = MiniCostConfig::fast();
        cfg.a3c.workers = 1;
        cfg.a3c.total_updates = 50;
        let a = MiniCost::train(&trace, &model, &cfg);
        let b = MiniCost::train(&trace, &model, &cfg);
        assert_eq!(a.result.actor_params, b.result.actor_params);
    }

    #[test]
    fn save_load_round_trip() {
        let (trace, model) = setup();
        let mut cfg = MiniCostConfig::fast();
        cfg.a3c.workers = 1;
        cfg.a3c.total_updates = 20;
        let agent = MiniCost::train(&trace, &model, &cfg);
        let path = std::env::temp_dir().join(format!("minicost-agent-{}.json", std::process::id()));
        agent.save(&path).unwrap();
        let back = MiniCost::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(agent.result.actor_params, back.result.actor_params);
        assert!(MiniCost::load(std::path::Path::new("/nonexistent/agent.json")).is_err());
    }

    #[test]
    fn serde_round_trip_of_trained_agent() {
        let (trace, model) = setup();
        let mut cfg = MiniCostConfig::fast();
        cfg.a3c.workers = 1;
        cfg.a3c.total_updates = 20;
        let agent = MiniCost::train(&trace, &model, &cfg);
        let json = serde_json::to_string(&agent).unwrap();
        let back: MiniCost = serde_json::from_str(&json).unwrap();
        assert_eq!(agent.result.actor_params, back.result.actor_params);
        // The round-tripped agent yields the same decisions.
        let mut p1 = agent.policy();
        let mut p2 = back.policy();
        let current = vec![Tier::Hot; trace.len()];
        assert_eq!(
            p1.decide_fleet(10, &trace, &model, &current),
            p2.decide_fleet(10, &trace, &model, &current)
        );
    }
}
