//! ARIMA(p, d, q) forecasting.
//!
//! The fitting pipeline follows the classical two-stage Hannan–Rissanen
//! procedure, which is accurate for the short daily series this system works
//! with (≈60 points per file) and needs no iterative likelihood
//! optimization:
//!
//! 1. Difference the series `d` times.
//! 2. Fit a long autoregression by conditional least squares and compute its
//!    residuals (innovation estimates).
//! 3. Regress the differenced series on `p` of its own lags and `q` lagged
//!    residuals to obtain the AR and MA coefficients jointly.
//! 4. Forecast recursively with future innovations set to zero, then invert
//!    the differencing.
//!
//! Degenerate inputs (constant or too-short series, singular designs) fall
//! back toward simpler models, ultimately the mean — a forecaster must never
//! panic mid-experiment on an idle file with an all-zero history.

use crate::linalg::least_squares;
use crate::series::{difference, difference_tails, mean, undifference};
use crate::Forecaster;
use serde::{Deserialize, Serialize};

/// An ARIMA(p, d, q) forecaster configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arima {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

impl Arima {
    /// Creates an ARIMA(p, d, q) configuration.
    #[must_use]
    pub const fn new(p: usize, d: usize, q: usize) -> Self {
        Arima { p, d, q }
    }

    /// The configuration the paper's trace analysis uses: enough AR memory
    /// for a weekly cycle, first differencing for trends, one MA term.
    #[must_use]
    pub const fn weekly_default() -> Self {
        Arima { p: 7, d: 1, q: 1 }
    }

    /// Selects `(p, q)` (with the given differencing order) by minimizing
    /// AIC over `p <= max_p`, `q <= max_q` on the in-sample one-step
    /// residuals. Falls back to [`Arima::weekly_default`] when no candidate
    /// fits (e.g. constant or too-short series).
    #[must_use]
    pub fn auto(history: &[f64], d: usize, max_p: usize, max_q: usize) -> Arima {
        let w = difference(history, d);
        let mut best: Option<(f64, Arima)> = None;
        for p in 0..=max_p {
            for q in 0..=max_q {
                if p == 0 && q == 0 {
                    continue;
                }
                let candidate = Arima { p, d, q };
                let Some(aic) = candidate.in_sample_aic(&w) else { continue };
                if best.as_ref().is_none_or(|(b, _)| aic < *b) {
                    best = Some((aic, candidate));
                }
            }
        }
        best.map_or_else(Arima::weekly_default, |(_, m)| m)
    }

    /// In-sample AIC: `n ln(RSS/n) + 2k` over the differenced series, with
    /// `k = p + q + 1` parameters. `None` when the model cannot be fitted.
    fn in_sample_aic(&self, w: &[f64]) -> Option<f64> {
        let start = self.p.max(self.q);
        if w.len() <= start + self.p + self.q + 2 {
            return None;
        }
        let fitted = self.fit(w)?;
        // One-step-ahead residuals under the fitted coefficients.
        let mut resid = vec![0.0; w.len()];
        let mut rss = 0.0;
        let mut n = 0usize;
        for t in start..w.len() {
            let mut pred = fitted.intercept;
            for (lag, &phi) in fitted.ar.iter().enumerate() {
                pred += phi * w[t - lag - 1];
            }
            for (lag, &theta) in fitted.ma.iter().enumerate() {
                pred += theta * resid[t - lag - 1];
            }
            resid[t] = w[t] - pred;
            rss += resid[t] * resid[t];
            n += 1;
        }
        if n == 0 || !rss.is_finite() {
            return None;
        }
        let k = (self.p + self.q + 1) as f64;
        Some(n as f64 * (rss / n as f64).max(1e-300).ln() + 2.0 * k)
    }

    /// Fits coefficients on the differenced series `w`.
    ///
    /// Returns `(intercept, ar_coeffs, ma_coeffs, residuals)`, or `None`
    /// when there is not enough data or the design is singular.
    fn fit(&self, w: &[f64]) -> Option<FittedArima> {
        let p = self.p;
        let q = self.q;
        if p == 0 && q == 0 {
            // Pure mean model on the differenced scale.
            return Some(FittedArima {
                intercept: mean(w),
                ar: vec![],
                ma: vec![],
                residual_tail: vec![],
                history_tail: vec![],
            });
        }

        // Stage 1: long AR to estimate innovations (only needed when q > 0).
        let residuals: Vec<f64> = if q > 0 {
            let long_p = ((w.len() / 4).max(p + q)).min(w.len().saturating_sub(2)).max(1);
            ar_residuals(w, long_p)?
        } else {
            vec![0.0; w.len()]
        };

        // Stage 2: joint regression of w[t] on 1, w[t-1..t-p], e[t-1..t-q].
        let start = p.max(q);
        if w.len() <= start + p + q {
            return None;
        }
        let rows = w.len() - start;
        let cols = 1 + p + q;
        let mut x = Vec::with_capacity(rows * cols);
        let mut y = Vec::with_capacity(rows);
        for t in start..w.len() {
            x.push(1.0);
            for lag in 1..=p {
                x.push(w[t - lag]);
            }
            for lag in 1..=q {
                x.push(residuals[t - lag]);
            }
            y.push(w[t]);
        }
        let beta = least_squares(&x, &y, rows, cols)?;
        let intercept = beta[0];
        let ar = beta[1..1 + p].to_vec();
        let ma = beta[1 + p..].to_vec();

        // Final residuals under the fitted model, for the forecast recursion.
        let mut final_resid = vec![0.0; w.len()];
        for t in start..w.len() {
            let mut pred = intercept;
            for (lag, &phi) in ar.iter().enumerate() {
                pred += phi * w[t - lag - 1];
            }
            for (lag, &theta) in ma.iter().enumerate() {
                pred += theta * final_resid[t - lag - 1];
            }
            final_resid[t] = w[t] - pred;
        }

        let hist_tail_len = p.min(w.len());
        let resid_tail_len = q.min(final_resid.len());
        Some(FittedArima {
            intercept,
            ar,
            ma,
            history_tail: w[w.len() - hist_tail_len..].to_vec(),
            residual_tail: final_resid[final_resid.len() - resid_tail_len..].to_vec(),
        })
    }
}

impl Forecaster for Arima {
    fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        if horizon == 0 {
            return Vec::new();
        }
        // Degenerate histories: extrapolate the mean (or zero).
        if history.len() < self.d + 2 {
            return vec![mean(history); horizon];
        }
        let Some(tails) = difference_tails(history, self.d) else {
            return vec![mean(history); horizon];
        };
        let w = difference(history, self.d);
        if w.is_empty() {
            return vec![mean(history); horizon];
        }

        let fitted = match self.fit(&w) {
            Some(f) => f,
            // Singular / too-short designs: drift model (mean of differences).
            None => FittedArima {
                intercept: mean(&w),
                ar: vec![],
                ma: vec![],
                history_tail: vec![],
                residual_tail: vec![],
            },
        };

        let diffed_forecast = fitted.forecast(horizon);
        let raw = undifference(&diffed_forecast, &tails);
        // Stabilize: request frequencies are non-negative, and a conditional
        // least-squares AR fit on a bursty series can be explosive — cap the
        // extrapolation at an order of magnitude above anything observed.
        let ceiling = 10.0 * history.iter().copied().fold(0.0f64, f64::max) + 10.0;
        raw.into_iter().map(|v| v.clamp(0.0, ceiling)).collect()
    }

    fn name(&self) -> &'static str {
        "arima"
    }
}

/// A fitted model: coefficients plus the state needed to roll forward.
struct FittedArima {
    intercept: f64,
    ar: Vec<f64>,
    ma: Vec<f64>,
    /// Last `p` values of the differenced series (most recent last).
    history_tail: Vec<f64>,
    /// Last `q` residuals (most recent last).
    residual_tail: Vec<f64>,
}

impl FittedArima {
    /// Recursive multi-step forecast on the differenced scale; future
    /// innovations are zero in expectation.
    fn forecast(&self, horizon: usize) -> Vec<f64> {
        let mut hist = self.history_tail.clone();
        let mut resid = self.residual_tail.clone();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut pred = self.intercept;
            for (lag, &phi) in self.ar.iter().enumerate() {
                if lag < hist.len() {
                    pred += phi * hist[hist.len() - 1 - lag];
                }
            }
            for (lag, &theta) in self.ma.iter().enumerate() {
                if lag < resid.len() {
                    pred += theta * resid[resid.len() - 1 - lag];
                }
            }
            out.push(pred);
            hist.push(pred);
            resid.push(0.0); // expected future innovation
        }
        out
    }
}

/// Fits an AR(`order`) by conditional least squares and returns its
/// residual series (zeros for the first `order` positions).
fn ar_residuals(w: &[f64], order: usize) -> Option<Vec<f64>> {
    if w.len() <= order + 1 {
        return None;
    }
    let rows = w.len() - order;
    let cols = order + 1;
    let mut x = Vec::with_capacity(rows * cols);
    let mut y = Vec::with_capacity(rows);
    for t in order..w.len() {
        x.push(1.0);
        for lag in 1..=order {
            x.push(w[t - lag]);
        }
        y.push(w[t]);
    }
    let beta = least_squares(&x, &y, rows, cols)?;
    let mut resid = vec![0.0; w.len()];
    for t in order..w.len() {
        let mut pred = beta[0];
        for lag in 1..=order {
            pred += beta[lag] * w[t - lag];
        }
        resid[t] = w[t] - pred;
    }
    Some(resid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ar1_series(phi: f64, n: usize, seed: u64, noise: f64) -> Vec<f64> {
        // AR(1) around a mean of 50.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        let mut x = 0.0f64;
        for _ in 0..n {
            let eps = noise * super::tests_support::normal_01(&mut rng);
            x = phi * x + eps;
            out.push(50.0 + x);
        }
        out
    }

    #[test]
    fn forecast_length_matches_horizon() {
        let history: Vec<f64> = (0..60).map(|t| (t as f64).sin().abs() * 10.0 + 5.0).collect();
        for h in [0usize, 1, 7, 30] {
            assert_eq!(Arima::new(2, 1, 1).forecast(&history, h).len(), h);
        }
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let history = vec![42.0; 60];
        let f = Arima::new(3, 1, 1).forecast(&history, 7);
        for v in f {
            assert!((v - 42.0).abs() < 1e-6, "forecast {v}");
        }
    }

    #[test]
    fn linear_trend_is_extrapolated_by_d1() {
        let history: Vec<f64> = (0..60).map(|t| 3.0 * t as f64 + 10.0).collect();
        let f = Arima::new(1, 1, 0).forecast(&history, 5);
        for (k, v) in f.iter().enumerate() {
            let expected = 3.0 * (60 + k) as f64 + 10.0;
            assert!((v - expected).abs() < 1.0, "step {k}: {v} vs {expected}");
        }
    }

    #[test]
    fn ar1_process_is_recovered() {
        let history = ar1_series(0.8, 300, 9, 1.0);
        let f = Arima::new(1, 0, 0).forecast(&history, 1);
        // One-step-ahead prediction should regress toward the mean:
        // x_hat = 50 + 0.8 * (last - 50), within noise tolerance.
        let last = history[history.len() - 1];
        let expected = 50.0 + 0.8 * (last - 50.0);
        assert!((f[0] - expected).abs() < 1.5, "got {} want {expected}", f[0]);
    }

    #[test]
    fn weekly_sinusoid_is_tracked_by_p7() {
        let history: Vec<f64> = (0..63)
            .map(|t| 100.0 + 30.0 * (std::f64::consts::TAU * t as f64 / 7.0).sin())
            .collect();
        let f = Arima::new(7, 0, 0).forecast(&history, 7);
        for (k, v) in f.iter().enumerate() {
            let expected = 100.0 + 30.0 * (std::f64::consts::TAU * (63 + k) as f64 / 7.0).sin();
            assert!((v - expected).abs() < 5.0, "step {k}: forecast {v} vs true {expected}");
        }
    }

    #[test]
    fn empty_history_yields_zeros() {
        let f = Arima::new(2, 1, 1).forecast(&[], 3);
        assert_eq!(f, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn single_point_history_extends_it() {
        let f = Arima::new(2, 1, 1).forecast(&[5.0], 2);
        assert_eq!(f, vec![5.0, 5.0]);
    }

    #[test]
    fn forecasts_are_nonnegative() {
        // Steeply decreasing series: raw extrapolation would go negative.
        let history: Vec<f64> = (0..30).map(|t| (100 - 4 * t).max(0) as f64).collect();
        let f = Arima::new(1, 1, 0).forecast(&history, 10);
        assert!(f.iter().all(|&v| v >= 0.0), "{f:?}");
    }

    #[test]
    fn mean_model_p0_d0_q0() {
        let history = vec![2.0, 4.0, 6.0, 8.0];
        let f = Arima::new(0, 0, 0).forecast(&history, 2);
        assert!((f[0] - 5.0).abs() < 1e-9);
        assert!((f[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ma_term_does_not_break_on_white_noise() {
        let mut rng = StdRng::seed_from_u64(4);
        let history: Vec<f64> =
            (0..100).map(|_| 20.0 + super::tests_support::normal_01(&mut rng)).collect();
        let f = Arima::new(1, 0, 1).forecast(&history, 7);
        // White noise around 20: forecasts should hover near 20.
        for v in f {
            assert!((v - 20.0).abs() < 3.0, "forecast {v}");
        }
    }

    #[test]
    fn explosive_fits_are_capped() {
        // A near-unit-root bursty series: unconstrained AR extrapolation can
        // blow up; the forecast must stay within 10x the observed maximum.
        let mut history = vec![1.0; 40];
        history[20] = 5_000.0;
        history[35] = 8_000.0;
        for (i, v) in history.iter_mut().enumerate() {
            *v += (i as f64) * 3.0;
        }
        let f = Arima::new(7, 1, 1).forecast(&history, 7);
        let max_hist = history.iter().copied().fold(0.0f64, f64::max);
        assert!(f.iter().all(|&v| v <= 10.0 * max_hist + 10.0), "{f:?}");
        assert!(f.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn auto_prefers_small_models_on_white_noise() {
        let mut rng = StdRng::seed_from_u64(10);
        let history: Vec<f64> =
            (0..120).map(|_| 50.0 + super::tests_support::normal_01(&mut rng)).collect();
        let m = Arima::auto(&history, 0, 4, 2);
        // White noise: no large AR order should win.
        assert!(m.p <= 2, "selected {m:?}");
    }

    #[test]
    fn auto_finds_ar_structure() {
        let history = ar1_series(0.85, 300, 11, 1.0);
        let m = Arima::auto(&history, 0, 3, 1);
        assert!(m.p >= 1, "selected {m:?}");
        // And the selected model forecasts sanely.
        let f = m.forecast(&history, 3);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn auto_degenerates_gracefully() {
        // Too short to fit anything: falls back to the weekly default.
        let m = Arima::auto(&[1.0, 2.0], 1, 4, 2);
        assert_eq!(m, Arima::weekly_default());
        let constant = Arima::auto(&[5.0; 60], 0, 3, 1);
        let f = constant.forecast(&[5.0; 60], 4);
        assert!(f.iter().all(|&v| (v - 5.0).abs() < 1.0), "{f:?}");
    }

    #[test]
    fn weekly_default_shape() {
        let cfg = Arima::weekly_default();
        assert_eq!((cfg.p, cfg.d, cfg.q), (7, 1, 1));
        assert_eq!(cfg.name(), "arima");
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use rand::{Rng, RngExt};

    /// Box–Muller standard normal for test fixtures (duplicated from the
    /// trace crate to keep this crate dependency-free).
    pub fn normal_01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}
