//! Baseline forecasters: naive, seasonal-naive, and EWMA.
//!
//! These are the standard yardsticks for the ARIMA error analysis (Fig. 4)
//! and double as cheap predictors for ablation experiments.

use crate::series::mean;
use crate::Forecaster;
use serde::{Deserialize, Serialize};

/// Repeats the last observed value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Naive;

impl Forecaster for Naive {
    fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        let last = history.last().copied().unwrap_or(0.0);
        vec![last; horizon]
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

/// Repeats the value observed one season (`period` steps) earlier; the
/// natural baseline for the weekly request cycles the paper describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeasonalNaive {
    /// Season length in steps (7 for weekly cycles on daily data).
    pub period: usize,
}

impl SeasonalNaive {
    /// Creates a seasonal-naive forecaster. Panics if `period == 0`.
    #[must_use]
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "season period must be positive");
        SeasonalNaive { period }
    }
}

impl Forecaster for SeasonalNaive {
    fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        if history.is_empty() {
            return vec![0.0; horizon];
        }
        if history.len() < self.period {
            // Not a full season yet: fall back to the mean.
            return vec![mean(history); horizon];
        }
        let season = &history[history.len() - self.period..];
        (0..horizon).map(|k| season[k % self.period]).collect()
    }

    fn name(&self) -> &'static str {
        "seasonal-naive"
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`,
/// forecast flat at the final smoothed level.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    /// Smoothing factor in `(0, 1]`; larger tracks recent values faster.
    pub alpha: f64,
}

impl Ewma {
    /// Creates an EWMA forecaster. Panics unless `0 < alpha <= 1`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha }
    }

    /// The smoothed level after consuming `history`.
    #[must_use]
    pub fn level(&self, history: &[f64]) -> f64 {
        let mut level = match history.first() {
            Some(&v) => v,
            None => return 0.0,
        };
        for &v in history.iter().skip(1) {
            level = self.alpha * v + (1.0 - self.alpha) * level;
        }
        level
    }
}

impl Forecaster for Ewma {
    fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        vec![self.level(history); horizon]
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_repeats_last() {
        assert_eq!(Naive.forecast(&[1.0, 2.0, 3.0], 3), vec![3.0, 3.0, 3.0]);
        assert_eq!(Naive.forecast(&[], 2), vec![0.0, 0.0]);
        assert_eq!(Naive.name(), "naive");
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let history = vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0];
        let f = SeasonalNaive::new(3).forecast(&history, 5);
        assert_eq!(f, vec![10.0, 20.0, 30.0, 10.0, 20.0]);
    }

    #[test]
    fn seasonal_naive_short_history_falls_back_to_mean() {
        let f = SeasonalNaive::new(7).forecast(&[2.0, 4.0], 2);
        assert_eq!(f, vec![3.0, 3.0]);
        assert_eq!(SeasonalNaive::new(7).forecast(&[], 2), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn seasonal_naive_zero_period_panics() {
        let _ = SeasonalNaive::new(0);
    }

    #[test]
    fn ewma_alpha_one_is_naive() {
        let history = vec![5.0, 9.0, 2.0];
        assert_eq!(Ewma::new(1.0).forecast(&history, 2), vec![2.0, 2.0]);
    }

    #[test]
    fn ewma_smooths_toward_recent() {
        let history = vec![0.0, 0.0, 0.0, 10.0];
        let level = Ewma::new(0.5).level(&history);
        assert_eq!(level, 5.0);
    }

    #[test]
    fn ewma_empty_history_is_zero() {
        assert_eq!(Ewma::new(0.3).forecast(&[], 3), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn names_are_distinct() {
        let names = [Naive.name(), SeasonalNaive::new(7).name(), Ewma::new(0.5).name()];
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
