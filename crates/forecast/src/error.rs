//! Prediction-error metrics for the Fig. 4 analysis.
//!
//! The paper measures `(true - predicted) / true` per file per day and
//! reports the 1st percentile, median, and 99th percentile per CV bucket.

use serde::{Deserialize, Serialize};

/// The paper's relative prediction error: `(true - predicted) / true`.
///
/// When the true value is zero the ratio is undefined; this returns the
/// absolute error instead (predicted 0 on true 0 is a perfect 0.0), which
/// keeps idle files from producing infinities in the percentile summaries.
#[must_use]
pub fn relative_error(true_value: f64, predicted: f64) -> f64 {
    if true_value == 0.0 {
        predicted.abs()
    } else {
        (true_value - predicted) / true_value
    }
}

/// Percentile summary of a set of errors (1% / 50% / 99%, as in Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// 1st percentile.
    pub p01: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Number of error samples summarized.
    pub count: usize,
}

impl ErrorSummary {
    /// Summarizes `errors`; returns `None` when empty.
    #[must_use]
    pub fn from_errors(errors: &[f64]) -> Option<ErrorSummary> {
        if errors.is_empty() {
            return None;
        }
        let mut sorted = errors.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pick = |q: f64| {
            let rank = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[rank]
        };
        Some(ErrorSummary {
            p01: pick(0.01),
            p50: pick(0.50),
            p99: pick(0.99),
            count: errors.len(),
        })
    }

    /// The widest absolute deviation among the summarized percentiles —
    /// a scalar "how bad can it get" used in harness tables.
    #[must_use]
    pub fn spread(&self) -> f64 {
        self.p01.abs().max(self.p99.abs())
    }
}

/// Computes per-step relative errors of a forecast against the truth.
///
/// Panics if lengths differ.
#[must_use]
pub fn forecast_errors(truth: &[f64], predicted: &[f64]) -> Vec<f64> {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    truth.iter().zip(predicted).map(|(&t, &p)| relative_error(t, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relative_error_signs() {
        // Over-prediction: negative error (paper's convention).
        assert_eq!(relative_error(10.0, 15.0), -0.5);
        // Under-prediction: positive error.
        assert_eq!(relative_error(10.0, 5.0), 0.5);
        // Perfect: zero.
        assert_eq!(relative_error(10.0, 10.0), 0.0);
    }

    #[test]
    fn zero_truth_uses_absolute_error() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 3.0), 3.0);
        assert_eq!(relative_error(0.0, -3.0), 3.0);
    }

    #[test]
    fn summary_percentiles() {
        let errors: Vec<f64> = (0..101).map(|i| i as f64 / 100.0).collect();
        let s = ErrorSummary::from_errors(&errors).unwrap();
        assert!((s.p01 - 0.01).abs() < 1e-9);
        assert!((s.p50 - 0.50).abs() < 1e-9);
        assert!((s.p99 - 0.99).abs() < 1e-9);
        assert_eq!(s.count, 101);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert_eq!(ErrorSummary::from_errors(&[]), None);
    }

    #[test]
    fn summary_of_singleton() {
        let s = ErrorSummary::from_errors(&[0.25]).unwrap();
        assert_eq!((s.p01, s.p50, s.p99), (0.25, 0.25, 0.25));
        assert_eq!(s.spread(), 0.25);
    }

    #[test]
    fn forecast_errors_pairs_up() {
        let e = forecast_errors(&[10.0, 20.0], &[5.0, 25.0]);
        assert_eq!(e, vec![0.5, -0.25]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn forecast_errors_rejects_mismatched_lengths() {
        let _ = forecast_errors(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn percentiles_are_ordered(
            errors in proptest::collection::vec(-10.0f64..10.0, 1..200),
        ) {
            let s = ErrorSummary::from_errors(&errors).unwrap();
            prop_assert!(s.p01 <= s.p50);
            prop_assert!(s.p50 <= s.p99);
            prop_assert!(s.spread() >= 0.0);
        }

        #[test]
        fn perfect_forecast_has_zero_errors(
            truth in proptest::collection::vec(0.0f64..100.0, 1..50),
        ) {
            let errors = forecast_errors(&truth, &truth);
            prop_assert!(errors.iter().all(|&e| e == 0.0));
        }
    }
}
