//! Time-series forecasting for request frequencies.
//!
//! The paper's §3.1 uses an ARIMA model to predict each file's daily request
//! frequency 7 days ahead from two months of history (Fig. 4 reports the
//! per-bucket prediction-error distribution). This crate implements
//! ARIMA(p, d, q) from scratch — differencing, AR fitting by conditional
//! least squares, MA fitting by the Hannan–Rissanen two-stage regression —
//! plus the naive/seasonal/EWMA baselines the error analysis compares
//! against.
//!
//! # Quick example
//!
//! ```
//! use forecast::{Arima, Forecaster};
//!
//! // A noiseless linear ramp: ARIMA(1,1,0) extrapolates the trend.
//! let history: Vec<f64> = (0..50).map(|t| 2.0 * t as f64).collect();
//! let forecast = Arima::new(1, 1, 0).forecast(&history, 3);
//! assert_eq!(forecast.len(), 3);
//! assert!((forecast[0] - 100.0).abs() < 1.0);
//! ```

#![warn(missing_docs)]
// Library code must surface failures as values (L2 no-panic-in-libs); tests
// may unwrap freely.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Tests assert bit-exact float reproducibility on purpose.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod arima;
pub mod baselines;
pub mod error;
pub mod linalg;
pub mod series;

pub use arima::Arima;
pub use baselines::{Ewma, Naive, SeasonalNaive};
pub use error::{relative_error, ErrorSummary};

/// A forecaster maps a history to `horizon` future values.
///
/// Implementations are configuration objects; fitting happens inside
/// `forecast` on the given history (matching how the paper refits ARIMA per
/// file per decision period).
pub trait Forecaster {
    /// Predicts the next `horizon` values after `history`.
    ///
    /// Implementations must return exactly `horizon` values and handle
    /// degenerate histories (empty, constant) gracefully.
    fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64>;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}
