//! Minimal dense linear algebra for least-squares fitting.
//!
//! ARIMA fitting reduces to solving small normal-equation systems
//! (dimension = p + q, typically ≤ 10), so a straightforward
//! partial-pivoting Gaussian elimination is both sufficient and exact
//! enough. Kept in its own module so `arima` stays readable.

/// Solves `A x = b` for square `A` (row-major, `n x n`) by Gaussian
/// elimination with partial pivoting.
///
/// Returns `None` when the system is (numerically) singular — callers fall
/// back to simpler models in that case.
#[must_use]
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "A must be n x n");
    assert_eq!(b.len(), n, "b must have length n");
    if n == 0 {
        return Some(Vec::new());
    }
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: largest |value| in this column at or below the diagonal.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| m[r1 * n + col].abs().total_cmp(&m[r2 * n + col].abs()))
            .unwrap_or(col);
        let pivot = m[pivot_row * n + col];
        // A NaN pivot (NaN input) is treated like a singular system.
        if pivot.is_nan() || pivot.abs() < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        for row in (col + 1)..n {
            let factor = m[row * n + col] / m[col * n + col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    Some(x)
}

/// Solves the least-squares problem `min ||X beta - y||^2` via the normal
/// equations `X^T X beta = X^T y`, with a small ridge term for numerical
/// stability on nearly collinear designs.
///
/// `x` is row-major with `rows` rows and `cols` columns. Returns `None` when
/// the normal equations are singular even after regularization.
#[must_use]
pub fn least_squares(x: &[f64], y: &[f64], rows: usize, cols: usize) -> Option<Vec<f64>> {
    assert_eq!(x.len(), rows * cols, "X dimensions mismatch");
    assert_eq!(y.len(), rows, "y length mismatch");
    if cols == 0 {
        return Some(Vec::new());
    }
    if rows < cols {
        return None;
    }
    let mut xtx = vec![0.0; cols * cols];
    let mut xty = vec![0.0; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            xty[i] += row[i] * y[r];
            for j in i..cols {
                xtx[i * cols + j] += row[i] * row[j];
            }
        }
    }
    // Mirror the upper triangle and add a tiny ridge.
    let ridge = 1e-8 * (0..cols).map(|i| xtx[i * cols + i]).fold(0.0f64, f64::max).max(1e-12);
    for i in 0..cols {
        for j in 0..i {
            xtx[i * cols + j] = xtx[j * cols + i];
        }
        xtx[i * cols + i] += ridge;
    }
    solve(&xtx, &xty, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, 4.0];
        assert_eq!(solve(&a, &b, 2), Some(vec![3.0, 4.0]));
    }

    #[test]
    fn solves_2x2() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
        let a = vec![2.0, 1.0, 1.0, -1.0];
        let b = vec![5.0, 1.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solves_with_pivoting_required() {
        // Leading zero forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let b = vec![7.0, 9.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        let b = vec![1.0, 2.0];
        assert_eq!(solve(&a, &b, 2), None);
    }

    #[test]
    fn empty_system() {
        assert_eq!(solve(&[], &[], 0), Some(vec![]));
        assert_eq!(least_squares(&[], &[], 0, 0), Some(vec![]));
    }

    #[test]
    fn least_squares_exact_fit() {
        // y = 2*x1 + 3*x2, overdetermined but consistent.
        let x = vec![
            1.0, 0.0, //
            0.0, 1.0, //
            1.0, 1.0, //
            2.0, 1.0,
        ];
        let y = vec![2.0, 3.0, 5.0, 7.0];
        let beta = least_squares(&x, &y, 4, 2).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-5, "beta0 {}", beta[0]);
        assert!((beta[1] - 3.0).abs() < 1e-5, "beta1 {}", beta[1]);
    }

    #[test]
    fn least_squares_underdetermined_returns_none() {
        let x = vec![1.0, 2.0, 3.0]; // 1 row, 3 cols
        assert_eq!(least_squares(&x, &[1.0], 1, 3), None);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Noisy line: fitted slope must beat slope±0.5 in residual norm.
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let noise = [0.3, -0.2, 0.1, -0.4, 0.2];
        let y: Vec<f64> =
            xs.iter().enumerate().map(|(i, &x)| 1.5 * x + noise[i % noise.len()]).collect();
        let design: Vec<f64> = xs.clone();
        let beta = least_squares(&design, &y, 20, 1).unwrap();
        let rss = |slope: f64| -> f64 {
            xs.iter().zip(&y).map(|(&x, &yy)| (yy - slope * x).powi(2)).sum()
        };
        assert!(rss(beta[0]) <= rss(beta[0] + 0.5));
        assert!(rss(beta[0]) <= rss(beta[0] - 0.5));
        assert!((beta[0] - 1.5).abs() < 0.05);
    }

    proptest! {
        #[test]
        fn solve_then_multiply_recovers_b(
            vals in proptest::collection::vec(-5.0f64..5.0, 9),
            b in proptest::collection::vec(-5.0f64..5.0, 3),
        ) {
            // Make the matrix diagonally dominant so it's well-conditioned.
            let mut a = vals.clone();
            for i in 0..3 {
                a[i * 3 + i] += 20.0;
            }
            let x = solve(&a, &b, 3).expect("diagonally dominant is nonsingular");
            for i in 0..3 {
                let recovered: f64 = (0..3).map(|j| a[i * 3 + j] * x[j]).sum();
                prop_assert!((recovered - b[i]).abs() < 1e-6);
            }
        }
    }
}
