//! Series utilities: differencing, integration, and autocovariance.

/// First difference applied `d` times. Each application shortens the series
/// by one; returns an empty vector when the series is too short.
#[must_use]
pub fn difference(series: &[f64], d: usize) -> Vec<f64> {
    let mut current = series.to_vec();
    for _ in 0..d {
        if current.len() < 2 {
            return Vec::new();
        }
        current = current.windows(2).map(|w| w[1] - w[0]).collect();
    }
    current
}

/// Inverts `d` rounds of differencing for a block of forecasts.
///
/// `tails[k]` must hold the last value of the series after `k` rounds of
/// differencing (so `tails[0]` is the last original observation and
/// `tails[d-1]` the last value of the `(d-1)`-times differenced series).
/// Given forecasts on the `d`-times differenced scale, returns forecasts on
/// the original scale.
#[must_use]
pub fn undifference(forecasts: &[f64], tails: &[f64]) -> Vec<f64> {
    let mut current = forecasts.to_vec();
    for &tail in tails.iter().rev() {
        let mut acc = tail;
        for value in &mut current {
            acc += *value;
            *value = acc;
        }
    }
    current
}

/// The last values of the 0..d-times differenced series, as needed by
/// [`undifference`]. Returns `None` when the series is too short to
/// difference `d` times.
#[must_use]
pub fn difference_tails(series: &[f64], d: usize) -> Option<Vec<f64>> {
    let mut tails = Vec::with_capacity(d);
    let mut current = series.to_vec();
    for _ in 0..d {
        let &last = current.last()?;
        tails.push(last);
        if current.len() < 2 {
            return None;
        }
        current = current.windows(2).map(|w| w[1] - w[0]).collect();
    }
    Some(tails)
}

/// Arithmetic mean; 0.0 for an empty series.
#[must_use]
pub fn mean(series: &[f64]) -> f64 {
    if series.is_empty() {
        0.0
    } else {
        series.iter().sum::<f64>() / series.len() as f64
    }
}

/// Sample autocovariance at `lag` (biased, `1/n` normalization, the standard
/// choice for Yule–Walker systems).
#[must_use]
pub fn autocovariance(series: &[f64], lag: usize) -> f64 {
    let n = series.len();
    if lag >= n {
        return 0.0;
    }
    let mu = mean(series);
    let mut acc = 0.0;
    for t in lag..n {
        acc += (series[t] - mu) * (series[t - lag] - mu);
    }
    acc / n as f64
}

/// Autocorrelation at `lag` (autocovariance normalized by variance);
/// 0.0 for constant series.
#[must_use]
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let var = autocovariance(series, 0);
    if var <= 0.0 {
        0.0
    } else {
        autocovariance(series, lag) / var
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn difference_once() {
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 1), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn difference_twice() {
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 2), vec![1.0, 1.0]);
    }

    #[test]
    fn difference_zero_is_identity() {
        assert_eq!(difference(&[5.0, 7.0], 0), vec![5.0, 7.0]);
    }

    #[test]
    fn difference_short_series_is_empty() {
        assert_eq!(difference(&[1.0], 1), Vec::<f64>::new());
        assert_eq!(difference(&[], 1), Vec::<f64>::new());
        assert_eq!(difference(&[1.0, 2.0], 2), Vec::<f64>::new());
    }

    #[test]
    fn tails_capture_each_level() {
        let s = [1.0, 3.0, 6.0, 10.0];
        // level 0 last: 10; level 1 series [2,3,4] last: 4
        assert_eq!(difference_tails(&s, 2), Some(vec![10.0, 4.0]));
        assert_eq!(difference_tails(&s, 0), Some(vec![]));
        assert_eq!(difference_tails(&[], 1), None);
    }

    #[test]
    fn undifference_inverts_difference() {
        let s = [1.0, 3.0, 6.0, 10.0, 15.0, 21.0];
        for d in 0..3usize {
            // Treat the last `h` differenced values as "forecasts" and verify
            // reconstruction matches the original tail.
            let h = 2;
            let head = &s[..s.len() - h];
            let diffed_full = difference(&s, d);
            let tail_forecasts = &diffed_full[diffed_full.len() - h..];
            let tails = difference_tails(head, d).unwrap();
            let rebuilt = undifference(tail_forecasts, &tails);
            for (r, expected) in rebuilt.iter().zip(&s[s.len() - h..]) {
                assert!((r - expected).abs() < 1e-9, "d={d}: {r} vs {expected}");
            }
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn autocovariance_lag_zero_is_variance() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let mu = 2.5;
        let var: f64 = s.iter().map(|x: &f64| (x - mu).powi(2)).sum::<f64>() / 4.0;
        assert!((autocovariance(&s, 0) - var).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_bounds_and_degenerates() {
        let s = [5.0, 5.0, 5.0];
        assert_eq!(autocorrelation(&s, 1), 0.0);
        let alternating = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(autocorrelation(&alternating, 1) < 0.0);
        assert_eq!(autocovariance(&alternating, 10), 0.0);
    }

    proptest! {
        #[test]
        fn undifference_roundtrip(
            s in proptest::collection::vec(-100.0f64..100.0, 5..30),
            d in 0usize..3,
        ) {
            let h = 2usize;
            prop_assume!(s.len() > h + d + 1);
            let head = &s[..s.len() - h];
            let diffed = difference(&s, d);
            prop_assume!(diffed.len() >= h);
            let forecasts = &diffed[diffed.len() - h..];
            let tails = difference_tails(head, d).unwrap();
            let rebuilt = undifference(forecasts, &tails);
            for (r, expected) in rebuilt.iter().zip(&s[s.len() - h..]) {
                prop_assert!((r - expected).abs() < 1e-6);
            }
        }

        #[test]
        fn autocorrelation_is_at_most_one(
            s in proptest::collection::vec(-50.0f64..50.0, 3..40),
            lag in 0usize..5,
        ) {
            let rho = autocorrelation(&s, lag);
            prop_assert!(rho.abs() <= 1.0 + 1e-9);
        }
    }
}
