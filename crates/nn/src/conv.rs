//! 1-D convolution, and the conv-plus-passthrough branch layer that mirrors
//! the paper's architecture ("128 filters, each of size 4 with stride 1.
//! Results from these layers are then aggregated with other inputs in a
//! hidden layer", §6.1).

use crate::init::glorot_uniform;
use crate::layer::Layer;
use crate::matrix::Matrix;

/// A 1-D convolution layer.
///
/// Input rows are channel-major: `[ch0 t0..t(L-1), ch1 t0.., ...]` with
/// `L = input_len`. Output rows are filter-major:
/// `[f0 p0..p(P-1), f1 p0.., ...]` with `P = output_len()`. Weights flatten
/// as `[filters row-major (each `in_channels * kernel`), biases]`.
#[derive(Clone, Debug)]
pub struct Conv1d {
    in_channels: usize,
    input_len: usize,
    filters: usize,
    kernel: usize,
    stride: usize,
    /// `filters x (in_channels * kernel)`.
    weights: Matrix,
    bias: Vec<f64>,
    grad_weights: Matrix,
    grad_bias: Vec<f64>,
    last_input: Matrix,
}

impl Conv1d {
    /// Creates a Conv1d. Panics when the geometry is inconsistent
    /// (`kernel > input_len`, zero stride, zero dims).
    #[must_use]
    pub fn new(
        in_channels: usize,
        input_len: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        seed: u64,
    ) -> Conv1d {
        assert!(in_channels > 0 && input_len > 0 && filters > 0, "dims must be positive");
        assert!(kernel > 0 && kernel <= input_len, "kernel must fit the input");
        assert!(stride > 0, "stride must be positive");
        let fan_in = in_channels * kernel;
        let w = glorot_uniform(fan_in, filters, filters * fan_in, seed);
        Conv1d {
            in_channels,
            input_len,
            filters,
            kernel,
            stride,
            weights: Matrix::from_vec(filters, fan_in, w),
            bias: vec![0.0; filters],
            grad_weights: Matrix::zeros(filters, fan_in),
            grad_bias: vec![0.0; filters],
            last_input: Matrix::zeros(0, 0),
        }
    }

    /// Number of output positions per filter.
    #[must_use]
    pub fn output_len(&self) -> usize {
        (self.input_len - self.kernel) / self.stride + 1
    }

    /// Expected input width (`in_channels * input_len`).
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.in_channels * self.input_len
    }

    /// Output width (`filters * output_len`).
    #[must_use]
    pub fn out_width(&self) -> usize {
        self.filters * self.output_len()
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        assert_eq!(input.cols(), self.input_width(), "conv input width mismatch");
        self.last_input.copy_from(input);
        let out_len = self.output_len();
        out.reset(input.rows(), self.out_width());
        for r in 0..input.rows() {
            let x = input.row(r);
            let o = out.row_mut(r);
            for f in 0..self.filters {
                let w = self.weights.row(f);
                for p in 0..out_len {
                    let start = p * self.stride;
                    let mut acc = self.bias[f];
                    for ch in 0..self.in_channels {
                        let x_seg = &x[ch * self.input_len + start..];
                        let w_seg = &w[ch * self.kernel..(ch + 1) * self.kernel];
                        for (xk, wk) in x_seg[..self.kernel].iter().zip(w_seg) {
                            acc += xk * wk;
                        }
                    }
                    o[f * out_len + p] = acc;
                }
            }
        }
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert_eq!(grad_output.cols(), self.out_width(), "conv grad width mismatch");
        assert_eq!(grad_output.rows(), self.last_input.rows(), "backward batch mismatch");
        let out_len = self.output_len();
        let mut grad_input = Matrix::zeros(self.last_input.rows(), self.input_width());
        for r in 0..grad_output.rows() {
            let x = self.last_input.row(r);
            let g = grad_output.row(r);
            for f in 0..self.filters {
                let gw = self.grad_weights.row_mut(f);
                for p in 0..out_len {
                    let go = g[f * out_len + p];
                    if go == 0.0 {
                        continue;
                    }
                    self.grad_bias[f] += go;
                    let start = p * self.stride;
                    for ch in 0..self.in_channels {
                        let x_base = ch * self.input_len + start;
                        let w_base = ch * self.kernel;
                        for k in 0..self.kernel {
                            gw[w_base + k] += go * x[x_base + k];
                        }
                    }
                }
            }
            // Separate pass for grad_input to avoid borrowing conflicts.
            let gi = grad_input.row_mut(r);
            for f in 0..self.filters {
                let w = self.weights.row(f);
                for p in 0..out_len {
                    let go = g[f * out_len + p];
                    if go == 0.0 {
                        continue;
                    }
                    let start = p * self.stride;
                    for ch in 0..self.in_channels {
                        let x_base = ch * self.input_len + start;
                        let w_base = ch * self.kernel;
                        for k in 0..self.kernel {
                            gi[x_base + k] += go * w[w_base + k];
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn params(&self) -> Vec<f64> {
        let mut flat = self.weights.as_slice().to_vec();
        flat.extend_from_slice(&self.bias);
        flat
    }

    fn set_params(&mut self, flat: &[f64]) -> usize {
        let n = self.param_count();
        assert!(flat.len() >= n, "parameter buffer too short");
        let w_len = self.filters * self.in_channels * self.kernel;
        self.weights.as_mut_slice().copy_from_slice(&flat[..w_len]);
        self.bias.copy_from_slice(&flat[w_len..n]);
        n
    }

    fn grads(&self) -> Vec<f64> {
        let mut flat = self.grad_weights.as_slice().to_vec();
        flat.extend_from_slice(&self.grad_bias);
        flat
    }

    fn zero_grads(&mut self) {
        self.grad_weights = Matrix::zeros(self.filters, self.in_channels * self.kernel);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn param_count(&self) -> usize {
        self.filters * self.in_channels * self.kernel + self.filters
    }

    fn output_width(&self, input_width: usize) -> usize {
        assert_eq!(input_width, self.input_width(), "conv input width mismatch");
        self.out_width()
    }

    fn name(&self) -> &'static str {
        "conv1d"
    }
}

/// Convolution over the first `conv.input_width()` features with identity
/// pass-through for the rest.
///
/// This is the paper's topology: the request-frequency history window goes
/// through the conv filters, whose outputs are "aggregated with other
/// inputs" (file size, current tier, write rate) before the hidden dense
/// layer. Output layout: `[conv outputs | pass-through features]`.
#[derive(Clone, Debug)]
pub struct ConvBranch {
    conv: Conv1d,
    passthrough: usize,
    /// Forward-pass scratch (split input, pass-through tail, conv output);
    /// hoisted so `forward_into` reuses the allocations every call.
    conv_in: Matrix,
    rest: Matrix,
    conv_out: Matrix,
}

impl ConvBranch {
    /// Wraps `conv`, passing `passthrough` extra trailing features around it.
    #[must_use]
    pub fn new(conv: Conv1d, passthrough: usize) -> ConvBranch {
        ConvBranch {
            conv,
            passthrough,
            conv_in: Matrix::default(),
            rest: Matrix::default(),
            conv_out: Matrix::default(),
        }
    }

    /// Total expected input width.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.conv.input_width() + self.passthrough
    }

    /// Total output width.
    #[must_use]
    pub fn out_width(&self) -> usize {
        self.conv.out_width() + self.passthrough
    }
}

impl Layer for ConvBranch {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        assert_eq!(input.cols(), self.input_width(), "branch input width mismatch");
        input.hsplit_into(self.conv.input_width(), &mut self.conv_in, &mut self.rest);
        self.conv.forward_into(&self.conv_in, &mut self.conv_out);
        self.conv_out.hconcat_into(&self.rest, out);
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert_eq!(grad_output.cols(), self.out_width(), "branch grad width mismatch");
        let (conv_grad, rest_grad) = grad_output.hsplit(self.conv.out_width());
        let conv_in_grad = self.conv.backward(&conv_grad);
        conv_in_grad.hconcat(&rest_grad)
    }

    fn params(&self) -> Vec<f64> {
        self.conv.params()
    }

    fn set_params(&mut self, flat: &[f64]) -> usize {
        self.conv.set_params(flat)
    }

    fn grads(&self) -> Vec<f64> {
        self.conv.grads()
    }

    fn zero_grads(&mut self) {
        self.conv.zero_grads();
    }

    fn param_count(&self) -> usize {
        self.conv.param_count()
    }

    fn output_width(&self, input_width: usize) -> usize {
        assert_eq!(input_width, self.input_width(), "branch input width mismatch");
        self.out_width()
    }

    fn name(&self) -> &'static str {
        "conv-branch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A conv with hand-set weights for exact arithmetic checks.
    fn small_conv() -> Conv1d {
        // 1 channel, len 4, 1 filter, kernel 2, stride 1 -> out len 3
        let mut c = Conv1d::new(1, 4, 1, 2, 1, 0);
        // w = [1, -1], b = [0.5]
        c.set_params(&[1.0, -1.0, 0.5]);
        c
    }

    #[test]
    fn forward_known_values() {
        let mut c = small_conv();
        let x = Matrix::row_vector(&[1.0, 3.0, 2.0, 5.0]);
        let y = c.forward(&x);
        // positions: (1-3)+0.5, (3-2)+0.5, (2-5)+0.5
        assert_eq!(y.as_slice(), &[-1.5, 1.5, -2.5]);
    }

    #[test]
    fn stride_two_halves_positions() {
        let mut c = Conv1d::new(1, 6, 1, 2, 2, 0);
        c.set_params(&[1.0, 1.0, 0.0]);
        let x = Matrix::row_vector(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = c.forward(&x);
        assert_eq!(c.output_len(), 3);
        assert_eq!(y.as_slice(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn multi_channel_sums_channels() {
        // 2 channels, len 3, 1 filter, kernel 2.
        let mut c = Conv1d::new(2, 3, 1, 2, 1, 0);
        // filter: ch0 [1, 0], ch1 [0, 1]; bias 0
        c.set_params(&[1.0, 0.0, 0.0, 1.0, 0.0]);
        // ch0 = [1, 2, 3], ch1 = [10, 20, 30]
        let x = Matrix::row_vector(&[1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
        let y = c.forward(&x);
        // pos0: ch0[0]*1 + ch1[1]*1 = 1 + 20; pos1: 2 + 30
        assert_eq!(y.as_slice(), &[21.0, 32.0]);
    }

    #[test]
    fn multi_filter_layout_is_filter_major() {
        let mut c = Conv1d::new(1, 3, 2, 2, 1, 0);
        // f0 = [1, 0] b 0 ; f1 = [0, 1] b 0
        c.set_params(&[1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let x = Matrix::row_vector(&[5.0, 6.0, 7.0]);
        let y = c.forward(&x);
        // f0 picks x[p], f1 picks x[p+1]
        assert_eq!(y.as_slice(), &[5.0, 6.0, 6.0, 7.0]);
    }

    #[test]
    fn param_count_and_round_trip() {
        let c = Conv1d::new(2, 8, 4, 3, 1, 3);
        assert_eq!(c.param_count(), 4 * 2 * 3 + 4);
        let flat = c.params();
        let mut c2 = Conv1d::new(2, 8, 4, 3, 1, 99);
        c2.set_params(&flat);
        assert_eq!(c2.params(), flat);
    }

    #[test]
    fn finite_difference_gradient_check() {
        let mut c = Conv1d::new(2, 5, 3, 2, 1, 11);
        let x = Matrix::row_vector(&[0.1, -0.2, 0.3, 0.5, -0.1, 0.7, 0.2, -0.4, 0.6, 0.0]);
        let y = c.forward(&x);
        let grad_in = c.backward(&y); // L = 0.5||y||^2
        let analytic = c.grads();

        let eps = 1e-6;
        let loss = |conv: &mut Conv1d, x: &Matrix| -> f64 {
            let y = conv.forward(x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f64>()
        };

        let base = c.params();
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let mut cp = c.clone();
            cp.set_params(&plus);
            let mut cm = c.clone();
            cm.set_params(&minus);
            let fd = (loss(&mut cp, &x) - loss(&mut cm, &x)) / (2.0 * eps);
            assert!(
                (analytic[i] - fd).abs() < 1e-5,
                "param {i}: analytic {} vs fd {fd}",
                analytic[i]
            );
        }

        for i in 0..x.cols() {
            let mut xp = x.clone();
            xp.set(0, i, x.get(0, i) + eps);
            let mut xm = x.clone();
            xm.set(0, i, x.get(0, i) - eps);
            let mut cc = c.clone();
            let fd = (loss(&mut cc, &xp) - loss(&mut cc, &xm)) / (2.0 * eps);
            assert!(
                (grad_in.get(0, i) - fd).abs() < 1e-5,
                "input {i}: analytic {} vs fd {fd}",
                grad_in.get(0, i)
            );
        }
    }

    #[test]
    fn conv_branch_passes_trailing_features_through() {
        let conv = small_conv();
        let mut branch = ConvBranch::new(conv, 2);
        assert_eq!(branch.input_width(), 6);
        assert_eq!(branch.out_width(), 5);
        let x = Matrix::row_vector(&[1.0, 3.0, 2.0, 5.0, 42.0, -7.0]);
        let y = branch.forward(&x);
        assert_eq!(y.as_slice(), &[-1.5, 1.5, -2.5, 42.0, -7.0]);
    }

    #[test]
    fn conv_branch_backward_routes_gradients() {
        let conv = small_conv();
        let mut branch = ConvBranch::new(conv, 2);
        let x = Matrix::row_vector(&[1.0, 3.0, 2.0, 5.0, 42.0, -7.0]);
        let _ = branch.forward(&x);
        let g = Matrix::row_vector(&[0.0, 0.0, 0.0, 1.0, 2.0]);
        let gi = branch.backward(&g);
        // Zero conv grads -> zero input grads for the conv segment; the
        // passthrough grads arrive unchanged.
        assert_eq!(&gi.as_slice()[..4], &[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(&gi.as_slice()[4..], &[1.0, 2.0]);
    }

    #[test]
    fn conv_branch_finite_difference() {
        let conv = Conv1d::new(1, 6, 2, 3, 1, 5);
        let mut branch = ConvBranch::new(conv, 3);
        let x = Matrix::row_vector(&[0.2, -0.1, 0.4, 0.0, 0.3, -0.5, 1.0, -1.0, 0.5]);
        let y = branch.forward(&x);
        let grad_in = branch.backward(&y);
        let eps = 1e-6;
        let loss = |b: &mut ConvBranch, x: &Matrix| -> f64 {
            let y = b.forward(x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f64>()
        };
        for i in 0..x.cols() {
            let mut xp = x.clone();
            xp.set(0, i, x.get(0, i) + eps);
            let mut xm = x.clone();
            xm.set(0, i, x.get(0, i) - eps);
            let mut bc = branch.clone();
            let fd = (loss(&mut bc, &xp) - loss(&mut bc, &xm)) / (2.0 * eps);
            assert!(
                (grad_in.get(0, i) - fd).abs() < 1e-5,
                "input {i}: analytic {} vs fd {fd}",
                grad_in.get(0, i)
            );
        }
    }

    #[test]
    #[should_panic(expected = "kernel must fit")]
    fn oversized_kernel_panics() {
        let _ = Conv1d::new(1, 3, 1, 4, 1, 0);
    }

    #[test]
    fn names() {
        assert_eq!(small_conv().name(), "conv1d");
        assert_eq!(ConvBranch::new(small_conv(), 1).name(), "conv-branch");
    }
}
