//! Fully-connected layer.

use crate::init::glorot_uniform;
use crate::layer::Layer;
use crate::matrix::Matrix;

/// A dense (fully-connected) layer: `y = x W + b`.
///
/// `W` is `in_dim x out_dim`, `b` is `1 x out_dim`. Parameters flatten as
/// `[W row-major, b]`.
#[derive(Clone, Debug)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    weights: Matrix,
    bias: Vec<f64>,
    grad_weights: Matrix,
    grad_bias: Vec<f64>,
    last_input: Matrix,
}

impl Dense {
    /// Creates a dense layer with Glorot-uniform weights and zero biases,
    /// seeded by `seed`.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Dense {
        assert!(in_dim > 0 && out_dim > 0, "dense dims must be positive");
        let w = glorot_uniform(in_dim, out_dim, in_dim * out_dim, seed);
        Dense {
            in_dim,
            out_dim,
            weights: Matrix::from_vec(in_dim, out_dim, w),
            bias: vec![0.0; out_dim],
            grad_weights: Matrix::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
            last_input: Matrix::zeros(0, 0),
        }
    }

    /// Input width.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        assert_eq!(input.cols(), self.in_dim, "dense input width mismatch");
        self.last_input.copy_from(input);
        input.matmul_into(&self.weights, out);
        out.add_row_in_place(&self.bias);
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert_eq!(grad_output.cols(), self.out_dim, "dense grad width mismatch");
        assert_eq!(grad_output.rows(), self.last_input.rows(), "backward batch mismatch");
        // dW = x^T g ; db = column sums of g ; dx = g W^T
        self.grad_weights = self.grad_weights.add(&self.last_input.t_matmul(grad_output));
        for (gb, s) in self.grad_bias.iter_mut().zip(grad_output.column_sums()) {
            *gb += s;
        }
        grad_output.matmul_t(&self.weights)
    }

    fn params(&self) -> Vec<f64> {
        let mut flat = self.weights.as_slice().to_vec();
        flat.extend_from_slice(&self.bias);
        flat
    }

    fn set_params(&mut self, flat: &[f64]) -> usize {
        let n = self.param_count();
        assert!(flat.len() >= n, "parameter buffer too short");
        let w_len = self.in_dim * self.out_dim;
        self.weights.as_mut_slice().copy_from_slice(&flat[..w_len]);
        self.bias.copy_from_slice(&flat[w_len..n]);
        n
    }

    fn grads(&self) -> Vec<f64> {
        let mut flat = self.grad_weights.as_slice().to_vec();
        flat.extend_from_slice(&self.grad_bias);
        flat
    }

    fn zero_grads(&mut self) {
        self.grad_weights = Matrix::zeros(self.in_dim, self.out_dim);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn param_count(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }

    fn output_width(&self, input_width: usize) -> usize {
        assert_eq!(input_width, self.in_dim, "dense input width mismatch");
        self.out_dim
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_params(in_dim: usize, out_dim: usize, w: &[f64], b: &[f64]) -> Dense {
        let mut d = Dense::new(in_dim, out_dim, 0);
        let mut flat = w.to_vec();
        flat.extend_from_slice(b);
        d.set_params(&flat);
        d
    }

    #[test]
    fn forward_is_affine() {
        // W = [[1, 2], [3, 4]], b = [10, 20], x = [1, 1] -> [14, 26]
        let mut d = with_params(2, 2, &[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0]);
        let y = d.forward(&Matrix::row_vector(&[1.0, 1.0]));
        assert_eq!(y.as_slice(), &[14.0, 26.0]);
    }

    #[test]
    fn forward_batch() {
        let mut d = with_params(2, 1, &[1.0, -1.0], &[0.5]);
        let x = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let y = d.forward(&x);
        assert_eq!(y.as_slice(), &[1.5, -0.5]);
    }

    #[test]
    fn param_round_trip() {
        let d = Dense::new(3, 4, 7);
        let flat = d.params();
        assert_eq!(flat.len(), d.param_count());
        let mut d2 = Dense::new(3, 4, 99);
        assert_ne!(d2.params(), flat);
        let consumed = d2.set_params(&flat);
        assert_eq!(consumed, flat.len());
        assert_eq!(d2.params(), flat);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut d = with_params(1, 1, &[2.0], &[0.0]);
        let x = Matrix::row_vector(&[3.0]);
        let g = Matrix::row_vector(&[1.0]);
        let _ = d.forward(&x);
        let _ = d.backward(&g);
        let _ = d.forward(&x);
        let _ = d.backward(&g);
        // dW = x * g = 3.0, accumulated twice.
        assert_eq!(d.grads(), vec![6.0, 2.0]);
        d.zero_grads();
        assert_eq!(d.grads(), vec![0.0, 0.0]);
    }

    #[test]
    fn finite_difference_gradient_check() {
        // L = 0.5 * ||y||^2 with y = dense(x); dL/dy = y.
        let mut d = Dense::new(3, 2, 42);
        let x = Matrix::row_vector(&[0.3, -0.5, 0.9]);
        let y = d.forward(&x);
        let grad_in = d.backward(&y);
        let analytic_param_grads = d.grads();

        let eps = 1e-6;
        let loss = |dense: &mut Dense, x: &Matrix| -> f64 {
            let y = dense.forward(x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f64>()
        };

        // Parameter gradients.
        let base_params = d.params();
        for i in 0..base_params.len() {
            let mut plus = base_params.clone();
            plus[i] += eps;
            let mut minus = base_params.clone();
            minus[i] -= eps;
            let mut dp = d.clone();
            dp.set_params(&plus);
            let mut dm = d.clone();
            dm.set_params(&minus);
            let fd = (loss(&mut dp, &x) - loss(&mut dm, &x)) / (2.0 * eps);
            assert!(
                (analytic_param_grads[i] - fd).abs() < 1e-5,
                "param {i}: analytic {} vs fd {fd}",
                analytic_param_grads[i]
            );
        }

        // Input gradients.
        for i in 0..3 {
            let mut xp = x.clone();
            xp.set(0, i, x.get(0, i) + eps);
            let mut xm = x.clone();
            xm.set(0, i, x.get(0, i) - eps);
            let mut dc = d.clone();
            let fd = (loss(&mut dc, &xp) - loss(&mut dc, &xm)) / (2.0 * eps);
            assert!(
                (grad_in.get(0, i) - fd).abs() < 1e-5,
                "input {i}: analytic {} vs fd {fd}",
                grad_in.get(0, i)
            );
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        let mut d = Dense::new(2, 2, 1);
        let _ = d.forward(&Matrix::row_vector(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn output_width_checks_input() {
        let d = Dense::new(5, 3, 1);
        assert_eq!(d.output_width(5), 3);
        assert_eq!(d.name(), "dense");
    }
}
