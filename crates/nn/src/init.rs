//! Seeded weight initialization.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draws `n` weights from a uniform Glorot/Xavier distribution
/// `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`, from a
/// dedicated RNG stream keyed by `seed`.
///
/// Glorot-uniform keeps forward activations and backward gradients at
/// comparable scale for the tanh/ReLU nets this system trains.
#[must_use]
pub fn glorot_uniform(fan_in: usize, fan_out: usize, n: usize, seed: u64) -> Vec<f64> {
    let denom = (fan_in + fan_out).max(1) as f64;
    let limit = (6.0 / denom).sqrt();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..n).map(|_| rng.random_range(-limit..limit)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_respect_glorot_bound() {
        let w = glorot_uniform(10, 20, 1000, 3);
        let limit = (6.0 / 30.0f64).sqrt();
        assert!(w.iter().all(|&v| v.abs() < limit));
        assert_eq!(w.len(), 1000);
    }

    #[test]
    fn initialization_is_seed_deterministic() {
        assert_eq!(glorot_uniform(4, 4, 16, 7), glorot_uniform(4, 4, 16, 7));
        assert_ne!(glorot_uniform(4, 4, 16, 7), glorot_uniform(4, 4, 16, 8));
    }

    #[test]
    fn weights_are_centered() {
        let w = glorot_uniform(64, 64, 10_000, 1);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_fan_does_not_divide_by_zero() {
        let w = glorot_uniform(0, 0, 4, 1);
        assert_eq!(w.len(), 4);
        assert!(w.iter().all(|v| v.is_finite()));
    }
}
