//! The layer abstraction and parameter-free activation layers.

use crate::matrix::Matrix;

/// A differentiable layer in a sequential [`crate::Network`].
///
/// The forward pass caches whatever the backward pass needs; `backward`
/// consumes the gradient w.r.t. the layer's output and returns the gradient
/// w.r.t. its input, accumulating parameter gradients internally. Gradients
/// accumulate across calls until [`Layer::zero_grads`].
pub trait Layer: Send {
    /// Forward pass over a batch (rows = samples).
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Forward pass into a caller-owned output buffer, reusing its
    /// allocation; semantically identical to [`Layer::forward`] (same
    /// cached state for the backward pass, bit-identical output). Layers
    /// on the decision hot path override the defaulted allocating form.
    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        *out = self.forward(input);
    }

    /// Backward pass; must follow a `forward` with the matching batch.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Flat view of trainable parameters (empty for activations).
    fn params(&self) -> Vec<f64>;

    /// Overwrites trainable parameters from a flat buffer, returning the
    /// number of values consumed.
    fn set_params(&mut self, flat: &[f64]) -> usize;

    /// Flat view of accumulated parameter gradients (same layout as
    /// [`Layer::params`]).
    fn grads(&self) -> Vec<f64>;

    /// Clears accumulated gradients.
    fn zero_grads(&mut self);

    /// Number of trainable parameters.
    fn param_count(&self) -> usize;

    /// Output width for a given input width; panics if incompatible.
    /// Lets [`crate::Network`] validate layer chains at construction.
    fn output_width(&self, input_width: usize) -> usize;

    /// Short layer name for debugging.
    fn name(&self) -> &'static str;
}

/// Rectified linear unit: `max(0, x)`.
#[derive(Clone, Debug, Default)]
pub struct Relu {
    mask: Matrix,
}

impl Relu {
    /// Creates a ReLU activation.
    #[must_use]
    pub fn new() -> Relu {
        Relu { mask: Matrix::zeros(0, 0) }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        input.map_into(|v| if v > 0.0 { 1.0 } else { 0.0 }, &mut self.mask);
        input.map_into(|v| v.max(0.0), out);
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert_eq!(grad_output.shape(), self.mask.shape(), "backward before forward");
        grad_output.hadamard(&self.mask)
    }

    fn params(&self) -> Vec<f64> {
        Vec::new()
    }

    fn set_params(&mut self, _flat: &[f64]) -> usize {
        0
    }

    fn grads(&self) -> Vec<f64> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn param_count(&self) -> usize {
        0
    }

    fn output_width(&self, input_width: usize) -> usize {
        input_width
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Hyperbolic tangent activation.
#[derive(Clone, Debug, Default)]
pub struct Tanh {
    output: Matrix,
}

impl Tanh {
    /// Creates a tanh activation.
    #[must_use]
    pub fn new() -> Tanh {
        Tanh { output: Matrix::zeros(0, 0) }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, &mut out);
        out
    }

    fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        input.map_into(f64::tanh, &mut self.output);
        out.copy_from(&self.output);
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert_eq!(grad_output.shape(), self.output.shape(), "backward before forward");
        // d tanh(x)/dx = 1 - tanh(x)^2
        let deriv = self.output.map(|y| 1.0 - y * y);
        grad_output.hadamard(&deriv)
    }

    fn params(&self) -> Vec<f64> {
        Vec::new()
    }

    fn set_params(&mut self, _flat: &[f64]) -> usize {
        0
    }

    fn grads(&self) -> Vec<f64> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}

    fn param_count(&self) -> usize {
        0
    }

    fn output_width(&self, input_width: usize) -> usize {
        input_width
    }

    fn name(&self) -> &'static str {
        "tanh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clips_negatives() {
        let mut relu = Relu::new();
        let x = Matrix::row_vector(&[-2.0, 0.0, 3.0]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Matrix::row_vector(&[-2.0, 0.5, 3.0]);
        let _ = relu.forward(&x);
        let g = relu.backward(&Matrix::row_vector(&[1.0, 1.0, 1.0]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn tanh_forward_and_gradient() {
        let mut tanh = Tanh::new();
        let x = Matrix::row_vector(&[0.0, 1.0]);
        let y = tanh.forward(&x);
        assert_eq!(y.get(0, 0), 0.0);
        assert!((y.get(0, 1) - 1.0f64.tanh()).abs() < 1e-12);
        let g = tanh.backward(&Matrix::row_vector(&[1.0, 1.0]));
        // At 0 the derivative is 1; at 1 it's 1 - tanh(1)^2.
        assert!((g.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((g.get(0, 1) - (1.0 - 1.0f64.tanh().powi(2))).abs() < 1e-12);
    }

    #[test]
    fn activations_have_no_params() {
        let relu = Relu::new();
        assert_eq!(relu.param_count(), 0);
        assert!(relu.params().is_empty());
        assert!(relu.grads().is_empty());
        assert_eq!(relu.output_width(7), 7);
        let tanh = Tanh::new();
        assert_eq!(tanh.param_count(), 0);
        assert_eq!(tanh.output_width(3), 3);
        assert_eq!(relu.name(), "relu");
        assert_eq!(tanh.name(), "tanh");
    }

    #[test]
    fn relu_finite_difference() {
        // For y = relu(x), dL/dx where L = sum(y * w).
        let mut relu = Relu::new();
        let x = Matrix::row_vector(&[0.3, -0.7, 1.2]);
        let w = [2.0, 3.0, -1.0];
        let _ = relu.forward(&x);
        let analytic = relu.backward(&Matrix::row_vector(&w));
        let eps = 1e-6;
        for i in 0..3 {
            let mut plus = x.clone();
            plus.set(0, i, x.get(0, i) + eps);
            let mut minus = x.clone();
            minus.set(0, i, x.get(0, i) - eps);
            let mut r2 = Relu::new();
            let loss =
                |m: &Matrix| -> f64 { m.as_slice().iter().zip(&w).map(|(a, b)| a * b).sum() };
            let fd = (loss(&r2.forward(&plus)) - loss(&r2.forward(&minus))) / (2.0 * eps);
            assert!((analytic.get(0, i) - fd).abs() < 1e-5, "dim {i}");
        }
    }
}
