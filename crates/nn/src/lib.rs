//! From-scratch neural networks for MiniCost's DQN.
//!
//! The paper trains its actor and critic networks with TensorFlow/TFLearn
//! (§6.1: "128 filters, each of size 4 with stride 1 ... aggregated with
//! other inputs in a hidden layer that uses 128 neurons"). This crate
//! provides the equivalent building blocks in pure Rust:
//!
//! * [`Matrix`] — a small row-major `f64` matrix with the handful of BLAS-1/2
//!   kernels the layers need.
//! * Layers — [`Dense`], [`Conv1d`], [`ConvBranch`] (conv over the history
//!   window concatenated with pass-through scalar features, matching the
//!   paper's "aggregated with other inputs"), [`Relu`], [`Tanh`].
//! * [`Network`] — a sequential container with forward/backward, flat
//!   parameter/gradient vectors (what the A3C parameter store shares), and
//!   seeded initialization.
//! * Optimizers — [`Sgd`], [`Momentum`], [`Adam`], all operating on flat
//!   parameter vectors.
//! * Losses/ops — softmax, MSE, and the advantage-weighted policy-gradient
//!   loss with entropy bonus used by the actor.
//!
//! Backward passes are hand-written and verified against central finite
//! differences in the test suite.
//!
//! # Quick example
//!
//! ```
//! use nn::{Network, Dense, Relu, Sgd, Optimizer, Matrix};
//!
//! let mut net = Network::new(vec![
//!     Box::new(Dense::new(2, 8, 1)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 1, 2)),
//! ]);
//! let x = Matrix::from_rows(vec![vec![0.5, -0.5]]);
//! let y = net.forward(&x);
//! assert_eq!(y.shape(), (1, 1));
//! let mut opt = Sgd::new(0.01);
//! net.backward(&y); // dL/dy = y for L = y^2 / 2
//! let grads = net.grad_vector();
//! let mut params = net.param_vector();
//! opt.step(&mut params, &grads);
//! net.set_params(&params);
//! ```

#![warn(missing_docs)]
// Library code must surface failures as values (L2 no-panic-in-libs); tests
// may unwrap freely.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Tests assert bit-exact float reproducibility on purpose.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod conv;
pub mod dense;
pub mod init;
pub mod layer;
pub mod matrix;
pub mod network;
pub mod ops;
pub mod optimizer;

pub use conv::{Conv1d, ConvBranch};
pub use dense::Dense;
pub use layer::{Layer, Relu, Tanh};
pub use matrix::Matrix;
pub use network::{ForwardScratch, Network};
pub use ops::{log_softmax, mse_grad, mse_loss, policy_gradient_loss, softmax, PolicyGrad};
pub use optimizer::{clip_grad_norm, Adam, Momentum, Optimizer, Sgd};
