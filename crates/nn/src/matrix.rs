//! A small row-major `f64` matrix.
//!
//! Scoped to what the layers need: matmul (cache-blocked ikj loop order,
//! which the compiler vectorizes well at these sizes), transpose-free
//! variants for the backward passes, and element-wise helpers. Networks in
//! this system are hundreds of units wide at most, so a hand-rolled kernel
//! comfortably beats the overhead of pulling in a BLAS.
//!
//! Every product kernel comes in an output-buffer `_into` form
//! ([`Matrix::matmul_into`], [`Matrix::t_matmul_into`],
//! [`Matrix::matmul_t_into`]) that reuses the destination's backing
//! allocation; the owned-result methods are thin wrappers over these, so
//! training and inference share one kernel. The blocked kernels keep the
//! reduction index ascending per output element and preserve the `a == 0.0`
//! skip, so their results are bit-identical to the straightforward scalar
//! loops (asserted by property tests below, including ragged tail blocks).

use serde::{Deserialize, Serialize};

/// Row-block size of the blocked kernels (output rows per tile).
const BLOCK_ROWS: usize = 32;

/// Reduction-block size of the blocked kernels: a `BLOCK_ROWS x BLOCK_RED`
/// tile of the left operand and the matching right-operand panel stay
/// cache-resident across the inner axpy sweeps.
const BLOCK_RED: usize = 64;

/// A dense row-major matrix of `f64`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a flat row-major buffer. Panics on length mismatch.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds from nested rows. Panics if rows are ragged.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Matrix {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in &rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: n_rows, cols: n_cols, data }
    }

    /// A `1 x n` row vector.
    #[must_use]
    pub fn row_vector(values: &[f64]) -> Matrix {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor. Panics when out of bounds (debug-friendly; hot
    /// paths use row slices instead).
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element setter. Panics when out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Row `r` as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes to `rows x cols` and zero-fills, reusing the backing
    /// allocation when its capacity suffices. The `_into` kernels call this
    /// on their destination, so a hoisted scratch matrix allocates once and
    /// is reused every decision day.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Becomes a copy of `src`, reusing the backing allocation when its
    /// capacity suffices.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// `self @ other` (`m x k` times `k x n`).
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// `self @ other` into `out`, reusing `out`'s allocation.
    ///
    /// Cache-blocked over output rows and the reduction index; per output
    /// element the reduction runs in ascending order with the `a == 0.0`
    /// skip, so the result is bit-identical to the plain ikj scalar loop.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.reset(m, n);
        for ib in (0..m).step_by(BLOCK_ROWS) {
            let i_end = (ib + BLOCK_ROWS).min(m);
            for pb in (0..k).step_by(BLOCK_RED) {
                let p_end = (pb + BLOCK_RED).min(k);
                for i in ib..i_end {
                    let a_row = &self.data[i * k + pb..i * k + p_end];
                    let out_row = &mut out.data[i * n..(i + 1) * n];
                    for (off, &a) in a_row.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let p = pb + off;
                        let b_row = &other.data[p * n..(p + 1) * n];
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
    }

    /// `self^T @ other` without materializing the transpose
    /// (`m x k`^T times `m x n` -> `k x n`); used for weight gradients.
    #[must_use]
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.t_matmul_into(other, &mut out);
        out
    }

    /// `self^T @ other` into `out`, reusing `out`'s allocation.
    ///
    /// Blocked over output rows (the left operand's columns); the reduction
    /// over input rows stays ascending per output element with the
    /// `a == 0.0` skip, so the result is bit-identical to the scalar loop.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.reset(k, n);
        for pb in (0..k).step_by(BLOCK_ROWS) {
            let p_end = (pb + BLOCK_ROWS).min(k);
            for i in 0..m {
                let a_row = &self.data[i * k + pb..i * k + p_end];
                let b_row = &other.data[i * n..(i + 1) * n];
                for (off, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let p = pb + off;
                    let out_row = &mut out.data[p * n..(p + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        }
    }

    /// `self @ other^T` without materializing the transpose
    /// (`m x k` times `n x k`^T -> `m x n`); used for input gradients.
    #[must_use]
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_t_into(other, &mut out);
        out
    }

    /// `self @ other^T` into `out`, reusing `out`'s allocation.
    ///
    /// Blocked over output columns so a panel of `other` rows stays
    /// cache-resident across the row sweep; each output element is one
    /// contiguous dot product in ascending reduction order, bit-identical
    /// to the scalar loop.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        out.reset(m, n);
        for jb in (0..n).step_by(BLOCK_ROWS) {
            let j_end = (jb + BLOCK_ROWS).min(n);
            for i in 0..m {
                let a_row = &self.data[i * k..(i + 1) * k];
                let out_row = &mut out.data[i * n + jb..i * n + j_end];
                for (o, j) in out_row.iter_mut().zip(jb..j_end) {
                    let b_row = &other.data[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        }
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum with `other`. Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Adds `row` (a `1 x cols` vector) to every row; used for biases.
    pub fn add_row_in_place(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.data[r * self.cols..(r + 1) * self.cols].iter_mut().zip(row) {
                *v += b;
            }
        }
    }

    /// Element-wise map.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Element-wise map into `out`, reusing `out`'s allocation.
    pub fn map_into(&self, f: impl Fn(f64) -> f64, out: &mut Matrix) {
        out.reset(self.rows, self.cols);
        for (o, &v) in out.data.iter_mut().zip(&self.data) {
            *o = f(v);
        }
    }

    /// Element-wise product (Hadamard). Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Column sums as a `1 x cols` vector; used for bias gradients.
    #[must_use]
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(&self.data[r * self.cols..(r + 1) * self.cols]) {
                *s += v;
            }
        }
        sums
    }

    /// Horizontal concatenation `[self | other]`. Panics unless row counts
    /// match.
    #[must_use]
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.hconcat_into(other, &mut out);
        out
    }

    /// Horizontal concatenation `[self | other]` into `out`, reusing
    /// `out`'s allocation. Panics unless row counts match.
    pub fn hconcat_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "hconcat row mismatch");
        let cols = self.cols + other.cols;
        out.reset(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
    }

    /// Splits columns at `at` into `(left, right)` output buffers, reusing
    /// their allocations. Panics if `at > cols`.
    pub fn hsplit_into(&self, at: usize, left: &mut Matrix, right: &mut Matrix) {
        assert!(at <= self.cols, "split point beyond columns");
        left.reset(self.rows, at);
        right.reset(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
    }

    /// Splits columns at `at`: returns (`[.., :at]`, `[.., at:]`).
    /// Panics if `at > cols`.
    #[must_use]
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        let mut left = Matrix::default();
        let mut right = Matrix::default();
        self.hsplit_into(at, &mut left, &mut right);
        (left, right)
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(rows: usize, cols: usize, vals: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn construction_and_accessors() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.shape(), (2, 2));
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        let mut b = a.clone();
        b.set(0, 0, 9.0);
        assert_eq!(b.get(0, 0), 9.0);
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let eye = m(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(f64::from).collect::<Vec<_>>());
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(f64::from).collect::<Vec<_>>());
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_and_hadamard() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b), m(1, 3, &[11.0, 22.0, 33.0]));
        assert_eq!(a.hadamard(&b), m(1, 3, &[10.0, 40.0, 90.0]));
    }

    #[test]
    fn add_row_in_place_broadcasts() {
        let mut a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        a.add_row_in_place(&[10.0, 20.0]);
        assert_eq!(a, m(2, 2, &[11.0, 22.0, 13.0, 24.0]));
    }

    #[test]
    fn column_sums_match_manual() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.column_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn hconcat_then_hsplit_round_trips() {
        let a = m(2, 2, &[1.0, 2.0, 5.0, 6.0]);
        let b = m(2, 3, &[3.0, 4.0, 4.5, 7.0, 8.0, 8.5]);
        let joined = a.hconcat(&b);
        assert_eq!(joined.shape(), (2, 5));
        let (left, right) = joined.hsplit(2);
        assert_eq!(left, a);
        assert_eq!(right, b);
    }

    #[test]
    fn hsplit_edges() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let (l, r) = a.hsplit(0);
        assert_eq!(l.shape(), (1, 0));
        assert_eq!(r, a);
        let (l, r) = a.hsplit(3);
        assert_eq!(l, a);
        assert_eq!(r.shape(), (1, 0));
    }

    #[test]
    fn map_applies_elementwise() {
        let a = m(1, 3, &[-1.0, 0.0, 2.0]);
        assert_eq!(a.map(|v| v.max(0.0)), m(1, 3, &[0.0, 0.0, 2.0]));
    }

    #[test]
    fn norm_is_frobenius() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
    }

    /// The straightforward scalar ikj matmul the blocked kernel must match
    /// bit-for-bit (same ascending reduction order, same zero skip).
    fn scalar_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for p in 0..k {
                let av = a.get(i, p);
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.set(i, j, out.get(i, j) + av * b.get(p, j));
                }
            }
        }
        out
    }

    fn scalar_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(k, n);
        for i in 0..m {
            for p in 0..k {
                let av = a.get(i, p);
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.set(p, j, out.get(p, j) + av * b.get(i, j));
                }
            }
        }
        out
    }

    fn scalar_matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k, n) = (a.rows(), a.cols(), b.rows());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.get(i, p) * b.get(j, p);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// A deterministic pseudo-random matrix with a sprinkling of exact
    /// zeros, so the zero-skip path is exercised.
    fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let bits = next();
                let v = if bits % 7 == 0 {
                    0.0
                } else {
                    ((bits >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
                };
                out.set(r, c, v);
            }
        }
        out
    }

    #[test]
    fn blocked_kernels_match_scalar_across_block_boundaries() {
        // Shapes straddle the 32/64 block edges: exact multiples, one-off
        // ragged tails, and degenerate single-row/column cases.
        let shapes =
            [(1, 1, 1), (32, 64, 32), (33, 65, 31), (5, 130, 3), (64, 64, 64), (70, 1, 70)];
        for &(m, k, n) in &shapes {
            let a = filled(m, k, (m * 1000 + k) as u64);
            let b = filled(k, n, (k * 1000 + n) as u64);
            assert_eq!(a.matmul(&b), scalar_matmul(&a, &b), "matmul {m}x{k}x{n}");
            let bt = filled(m, n, (m + n) as u64);
            assert_eq!(a.t_matmul(&bt), scalar_t_matmul(&a, &bt), "t_matmul {m}x{k}x{n}");
            let bn = filled(n, k, (n * 31 + k) as u64);
            assert_eq!(a.matmul_t(&bn), scalar_matmul_t(&a, &bn), "matmul_t {m}x{k}x{n}");
        }
    }

    #[test]
    fn into_kernels_reuse_dirty_buffers() {
        let a = filled(9, 40, 7);
        let b = filled(40, 11, 8);
        let mut out = filled(70, 3, 9); // wrong shape, nonzero garbage
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        a.t_matmul_into(&filled(9, 11, 10), &mut out);
        assert_eq!(out, a.t_matmul(&filled(9, 11, 10)));
        a.matmul_t_into(&filled(5, 40, 11), &mut out);
        assert_eq!(out, a.matmul_t(&filled(5, 40, 11)));
    }

    #[test]
    fn reset_and_copy_from_reuse_allocations() {
        let mut m = Matrix::zeros(4, 4);
        m.set(0, 0, 3.0);
        m.reset(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        let src = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.copy_from(&src);
        assert_eq!(m, src);
    }

    #[test]
    fn elementwise_into_variants_match_owned() {
        let a = filled(3, 5, 21);
        let b = filled(3, 4, 22);
        let mut out = Matrix::default();
        a.map_into(|v| v.max(0.0), &mut out);
        assert_eq!(out, a.map(|v| v.max(0.0)));
        a.hconcat_into(&b, &mut out);
        assert_eq!(out, a.hconcat(&b));
        let (mut l, mut r) = (Matrix::default(), Matrix::default());
        out.hsplit_into(5, &mut l, &mut r);
        assert_eq!((l, r), (a, b));
    }

    proptest! {
        #[test]
        fn blocked_matmul_bit_identical_to_scalar(
            m in 1usize..40, k in 1usize..80, n in 1usize..40, seed in 0u64..1000,
        ) {
            let a = filled(m, k, seed);
            let b = filled(k, n, seed.wrapping_add(1));
            prop_assert_eq!(a.matmul(&b), scalar_matmul(&a, &b));
        }

        #[test]
        fn blocked_t_matmul_bit_identical_to_scalar(
            m in 1usize..40, k in 1usize..80, n in 1usize..40, seed in 0u64..1000,
        ) {
            let a = filled(m, k, seed);
            let b = filled(m, n, seed.wrapping_add(2));
            prop_assert_eq!(a.t_matmul(&b), scalar_t_matmul(&a, &b));
        }

        #[test]
        fn blocked_matmul_t_bit_identical_to_scalar(
            m in 1usize..40, k in 1usize..80, n in 1usize..40, seed in 0u64..1000,
        ) {
            let a = filled(m, k, seed);
            let b = filled(n, k, seed.wrapping_add(3));
            prop_assert_eq!(a.matmul_t(&b), scalar_matmul_t(&a, &b));
        }

        #[test]
        fn matmul_associates_with_vector(
            a_vals in proptest::collection::vec(-3.0f64..3.0, 6),
            b_vals in proptest::collection::vec(-3.0f64..3.0, 6),
            v_vals in proptest::collection::vec(-3.0f64..3.0, 2),
        ) {
            // (A B) v == A (B v) for 2x3, 3x2, 2x1.
            let a = m(2, 3, &a_vals);
            let b = m(3, 2, &b_vals);
            let v = m(2, 1, &v_vals);
            let left = a.matmul(&b).matmul(&v);
            let right = a.matmul(&b.matmul(&v));
            for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }

        #[test]
        fn matmul_distributes_over_add(
            a_vals in proptest::collection::vec(-3.0f64..3.0, 4),
            b_vals in proptest::collection::vec(-3.0f64..3.0, 4),
            c_vals in proptest::collection::vec(-3.0f64..3.0, 4),
        ) {
            let a = m(2, 2, &a_vals);
            let b = m(2, 2, &b_vals);
            let c = m(2, 2, &c_vals);
            let left = a.matmul(&b.add(&c));
            let right = a.matmul(&b).add(&a.matmul(&c));
            for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }
    }
}
