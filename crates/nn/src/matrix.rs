//! A small row-major `f64` matrix.
//!
//! Scoped to what the layers need: matmul (plain ikj loop order, which the
//! compiler vectorizes well at these sizes), transpose-free variants for the
//! backward passes, and element-wise helpers. Networks in this system are
//! hundreds of units wide at most, so a hand-rolled kernel comfortably beats
//! the overhead of pulling in a BLAS.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a flat row-major buffer. Panics on length mismatch.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds from nested rows. Panics if rows are ragged.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Matrix {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in &rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: n_rows, cols: n_cols, data }
    }

    /// A `1 x n` row vector.
    #[must_use]
    pub fn row_vector(values: &[f64]) -> Matrix {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor. Panics when out of bounds (debug-friendly; hot
    /// paths use row slices instead).
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element setter. Panics when out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Row `r` as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` (`m x k` times `k x n`).
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T @ other` without materializing the transpose
    /// (`m x k`^T times `m x n` -> `k x n`); used for weight gradients.
    #[must_use]
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(k, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let b_row = &other.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T` without materializing the transpose
    /// (`m x k` times `n x k`^T -> `m x n`); used for input gradients.
    #[must_use]
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum with `other`. Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Adds `row` (a `1 x cols` vector) to every row; used for biases.
    pub fn add_row_in_place(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.data[r * self.cols..(r + 1) * self.cols].iter_mut().zip(row) {
                *v += b;
            }
        }
    }

    /// Element-wise map.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Element-wise product (Hadamard). Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Column sums as a `1 x cols` vector; used for bias gradients.
    #[must_use]
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(&self.data[r * self.cols..(r + 1) * self.cols]) {
                *s += v;
            }
        }
        sums
    }

    /// Horizontal concatenation `[self | other]`. Panics unless row counts
    /// match.
    #[must_use]
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix { rows: self.rows, cols, data }
    }

    /// Splits columns at `at`: returns (`[.., :at]`, `[.., at:]`).
    /// Panics if `at > cols`.
    #[must_use]
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols, "split point beyond columns");
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(rows: usize, cols: usize, vals: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn construction_and_accessors() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.shape(), (2, 2));
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        let mut b = a.clone();
        b.set(0, 0, 9.0);
        assert_eq!(b.get(0, 0), 9.0);
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let eye = m(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(f64::from).collect::<Vec<_>>());
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(f64::from).collect::<Vec<_>>());
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_and_hadamard() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b), m(1, 3, &[11.0, 22.0, 33.0]));
        assert_eq!(a.hadamard(&b), m(1, 3, &[10.0, 40.0, 90.0]));
    }

    #[test]
    fn add_row_in_place_broadcasts() {
        let mut a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        a.add_row_in_place(&[10.0, 20.0]);
        assert_eq!(a, m(2, 2, &[11.0, 22.0, 13.0, 24.0]));
    }

    #[test]
    fn column_sums_match_manual() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.column_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn hconcat_then_hsplit_round_trips() {
        let a = m(2, 2, &[1.0, 2.0, 5.0, 6.0]);
        let b = m(2, 3, &[3.0, 4.0, 4.5, 7.0, 8.0, 8.5]);
        let joined = a.hconcat(&b);
        assert_eq!(joined.shape(), (2, 5));
        let (left, right) = joined.hsplit(2);
        assert_eq!(left, a);
        assert_eq!(right, b);
    }

    #[test]
    fn hsplit_edges() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let (l, r) = a.hsplit(0);
        assert_eq!(l.shape(), (1, 0));
        assert_eq!(r, a);
        let (l, r) = a.hsplit(3);
        assert_eq!(l, a);
        assert_eq!(r.shape(), (1, 0));
    }

    #[test]
    fn map_applies_elementwise() {
        let a = m(1, 3, &[-1.0, 0.0, 2.0]);
        assert_eq!(a.map(|v| v.max(0.0)), m(1, 3, &[0.0, 0.0, 2.0]));
    }

    #[test]
    fn norm_is_frobenius() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
    }

    proptest! {
        #[test]
        fn matmul_associates_with_vector(
            a_vals in proptest::collection::vec(-3.0f64..3.0, 6),
            b_vals in proptest::collection::vec(-3.0f64..3.0, 6),
            v_vals in proptest::collection::vec(-3.0f64..3.0, 2),
        ) {
            // (A B) v == A (B v) for 2x3, 3x2, 2x1.
            let a = m(2, 3, &a_vals);
            let b = m(3, 2, &b_vals);
            let v = m(2, 1, &v_vals);
            let left = a.matmul(&b).matmul(&v);
            let right = a.matmul(&b.matmul(&v));
            for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }

        #[test]
        fn matmul_distributes_over_add(
            a_vals in proptest::collection::vec(-3.0f64..3.0, 4),
            b_vals in proptest::collection::vec(-3.0f64..3.0, 4),
            c_vals in proptest::collection::vec(-3.0f64..3.0, 4),
        ) {
            let a = m(2, 2, &a_vals);
            let b = m(2, 2, &b_vals);
            let c = m(2, 2, &c_vals);
            let left = a.matmul(&b.add(&c));
            let right = a.matmul(&b).add(&a.matmul(&c));
            for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }
    }
}
