//! Sequential network container.

use crate::layer::Layer;
use crate::matrix::Matrix;

/// A sequential stack of layers with flat parameter/gradient access.
///
/// Flat vectors are the currency of the A3C parameter store: workers pull
/// `param_vector()`-shaped snapshots and push `grad_vector()`-shaped
/// updates.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Builds a network from layers. Empty networks are identities.
    #[must_use]
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Network {
        Network { layers }
    }

    /// Validates that the layer chain is consistent for `input_width`,
    /// returning the final output width. Panics (inside a layer) on
    /// mismatch — call this once at construction time in debug paths.
    #[must_use]
    pub fn check_widths(&self, input_width: usize) -> usize {
        self.layers.iter().fold(input_width, |w, layer| layer.output_width(w))
    }

    /// Forward pass over a batch.
    ///
    /// Thin allocating wrapper over [`Network::forward_into`]; both paths
    /// run the same layer kernels, so their outputs are bit-identical.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut scratch = ForwardScratch::default();
        self.forward_into(input, &mut scratch);
        scratch.a
    }

    /// Forward pass into caller-owned scratch, reusing its allocations; the
    /// returned reference borrows the scratch's output buffer. A scratch
    /// hoisted outside the decision loop makes repeated forwards
    /// allocation-free once the buffers reach steady-state capacity.
    pub fn forward_into<'s>(
        &mut self,
        input: &Matrix,
        scratch: &'s mut ForwardScratch,
    ) -> &'s Matrix {
        scratch.a.copy_from(input);
        let ForwardScratch { a, b } = scratch;
        for layer in &mut self.layers {
            layer.forward_into(a, b);
            std::mem::swap(a, b);
        }
        &scratch.a
    }

    /// Backward pass from the loss gradient at the output; returns the
    /// gradient at the input. Parameter gradients accumulate in the layers.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut current = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            current = layer.backward(&current);
        }
        current
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// All parameters, concatenated in layer order.
    #[must_use]
    pub fn param_vector(&self) -> Vec<f64> {
        let mut flat = Vec::with_capacity(self.param_count());
        self.param_vector_into(&mut flat);
        flat
    }

    /// Writes all parameters, concatenated in layer order, into `out`
    /// (cleared first), reusing its allocation. The optimizer's pull path.
    pub fn param_vector_into(&self, out: &mut Vec<f64>) {
        out.clear();
        for layer in &self.layers {
            out.extend(layer.params());
        }
    }

    /// Overwrites all parameters from a flat vector.
    /// Panics if `flat` is shorter than [`Network::param_count`].
    pub fn set_params(&mut self, flat: &[f64]) {
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.set_params(&flat[offset..]);
        }
        assert_eq!(offset, self.param_count(), "parameter vector length mismatch");
    }

    /// All accumulated gradients, concatenated in layer order.
    #[must_use]
    pub fn grad_vector(&self) -> Vec<f64> {
        let mut flat = Vec::with_capacity(self.param_count());
        self.grad_vector_into(&mut flat);
        flat
    }

    /// Writes all accumulated gradients, concatenated in layer order, into
    /// `out` (cleared first), reusing its allocation. The optimizer's push
    /// path.
    pub fn grad_vector_into(&self, out: &mut Vec<f64>) {
        out.clear();
        for layer in &self.layers {
            out.extend(layer.grads());
        }
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Number of layers.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Layer names in order, for debugging.
    #[must_use]
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

/// Reusable double-buffered scratch for [`Network::forward_into`].
///
/// Holds the activations ping-ponged between layers; after a forward pass
/// [`ForwardScratch::output`] is the network output. One scratch serves one
/// network at a time but may be shared across networks of any widths — the
/// buffers reshape (and grow monotonically) as needed.
#[derive(Clone, Debug, Default)]
pub struct ForwardScratch {
    a: Matrix,
    b: Matrix,
}

impl ForwardScratch {
    /// A fresh scratch with empty buffers.
    #[must_use]
    pub fn new() -> ForwardScratch {
        ForwardScratch::default()
    }

    /// The output of the most recent [`Network::forward_into`] pass.
    #[must_use]
    pub fn output(&self) -> &Matrix {
        &self.a
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("layers", &self.layer_names())
            .field("params", &self.param_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{Conv1d, ConvBranch};
    use crate::dense::Dense;
    use crate::layer::{Relu, Tanh};

    fn mlp() -> Network {
        Network::new(vec![
            Box::new(Dense::new(3, 5, 1)),
            Box::new(Relu::new()),
            Box::new(Dense::new(5, 2, 2)),
        ])
    }

    #[test]
    fn forward_shapes() {
        let mut net = mlp();
        let x = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), (2, 2));
        assert_eq!(net.check_widths(3), 2);
    }

    #[test]
    fn empty_network_is_identity() {
        let mut net = Network::new(vec![]);
        let x = Matrix::row_vector(&[1.0, 2.0]);
        assert_eq!(net.forward(&x), x);
        assert_eq!(net.backward(&x), x);
        assert_eq!(net.param_count(), 0);
        assert_eq!(net.check_widths(2), 2);
    }

    #[test]
    fn param_vector_round_trip() {
        let net = mlp();
        let flat = net.param_vector();
        assert_eq!(flat.len(), net.param_count());
        let mut net2 = Network::new(vec![
            Box::new(Dense::new(3, 5, 77)),
            Box::new(Relu::new()),
            Box::new(Dense::new(5, 2, 78)),
        ]);
        assert_ne!(net2.param_vector(), flat);
        net2.set_params(&flat);
        assert_eq!(net2.param_vector(), flat);
    }

    #[test]
    fn identical_params_give_identical_outputs() {
        let mut a = mlp();
        let mut b = Network::new(vec![
            Box::new(Dense::new(3, 5, 50)),
            Box::new(Relu::new()),
            Box::new(Dense::new(5, 2, 51)),
        ]);
        b.set_params(&a.param_vector());
        let x = Matrix::row_vector(&[0.5, -1.0, 2.0]);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut net = mlp();
        let x = Matrix::row_vector(&[1.0, -1.0, 0.5]);
        let y = net.forward(&x);
        net.backward(&y);
        let g1 = net.grad_vector();
        assert!(g1.iter().any(|&g| g != 0.0));
        let _ = net.forward(&x);
        net.backward(&y);
        let g2 = net.grad_vector();
        // Accumulation doubles the gradient for identical passes.
        for (a, b) in g1.iter().zip(&g2) {
            assert!((2.0 * a - b).abs() < 1e-9);
        }
        net.zero_grads();
        assert!(net.grad_vector().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn end_to_end_finite_difference() {
        // Full-network gradient check with conv branch + dense trunk:
        // exactly the paper's topology in miniature.
        let conv = Conv1d::new(1, 6, 2, 3, 1, 9);
        let mut net = Network::new(vec![
            Box::new(ConvBranch::new(conv, 2)),
            Box::new(Tanh::new()),
            Box::new(Dense::new(2 * 4 + 2, 4, 10)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 3, 11)),
        ]);
        let x = Matrix::row_vector(&[0.2, -0.3, 0.5, 0.1, -0.6, 0.4, 1.0, -0.5]);
        assert_eq!(net.check_widths(8), 3);

        let y = net.forward(&x);
        net.backward(&y); // L = 0.5||y||^2
        let analytic = net.grad_vector();

        let eps = 1e-6;
        let base = net.param_vector();
        let loss_at = |net: &mut Network, params: &[f64], x: &Matrix| -> f64 {
            net.set_params(params);
            let y = net.forward(x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f64>()
        };
        // Check a spread of parameters (every 7th) to keep the test fast.
        for i in (0..base.len()).step_by(7) {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let fd = (loss_at(&mut net, &plus, &x) - loss_at(&mut net, &minus, &x)) / (2.0 * eps);
            assert!(
                (analytic[i] - fd).abs() < 1e-5,
                "param {i}: analytic {} vs fd {fd}",
                analytic[i]
            );
        }
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        // Train the MLP to map a fixed input to a fixed target; loss must
        // drop monotonically-ish under plain SGD.
        let mut net = mlp();
        let x = Matrix::row_vector(&[0.5, -0.2, 0.8]);
        let target = [1.0, -1.0];
        let loss_of = |y: &Matrix| -> f64 {
            y.as_slice().iter().zip(&target).map(|(a, b)| 0.5 * (a - b) * (a - b)).sum()
        };
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let y = net.forward(&x);
            last = loss_of(&y);
            first.get_or_insert(last);
            let grad: Vec<f64> = y.as_slice().iter().zip(&target).map(|(a, b)| a - b).collect();
            net.zero_grads();
            net.backward(&Matrix::row_vector(&grad));
            let g = net.grad_vector();
            let mut p = net.param_vector();
            for (pi, gi) in p.iter_mut().zip(&g) {
                *pi -= 0.05 * gi;
            }
            net.set_params(&p);
        }
        assert!(last < 0.01 * first.unwrap(), "loss {last} from {:?}", first);
    }

    #[test]
    fn forward_into_bit_identical_to_forward() {
        // The paper's conv-branch topology in miniature: every layer kind
        // exercises its forward_into override through a reused scratch.
        let conv = Conv1d::new(1, 6, 2, 3, 1, 9);
        let mut net = Network::new(vec![
            Box::new(ConvBranch::new(conv, 2)),
            Box::new(Tanh::new()),
            Box::new(Dense::new(2 * 4 + 2, 4, 10)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 3, 11)),
        ]);
        let mut scratch = ForwardScratch::new();
        for trial in 0..3 {
            let vals: Vec<f64> =
                (0..8).map(|i| f64::from(i - 3) * 0.3 + f64::from(trial)).collect();
            let x = Matrix::from_rows(vec![vals.clone(), vals.iter().map(|v| -v).collect()]);
            let owned = net.forward(&x);
            let into = net.forward_into(&x, &mut scratch);
            assert_eq!(into, &owned, "trial {trial}");
            assert_eq!(scratch.output(), &owned);
        }
    }

    #[test]
    fn param_and_grad_vector_into_match_owned() {
        let mut net = mlp();
        let x = Matrix::row_vector(&[1.0, -1.0, 0.5]);
        let y = net.forward(&x);
        net.backward(&y);
        let mut buf = vec![99.0; 3]; // dirty, wrong-length buffer
        net.param_vector_into(&mut buf);
        assert_eq!(buf, net.param_vector());
        net.grad_vector_into(&mut buf);
        assert_eq!(buf, net.grad_vector());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn check_widths_rejects_bad_chain() {
        let net = Network::new(vec![
            Box::new(Dense::new(3, 5, 1)),
            Box::new(Dense::new(6, 2, 2)), // 5 != 6
        ]);
        let _ = net.check_widths(3);
    }

    #[test]
    fn debug_format_lists_layers() {
        let net = mlp();
        let s = format!("{net:?}");
        assert!(s.contains("dense"));
        assert!(s.contains("relu"));
    }
}
