//! Stateless operations: softmax, losses, and the actor's policy-gradient
//! loss (Eq. 11 of the paper: `∇ log π(s, a) · A(s, a)`, plus the usual
//! entropy bonus that keeps exploration alive).

/// Numerically stable softmax over a logit vector.
#[must_use]
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Numerically stable log-softmax.
#[must_use]
pub fn log_softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = logits.iter().map(|&l| (l - max).exp()).sum::<f64>().ln() + max;
    logits.iter().map(|&l| l - log_sum).collect()
}

/// Mean-squared-error loss `mean((pred - target)^2)`.
///
/// Panics on length mismatch.
#[must_use]
pub fn mse_loss(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mse length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(target).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / pred.len() as f64
}

/// Gradient of [`mse_loss`] w.r.t. `pred`: `2 (pred - target) / n`.
#[must_use]
pub fn mse_grad(pred: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(pred.len(), target.len(), "mse length mismatch");
    let n = pred.len().max(1) as f64;
    pred.iter().zip(target).map(|(p, t)| 2.0 * (p - t) / n).collect()
}

/// Result of [`policy_gradient_loss`].
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyGrad {
    /// Scalar loss value
    /// `-(log π(a) · A) - entropy_coeff · H(π)` (minimized).
    pub loss: f64,
    /// Gradient of the loss w.r.t. the *logits*.
    pub grad_logits: Vec<f64>,
    /// Policy entropy `H(π)`, for monitoring exploration collapse.
    pub entropy: f64,
}

/// Advantage-weighted policy-gradient loss on raw logits.
///
/// For `L = -A·log softmax(logits)[action] - β·H(softmax(logits))`, the
/// gradient w.r.t. logit `i` is
/// `A·(π_i - 1[i = action]) + β·Σ_j π_j (log π_j)(1[i=j] - π_i)`
/// simplified to the standard closed forms below. Minimizing `L` ascends the
/// paper's objective `J(η)` (Eq. 11–12).
///
/// Panics if `action` is out of range or logits are empty.
#[must_use]
pub fn policy_gradient_loss(
    logits: &[f64],
    action: usize,
    advantage: f64,
    entropy_coeff: f64,
) -> PolicyGrad {
    assert!(!logits.is_empty(), "empty logits");
    assert!(action < logits.len(), "action index out of range");
    let probs = softmax(logits);
    let log_probs = log_softmax(logits);

    let entropy: f64 = -probs.iter().zip(&log_probs).map(|(p, lp)| p * lp).sum::<f64>();
    let loss = -advantage * log_probs[action] - entropy_coeff * entropy;

    // d(-A log p_a)/d logit_i = A (p_i - 1[i==a])
    // dH/d logit_i = -p_i (log p_i + H)  =>  d(-βH)/d logit_i = β p_i (log p_i + H)
    let grad_logits: Vec<f64> = probs
        .iter()
        .zip(&log_probs)
        .enumerate()
        .map(|(i, (&p, &lp))| {
            let pg = advantage * (p - if i == action { 1.0 } else { 0.0 });
            let ent = entropy_coeff * p * (lp + entropy);
            pg + ent
        })
        .collect();

    PolicyGrad { loss, grad_logits, entropy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let p = softmax(&[-1e9, 0.0, 1e9]);
        assert!((p[2] - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = [0.5, -1.0, 2.0];
        let ls = log_softmax(&logits);
        let p = softmax(&logits);
        for (l, pp) in ls.iter().zip(&p) {
            assert!((l - pp.ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn mse_known_values() {
        assert_eq!(mse_loss(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse_loss(&[], &[]), 0.0);
        assert_eq!(mse_grad(&[3.0], &[1.0]), vec![4.0]);
    }

    #[test]
    fn mse_grad_finite_difference() {
        let pred = [0.5, -1.0, 2.0];
        let target = [1.0, 0.0, 2.0];
        let g = mse_grad(&pred, &target);
        let eps = 1e-6;
        for i in 0..3 {
            let mut plus = pred;
            plus[i] += eps;
            let mut minus = pred;
            minus[i] -= eps;
            let fd = (mse_loss(&plus, &target) - mse_loss(&minus, &target)) / (2.0 * eps);
            assert!((g[i] - fd).abs() < 1e-6, "dim {i}");
        }
    }

    #[test]
    fn policy_grad_pushes_toward_advantageous_action() {
        let logits = [0.0, 0.0, 0.0];
        let pg = policy_gradient_loss(&logits, 1, 1.0, 0.0);
        // Positive advantage: gradient descent on logits should RAISE the
        // chosen action's logit (negative gradient) and lower the others.
        assert!(pg.grad_logits[1] < 0.0);
        assert!(pg.grad_logits[0] > 0.0 && pg.grad_logits[2] > 0.0);
        // Negative advantage flips the direction.
        let pg_neg = policy_gradient_loss(&logits, 1, -1.0, 0.0);
        assert!(pg_neg.grad_logits[1] > 0.0);
    }

    #[test]
    fn policy_grad_sums_to_zero() {
        // Softmax gradients live on the simplex tangent: components sum to 0.
        let pg = policy_gradient_loss(&[0.3, -0.7, 1.2], 0, 2.5, 0.01);
        let sum: f64 = pg.grad_logits.iter().sum();
        assert!(sum.abs() < 1e-12, "sum {sum}");
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let pg = policy_gradient_loss(&[0.0, 0.0, 0.0], 0, 0.0, 1.0);
        assert!((pg.entropy - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_bonus_flattens_peaked_policies() {
        // With only the entropy term active, descent should flatten the
        // distribution: gradient positive on the peaked logit.
        let pg = policy_gradient_loss(&[5.0, 0.0, 0.0], 0, 0.0, 1.0);
        assert!(pg.grad_logits[0] > 0.0, "grad {:?}", pg.grad_logits);
        assert!(pg.grad_logits[1] < 0.0);
    }

    #[test]
    fn policy_grad_finite_difference() {
        let logits = [0.4, -0.2, 0.9, 0.0];
        let (action, advantage, beta) = (2usize, 1.7, 0.05);
        let pg = policy_gradient_loss(&logits, action, advantage, beta);
        let eps = 1e-6;
        for i in 0..logits.len() {
            let mut plus = logits;
            plus[i] += eps;
            let mut minus = logits;
            minus[i] -= eps;
            let lp = policy_gradient_loss(&plus, action, advantage, beta).loss;
            let lm = policy_gradient_loss(&minus, action, advantage, beta).loss;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (pg.grad_logits[i] - fd).abs() < 1e-6,
                "logit {i}: analytic {} vs fd {fd}",
                pg.grad_logits[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_action_panics() {
        let _ = policy_gradient_loss(&[0.0, 0.0], 5, 1.0, 0.0);
    }

    proptest! {
        #[test]
        fn softmax_is_a_distribution(
            logits in proptest::collection::vec(-20.0f64..20.0, 1..10),
        ) {
            let p = softmax(&logits);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn entropy_is_bounded(
            logits in proptest::collection::vec(-10.0f64..10.0, 2..8),
        ) {
            let pg = policy_gradient_loss(&logits, 0, 0.0, 1.0);
            prop_assert!(pg.entropy >= -1e-12);
            prop_assert!(pg.entropy <= (logits.len() as f64).ln() + 1e-9);
        }

        #[test]
        fn policy_grad_components_sum_to_zero(
            logits in proptest::collection::vec(-5.0f64..5.0, 2..6),
            advantage in -3.0f64..3.0,
            beta in 0.0f64..0.2,
        ) {
            let pg = policy_gradient_loss(&logits, 0, advantage, beta);
            prop_assert!(pg.grad_logits.iter().sum::<f64>().abs() < 1e-9);
        }
    }
}
