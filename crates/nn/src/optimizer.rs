//! First-order optimizers over flat parameter vectors.
//!
//! Operating on flat vectors (rather than per-layer state) keeps the A3C
//! parameter store simple: the shared store owns one optimizer whose state
//! vectors are indexed identically to the shared parameters, no matter which
//! worker produced the gradient.

use serde::{Deserialize, Serialize};

/// A first-order optimizer: consumes a gradient, updates parameters in
/// place.
pub trait Optimizer: Send {
    /// Applies one update step. `params` and `grads` must have equal
    /// lengths, constant across calls.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// The configured learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (used by the Fig. 9 sweep).
    fn set_learning_rate(&mut self, lr: f64);

    /// Resets internal state (momentum/moment buffers).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`. Panics unless `lr > 0`.
    #[must_use]
    pub fn new(lr: f64) -> Sgd {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        for (p, g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn reset(&mut self) {}
}

/// SGD with classical momentum.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Momentum {
    lr: f64,
    beta: f64,
    velocity: Vec<f64>,
}

impl Momentum {
    /// Creates momentum SGD. Panics unless `lr > 0` and `0 <= beta < 1`.
    #[must_use]
    pub fn new(lr: f64, beta: f64) -> Momentum {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta), "beta must be in [0, 1)");
        Momentum { lr, beta, velocity: Vec::new() }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.beta * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates Adam with the standard betas (0.9, 0.999).
    #[must_use]
    pub fn new(lr: f64) -> Adam {
        Adam::with_betas(lr, 0.9, 0.999)
    }

    /// Creates Adam with explicit betas. Panics on invalid hyperparameters.
    #[must_use]
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Adam {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        Adam { lr, beta1, beta2, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

/// Clips a gradient vector to a maximum L2 norm in place; returns the
/// original norm. Standard A3C stabilization.
pub fn clip_grad_norm(grads: &mut [f64], max_norm: f64) -> f64 {
    let norm = grads.iter().map(|g| g * g).sum::<f64>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 with gradient 2(x - 3).
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut params = vec![0.0];
        for _ in 0..steps {
            let grads = vec![2.0 * (params[0] - 3.0)];
            opt.step(&mut params, &grads);
        }
        params[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = run_quadratic(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut opt = Momentum::new(0.05, 0.9);
        let x = run_quadratic(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = run_quadratic(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_step_is_exact() {
        let mut opt = Sgd::new(0.5);
        let mut p = vec![1.0, 2.0];
        opt.step(&mut p, &[2.0, -4.0]);
        assert_eq!(p, vec![0.0, 4.0]);
    }

    #[test]
    fn learning_rate_setter() {
        {
            let opt = &mut Sgd::new(0.1) as &mut dyn Optimizer;
            opt.set_learning_rate(0.25);
            assert_eq!(opt.learning_rate(), 0.25);
        }
        let mut adam = Adam::new(0.1);
        adam.set_learning_rate(0.001);
        assert_eq!(adam.learning_rate(), 0.001);
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        let mut opt = Momentum::new(0.1, 0.9);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]);
        let first_step = -p[0];
        let before = p[0];
        opt.step(&mut p, &[1.0]);
        let second_step = before - p[0];
        assert!(second_step > first_step, "{second_step} <= {first_step}");
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]);
        opt.reset();
        let mut q = vec![0.0];
        opt.step(&mut q, &[1.0]);
        // Fresh state: identical first step.
        assert_eq!(p, q);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ~lr regardless of
        // gradient magnitude.
        for &g in &[1e-3, 1.0, 1e3] {
            let mut opt = Adam::new(0.01);
            let mut p = vec![0.0];
            opt.step(&mut p, &[g]);
            assert!((p[0] + 0.01).abs() < 1e-6, "g={g}, p={}", p[0]);
        }
    }

    #[test]
    fn clip_grad_norm_caps_and_reports() {
        let mut g = vec![3.0, 4.0];
        let norm = clip_grad_norm(&mut g, 1.0);
        assert_eq!(norm, 5.0);
        let new_norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((g[1] / g[0] - 4.0 / 3.0).abs() < 1e-12);
        // Under the cap: untouched.
        let mut small = vec![0.1, 0.1];
        let n = clip_grad_norm(&mut small, 1.0);
        assert!(n < 1.0);
        assert_eq!(small, vec![0.1, 0.1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0, 2.0]);
    }
}
