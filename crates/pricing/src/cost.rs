//! The paper's total-cost model (Eqs. 5–9).
//!
//! `C(s_t, a_t) = Cs + Cc + Cr + Cw` — storage, tier-change, read, and write
//! cost of one file over one charging day. [`CostModel`] evaluates the model
//! against a [`PricingPolicy`]; [`CostBreakdown`] exposes the four
//! components so experiments can attribute savings.

use crate::money::Money;
use crate::policy::PricingPolicy;
use crate::tier::Tier;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// One file-day of billable activity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FileDay {
    /// File size in GB (`D_{d_i}`).
    /// xtask-unit: GB
    pub size_gb: f64,
    /// Read operations this day (`F_r^t`).
    /// xtask-unit: ops
    pub reads: u64,
    /// Write operations this day (`F_w^t`).
    /// xtask-unit: ops
    pub writes: u64,
    /// Tier the file occupies during the day.
    pub tier: Tier,
    /// `Some(previous)` when the file was moved into `tier` at the start of
    /// this day (the paper's `Θ = 1` case in Eq. 9); `None` otherwise.
    pub changed_from: Option<Tier>,
}

impl FileDay {
    /// Convenience constructor for a day without a tier change.
    #[must_use]
    pub fn steady(size_gb: f64, reads: u64, writes: u64, tier: Tier) -> Self {
        FileDay { size_gb, reads, writes, tier, changed_from: None }
    }
}

/// The four cost components of Eq. 5.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Storage cost `Cs` (Eq. 6).
    /// xtask-unit: $
    pub storage: Money,
    /// Tier-change cost `Cc` (Eq. 9).
    /// xtask-unit: $
    pub change: Money,
    /// Read cost `Cr` (Eq. 7).
    /// xtask-unit: $
    pub read: Money,
    /// Write cost `Cw` (Eq. 8).
    /// xtask-unit: $
    pub write: Money,
}

impl CostBreakdown {
    /// `Cs + Cc + Cr + Cw` (Eq. 5).
    #[must_use]
    pub fn total(&self) -> Money {
        self.storage + self.change + self.read + self.write
    }
}

impl Add for CostBreakdown {
    type Output = CostBreakdown;
    fn add(self, rhs: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            storage: self.storage + rhs.storage,
            change: self.change + rhs.change,
            read: self.read + rhs.read,
            write: self.write + rhs.write,
        }
    }
}

impl AddAssign for CostBreakdown {
    fn add_assign(&mut self, rhs: CostBreakdown) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for CostBreakdown {
    fn sum<I: Iterator<Item = CostBreakdown>>(iter: I) -> CostBreakdown {
        iter.fold(CostBreakdown::default(), Add::add)
    }
}

/// An incrementally-accrued billing ledger: per-day component breakdowns
/// plus an exact running total, maintained one charging day at a time.
///
/// This is the online counterpart of summing a finished simulation's
/// `daily` vector: a serving loop accrues each day's [`CostBreakdown`] as
/// it closes and can snapshot/restore the ledger mid-run. Because
/// [`Money`] is integer micro-dollars, the running total always equals the
/// sum of the daily entries bit-for-bit, in any accrual order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostLedger {
    daily: Vec<CostBreakdown>,
    running: CostBreakdown,
}

impl CostLedger {
    /// An empty ledger with no days accrued.
    #[must_use]
    pub fn new() -> CostLedger {
        CostLedger::default()
    }

    /// Closes one charging day: appends `day` and folds it into the running
    /// total.
    pub fn accrue(&mut self, day: CostBreakdown) {
        self.daily.push(day);
        self.running += day;
    }

    /// Number of days accrued so far.
    #[must_use]
    pub fn days(&self) -> usize {
        self.daily.len()
    }

    /// The per-day breakdowns accrued so far, oldest first.
    #[must_use]
    pub fn daily(&self) -> &[CostBreakdown] {
        &self.daily
    }

    /// The running component totals across every accrued day.
    #[must_use]
    pub fn running(&self) -> CostBreakdown {
        self.running
    }

    /// Total money accrued across every day and component.
    #[must_use]
    pub fn total(&self) -> Money {
        self.running.total()
    }

    /// Consumes the ledger into its per-day breakdown vector (the shape a
    /// finished simulation reports).
    #[must_use]
    pub fn into_daily(self) -> Vec<CostBreakdown> {
        self.daily
    }
}

/// Evaluates the paper's cost model against a pricing policy.
#[derive(Clone, Debug)]
pub struct CostModel {
    policy: PricingPolicy,
}

impl CostModel {
    /// Creates a cost model over `policy`.
    #[must_use]
    pub fn new(policy: PricingPolicy) -> Self {
        CostModel { policy }
    }

    /// The underlying pricing policy.
    #[must_use]
    pub fn policy(&self) -> &PricingPolicy {
        &self.policy
    }

    /// Full component breakdown for one file-day.
    #[must_use]
    pub fn day_breakdown(&self, day: &FileDay) -> CostBreakdown {
        let prices = self.policy.tier(day.tier);
        let change = match day.changed_from {
            Some(from) => self.policy.change_cost(from, day.tier, day.size_gb),
            None => Money::ZERO,
        };
        CostBreakdown {
            storage: prices.storage_day(day.size_gb),
            change,
            read: prices.read_cost(day.reads, day.size_gb),
            write: prices.write_cost(day.writes, day.size_gb),
        }
    }

    /// Total cost for one file-day (Eq. 5).
    #[must_use]
    pub fn day_cost(&self, day: &FileDay) -> Money {
        self.day_breakdown(day).total()
    }

    /// Cost of keeping a file in `tier` for one day with the given activity,
    /// with no tier change. The hot inner loop of every optimizer.
    #[must_use]
    pub fn steady_day_cost(&self, size_gb: f64, reads: u64, writes: u64, tier: Tier) -> Money {
        let prices = self.policy.tier(tier);
        prices.storage_day(size_gb)
            + prices.read_cost(reads, size_gb)
            + prices.write_cost(writes, size_gb)
    }

    /// The cheapest single tier for a whole series of (reads, writes) days,
    /// never changing tier — the paper's "all hot or all cold, whichever is
    /// lower" baseline used when computing potential savings (§3.1, Fig. 3).
    ///
    /// Returns `(tier, total_cost)`. `days` yields `(reads, writes)` pairs.
    #[must_use]
    pub fn best_single_tier<I>(&self, size_gb: f64, days: I) -> (Tier, Money)
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut totals = [Money::ZERO; crate::tier::TIER_COUNT];
        for (reads, writes) in days {
            for tier in Tier::all() {
                totals[tier.index()] += self.steady_day_cost(size_gb, reads, writes, tier);
            }
        }
        Tier::all()
            .map(|t| (t, totals[t.index()]))
            .fold(None, |best: Option<(Tier, Money)>, cand| match best {
                Some(b) if b.1 <= cand.1 => Some(b),
                _ => Some(cand),
            })
            .unwrap_or((Tier::Hot, Money::ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> CostModel {
        CostModel::new(PricingPolicy::azure_blob_2020())
    }

    #[test]
    fn breakdown_total_is_component_sum() {
        let m = model();
        let day = FileDay {
            size_gb: 0.5,
            reads: 1234,
            writes: 56,
            tier: Tier::Cool,
            changed_from: Some(Tier::Hot),
        };
        let b = m.day_breakdown(&day);
        assert_eq!(b.total(), b.storage + b.change + b.read + b.write);
        assert_eq!(m.day_cost(&day), b.total());
        assert!(b.change > Money::ZERO);
    }

    #[test]
    fn steady_day_has_no_change_cost() {
        let m = model();
        let day = FileDay::steady(0.1, 100, 10, Tier::Hot);
        let b = m.day_breakdown(&day);
        assert_eq!(b.change, Money::ZERO);
        assert_eq!(m.steady_day_cost(0.1, 100, 10, Tier::Hot), b.total());
    }

    #[test]
    fn hot_is_cheaper_for_hot_files() {
        // A heavily-read file should be cheaper in hot than cool or archive.
        let m = model();
        let reads = 50_000;
        let hot = m.steady_day_cost(0.1, reads, 0, Tier::Hot);
        let cool = m.steady_day_cost(0.1, reads, 0, Tier::Cool);
        let archive = m.steady_day_cost(0.1, reads, 0, Tier::Archive);
        assert!(hot < cool, "hot {hot} should beat cool {cool}");
        assert!(cool < archive, "cool {cool} should beat archive {archive}");
    }

    #[test]
    fn archive_is_cheaper_for_idle_files() {
        let m = model();
        let hot = m.steady_day_cost(10.0, 0, 0, Tier::Hot);
        let cool = m.steady_day_cost(10.0, 0, 0, Tier::Cool);
        let archive = m.steady_day_cost(10.0, 0, 0, Tier::Archive);
        assert!(archive < cool && cool < hot);
    }

    #[test]
    fn best_single_tier_picks_minimum() {
        let m = model();
        // Idle file: archive must win.
        let (tier, _) = m.best_single_tier(1.0, std::iter::repeat_n((0, 0), 7));
        assert_eq!(tier, Tier::Archive);
        // Busy file: hot must win.
        let (tier, _) = m.best_single_tier(0.1, std::iter::repeat_n((100_000, 0), 7));
        assert_eq!(tier, Tier::Hot);
    }

    #[test]
    fn best_single_tier_total_matches_manual_sum() {
        let m = model();
        let days = [(10u64, 1u64), (20, 2), (0, 0)];
        let (tier, total) = m.best_single_tier(0.25, days.iter().copied());
        let manual: Money = days.iter().map(|&(r, w)| m.steady_day_cost(0.25, r, w, tier)).sum();
        assert_eq!(total, manual);
    }

    #[test]
    fn zero_size_zero_activity_costs_nothing() {
        let m = model();
        for tier in Tier::all() {
            assert_eq!(m.steady_day_cost(0.0, 0, 0, tier), Money::ZERO);
        }
    }

    #[test]
    fn ledger_running_total_matches_daily_sum() {
        let m = model();
        let mut ledger = CostLedger::new();
        assert_eq!(ledger.total(), Money::ZERO);
        let days = [
            FileDay::steady(0.1, 10, 1, Tier::Hot),
            FileDay::steady(0.2, 0, 0, Tier::Archive),
            FileDay {
                size_gb: 0.5,
                reads: 9,
                writes: 2,
                tier: Tier::Cool,
                changed_from: Some(Tier::Hot),
            },
        ];
        for d in &days {
            ledger.accrue(m.day_breakdown(d));
        }
        assert_eq!(ledger.days(), 3);
        let summed: CostBreakdown = ledger.daily().iter().copied().sum();
        assert_eq!(ledger.running(), summed);
        assert_eq!(ledger.total(), summed.total());
        assert_eq!(ledger.clone().into_daily().len(), 3);
    }

    #[test]
    fn breakdown_sum_over_days() {
        let m = model();
        let days = [FileDay::steady(0.1, 10, 1, Tier::Hot), FileDay::steady(0.1, 20, 2, Tier::Hot)];
        let total: CostBreakdown = days.iter().map(|d| m.day_breakdown(d)).sum();
        assert_eq!(total.total(), m.day_cost(&days[0]) + m.day_cost(&days[1]));
    }

    proptest! {
        #[test]
        fn cost_is_nonnegative(
            size in 0.0f64..100.0,
            reads in 0u64..1_000_000,
            writes in 0u64..1_000_000,
            tier_ix in 0usize..3,
            from_ix in proptest::option::of(0usize..3),
        ) {
            let m = model();
            let day = FileDay {
                size_gb: size,
                reads,
                writes,
                tier: Tier::from_index(tier_ix).unwrap(),
                changed_from: from_ix.map(|i| Tier::from_index(i).unwrap()),
            };
            prop_assert!(m.day_cost(&day) >= Money::ZERO);
        }

        #[test]
        fn cost_is_monotone_in_activity(
            size in 0.01f64..10.0,
            reads in 0u64..100_000,
            writes in 0u64..100_000,
            extra in 1u64..10_000,
            tier_ix in 0usize..3,
        ) {
            let m = model();
            let tier = Tier::from_index(tier_ix).unwrap();
            let base = m.steady_day_cost(size, reads, writes, tier);
            prop_assert!(m.steady_day_cost(size, reads + extra, writes, tier) >= base);
            prop_assert!(m.steady_day_cost(size, reads, writes + extra, tier) >= base);
        }

        #[test]
        fn best_single_tier_beats_each_fixed_tier(
            size in 0.01f64..10.0,
            days in proptest::collection::vec((0u64..10_000, 0u64..1_000), 1..14),
        ) {
            let m = model();
            let (_, best) = m.best_single_tier(size, days.iter().copied());
            for tier in Tier::all() {
                let fixed: Money = days
                    .iter()
                    .map(|&(r, w)| m.steady_day_cost(size, r, w, tier))
                    .sum();
                prop_assert!(best <= fixed);
            }
        }

        #[test]
        fn flat_policy_makes_tiers_equivalent(
            size in 0.01f64..10.0,
            reads in 0u64..10_000,
            writes in 0u64..10_000,
        ) {
            let m = CostModel::new(PricingPolicy::flat());
            let costs: Vec<Money> = Tier::all()
                .map(|t| m.steady_day_cost(size, reads, writes, t))
                .collect();
            prop_assert!(costs.windows(2).all(|w| w[0] == w[1]));
        }
    }
}
