//! CSP storage-tier pricing model and exact cost accounting.
//!
//! This crate is the monetary substrate of the MiniCost reproduction
//! (Wang et al., ICPP 2020). It models what the paper's Section 4.2 calls the
//! CSP pricing policy: per-tier storage prices, per-operation read/write
//! prices, per-GB retrieval prices, and the one-time charge for changing a
//! file's storage tier (Eqs. 5–9 of the paper).
//!
//! Money is represented as integer micro-dollars ([`Money`]) so that ledgers
//! across millions of files and dozens of days stay exact and experiments are
//! bit-reproducible.
//!
//! # Quick example
//!
//! ```
//! use pricing::{PricingPolicy, Tier, FileDay, CostModel};
//!
//! let policy = PricingPolicy::azure_blob_2020();
//! let model = CostModel::new(policy);
//! let day = FileDay {
//!     size_gb: 0.1,
//!     reads: 1_000,
//!     writes: 10,
//!     tier: Tier::Hot,
//!     changed_from: None,
//! };
//! let cost = model.day_cost(&day);
//! assert!(cost.as_dollars() > 0.0);
//! ```

#![warn(missing_docs)]
// Library code must surface failures as values (L2 no-panic-in-libs); tests
// may unwrap freely.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Tests assert bit-exact float reproducibility on purpose.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod cost;
pub mod money;
pub mod policy;
pub mod tier;

pub use cost::{CostBreakdown, CostLedger, CostModel, FileDay};
pub use money::Money;
pub use policy::{PricingPolicy, TierPrices};
pub use tier::{Tier, TierSet, TIER_COUNT};
