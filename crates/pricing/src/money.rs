//! Exact money arithmetic in integer micro-dollars.
//!
//! Experiments aggregate per-file daily costs across hundreds of thousands of
//! files and weeks of simulated time. Using `f64` dollars would accumulate
//! rounding drift and make ledgers order-dependent (a problem for the
//! deterministic, parallel accounting in `minicost-core`). `Money` stores
//! micro-dollars in an `i64`, which covers ±9.2 trillion dollars — far beyond
//! any experiment in the paper — with exact addition.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Micro-dollars per dollar.
const MICROS: i64 = 1_000_000;

/// An exact monetary amount in integer micro-dollars.
///
/// Construction from floating-point dollar amounts rounds to the nearest
/// micro-dollar; all subsequent arithmetic is exact integer arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Money(i64);

impl Money {
    /// Zero dollars.
    /// xtask-unit: $
    pub const ZERO: Money = Money(0);

    /// Largest representable amount (used as an "infinite cost" sentinel in
    /// optimization code).
    pub const MAX: Money = Money(i64::MAX);

    /// Smallest (most negative) representable amount; the saturation floor
    /// for subtraction.
    pub const MIN: Money = Money(i64::MIN);

    /// Creates a `Money` from a dollar amount, rounding to the nearest
    /// micro-dollar (ties away from zero, like `f64::round`).
    /// xtask-unit(dollars): $
    #[must_use]
    pub fn from_dollars(dollars: f64) -> Self {
        debug_assert!(dollars.is_finite(), "money must be finite: {dollars}");
        Money((dollars * MICROS as f64).round() as i64)
    }

    /// Creates a `Money` from an exact number of micro-dollars.
    #[must_use]
    pub const fn from_micros(micros: i64) -> Self {
        Money(micros)
    }

    /// The exact number of micro-dollars.
    #[must_use]
    pub const fn micros(self) -> i64 {
        self.0
    }

    /// The amount in (approximate) floating-point dollars, for reporting.
    #[must_use]
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / MICROS as f64
    }

    /// `true` if the amount is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Dimensionless ratio `self / denom`.
    ///
    /// This is the approved way for code outside this crate to compare two
    /// amounts multiplicatively (reward normalization, cost-vs-optimal
    /// ratios): the division happens here, so callers never do raw float
    /// arithmetic on dollar values (the `money-safety` lint enforces this).
    #[must_use]
    pub fn ratio_to(self, denom: Money) -> f64 {
        self.as_dollars() / denom.as_dollars()
    }

    /// Like [`Money::ratio_to`], but clamps the denominator to at least
    /// `floor_dollars` so a zero or near-zero reference cannot produce an
    /// infinite ratio.
    #[must_use]
    pub fn ratio_with_floor(self, denom: Money, floor_dollars: f64) -> f64 {
        self.as_dollars() / denom.as_dollars().max(floor_dollars)
    }

    /// Saturating addition; useful when folding with `Money::MAX` sentinels.
    #[must_use]
    pub const fn saturating_add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }

    /// Multiplies by a non-negative scale factor, rounding to the nearest
    /// micro-dollar. Used for unit-price × quantity computations where the
    /// quantity is fractional (e.g. GB sizes).
    #[must_use]
    pub fn scale(self, factor: f64) -> Money {
        debug_assert!(factor.is_finite(), "scale factor must be finite: {factor}");
        Money((self.0 as f64 * factor).round() as i64)
    }

    /// The smaller of two amounts.
    #[must_use]
    pub fn min(self, other: Money) -> Money {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two amounts.
    #[must_use]
    pub fn max(self, other: Money) -> Money {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Absolute value.
    #[must_use]
    pub const fn abs(self) -> Money {
        Money(self.0.abs())
    }
}

// Overflow policy: `+`, `-`, and `Sum` saturate at `Money::MIN`/`Money::MAX`
// rather than wrapping or panicking. i64 micro-dollars overflow at ~$9.2e12;
// a ledger that large is already garbage, and a saturated total stays ordered
// (greater than every real cost), so cost comparisons degrade gracefully
// instead of aborting a long experiment. Exact-by-construction call sites
// that want to be explicit can keep using `saturating_add`.
impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    fn mul(self, rhs: i64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Div<i64> for Money {
    type Output = Money;
    fn div(self, rhs: i64) -> Money {
        Money(self.0 / rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Money> for Money {
    fn sum<I: Iterator<Item = &'a Money>>(iter: I) -> Money {
        iter.copied().sum()
    }
}

impl fmt::Debug for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.6}", self.as_dollars())
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.2}", self.as_dollars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dollars_round_trip() {
        let m = Money::from_dollars(1.25);
        assert_eq!(m.micros(), 1_250_000);
        assert!((m.as_dollars() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn rounding_is_nearest() {
        // 0.0000004 dollars = 0.4 micro-dollars -> rounds to 0.
        assert_eq!(Money::from_dollars(0.000_000_4).micros(), 0);
        // 0.0000006 dollars -> rounds to 1 micro-dollar.
        assert_eq!(Money::from_dollars(0.000_000_6).micros(), 1);
        // Negative values round away from zero on ties.
        assert_eq!(Money::from_dollars(-0.000_000_6).micros(), -1);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Money::from_dollars(3.50);
        let b = Money::from_dollars(1.25);
        assert_eq!((a + b).as_dollars(), 4.75);
        assert_eq!((a - b).as_dollars(), 2.25);
        assert_eq!((a * 2).as_dollars(), 7.0);
        assert_eq!((a / 2).as_dollars(), 1.75);
        assert_eq!((-a).as_dollars(), -3.5);
        assert_eq!(a.abs(), a);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = [Money::from_dollars(0.10); 10];
        let total: Money = parts.iter().sum();
        assert_eq!(total, Money::from_dollars(1.0));
    }

    #[test]
    fn min_max() {
        let a = Money::from_dollars(1.0);
        let b = Money::from_dollars(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(Money::MAX.saturating_add(Money::from_dollars(1.0)), Money::MAX);
    }

    #[test]
    fn scale_by_fraction() {
        let unit = Money::from_dollars(0.0184); // $/GB·month
                                                // 0.1 GB worth.
        assert_eq!(unit.scale(0.1), Money::from_dollars(0.00184));
        assert_eq!(unit.scale(0.0), Money::ZERO);
    }

    #[test]
    fn display_formats() {
        let m = Money::from_dollars(1234.5678);
        assert_eq!(format!("{m}"), "$1234.57");
        assert_eq!(format!("{m:?}"), "$1234.567800");
    }

    proptest! {
        #[test]
        fn addition_is_exact_and_commutative(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
            let (ma, mb) = (Money::from_micros(a), Money::from_micros(b));
            prop_assert_eq!(ma + mb, mb + ma);
            prop_assert_eq!((ma + mb).micros(), a + b);
        }

        #[test]
        fn sum_is_order_independent(mut v in proptest::collection::vec(-1_000_000i64..1_000_000, 0..64)) {
            let forward: Money = v.iter().map(|&x| Money::from_micros(x)).sum();
            v.reverse();
            let backward: Money = v.iter().map(|&x| Money::from_micros(x)).sum();
            prop_assert_eq!(forward, backward);
        }

        #[test]
        fn dollars_round_trip_within_half_micro(d in -1.0e6f64..1.0e6) {
            let m = Money::from_dollars(d);
            prop_assert!((m.as_dollars() - d).abs() <= 0.5e-6 + 1e-12);
        }

        #[test]
        fn scale_one_is_identity(micros in -1_000_000_000i64..1_000_000_000) {
            let m = Money::from_micros(micros);
            prop_assert_eq!(m.scale(1.0), m);
        }

        #[test]
        fn sum_is_invariant_under_shuffle(
            mut v in proptest::collection::vec(-1_000_000_000i64..1_000_000_000, 0..64),
            seed in 0u64..1024,
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let forward: Money = v.iter().map(|&x| Money::from_micros(x)).sum();
            v.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
            let shuffled: Money = v.iter().map(|&x| Money::from_micros(x)).sum();
            prop_assert_eq!(forward, shuffled);
        }

        #[test]
        fn addition_near_i64_max_saturates(delta in 0i64..1_000_000) {
            // Documented overflow policy: saturate, never wrap or panic.
            let near_max = Money::from_micros(i64::MAX - 500_000);
            let sum = near_max + Money::from_micros(delta);
            prop_assert!(sum >= near_max);
            prop_assert!(sum <= Money::MAX);
            let near_min = Money::from_micros(i64::MIN + 500_000);
            let diff = near_min - Money::from_micros(delta);
            prop_assert!(diff <= near_min);
            prop_assert!(diff >= Money::MIN);
        }

        #[test]
        fn ratio_matches_dollar_division(
            a in -1_000_000_000i64..1_000_000_000,
            b in 1i64..1_000_000_000,
        ) {
            let (ma, mb) = (Money::from_micros(a), Money::from_micros(b));
            let expected = ma.as_dollars() / mb.as_dollars();
            prop_assert_eq!(ma.ratio_to(mb), expected);
            prop_assert_eq!(ma.ratio_with_floor(mb, 0.0), expected);
        }
    }

    #[test]
    fn add_saturates_at_extremes() {
        assert_eq!(Money::MAX + Money::MAX, Money::MAX);
        assert_eq!(Money::MIN + Money::MIN, Money::MIN);
        assert_eq!(Money::MIN - Money::MAX, Money::MIN);
        let mut acc = Money::MAX;
        acc += Money::from_micros(1);
        assert_eq!(acc, Money::MAX);
    }

    #[test]
    fn ratio_with_floor_guards_zero_reference() {
        let m = Money::from_dollars(2.0);
        let r = m.ratio_with_floor(Money::ZERO, 1e-9);
        assert!(r.is_finite());
        assert!(r > 0.0);
        assert_eq!(m.ratio_with_floor(Money::from_dollars(4.0), 1e-9), 0.5);
    }
}
