//! CSP pricing policies.
//!
//! A [`PricingPolicy`] carries everything the paper's cost model (Eqs. 5–9)
//! needs: per-tier storage/operation/transfer unit prices and the
//! tier-change charge matrix (`utran`). The default preset,
//! [`PricingPolicy::azure_blob_2020`], encodes the Microsoft Azure Block Blob
//! prices (US West, LRS, circa January 2020) that the paper's §6.1 uses.

use crate::money::Money;
use crate::tier::{Tier, TIER_COUNT};
use serde::{Deserialize, Serialize};

/// Operations per pricing unit: CSPs quote operation prices per 10,000 ops.
/// A pure scale factor — the per-op prices below absorb the ops dimension.
/// xtask-unit: 1
pub const OPS_PER_PRICE_UNIT: f64 = 10_000.0;

/// Days per billing month used to pro-rate monthly storage prices.
/// xtask-unit: day/month
pub const DAYS_PER_MONTH: f64 = 30.0;

/// Unit prices for a single storage tier.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TierPrices {
    /// Storage price in dollars per GB per month (`up_j` in Eq. 6).
    /// xtask-unit: $/GB·month
    pub storage_gb_month: f64,
    /// Read operation price in dollars per 10,000 operations (`urf`, Eq. 7).
    /// xtask-unit: $/ops
    pub read_per_10k: f64,
    /// Write operation price in dollars per 10,000 operations (`uwf`, Eq. 8).
    /// xtask-unit: $/ops
    pub write_per_10k: f64,
    /// Data retrieval price in dollars per GB read (`urs`, Eq. 7).
    /// xtask-unit: $/GB·ops
    pub retrieval_per_gb: f64,
    /// Data write price in dollars per GB written (`uws`, Eq. 8).
    /// xtask-unit: $/GB·ops
    pub write_data_per_gb: f64,
}

impl TierPrices {
    /// Pro-rated storage price for one day, for `size_gb` gigabytes.
    #[must_use]
    pub fn storage_day(&self, size_gb: f64) -> Money {
        Money::from_dollars(self.storage_gb_month / DAYS_PER_MONTH * size_gb)
    }

    /// Cost of `ops` read operations against a file of `size_gb` GB
    /// (Eq. 7: `F_r * (urf + urs * D)`).
    #[must_use]
    pub fn read_cost(&self, ops: u64, size_gb: f64) -> Money {
        let per_op = self.read_per_10k / OPS_PER_PRICE_UNIT + self.retrieval_per_gb * size_gb;
        Money::from_dollars(ops as f64 * per_op)
    }

    /// Cost of `ops` write operations against a file of `size_gb` GB
    /// (Eq. 8: `F_w * (uwf + uws * D)`).
    #[must_use]
    pub fn write_cost(&self, ops: u64, size_gb: f64) -> Money {
        let per_op = self.write_per_10k / OPS_PER_PRICE_UNIT + self.write_data_per_gb * size_gb;
        Money::from_dollars(ops as f64 * per_op)
    }
}

/// A complete CSP pricing policy for the standard three-tier set.
///
/// `change_per_gb[from][to]` is the one-time tier-change price in dollars per
/// GB (the paper's `utran`, Eq. 9); the diagonal is zero. The paper treats
/// the change cost as a single per-GB price; real CSPs derive it from
/// retrieval + write charges, which is how the presets are built.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PricingPolicy {
    /// Human-readable policy name (e.g. `"azure-blob-2020-us-west"`).
    pub name: String,
    /// Per-tier unit prices, indexed by [`Tier::index`].
    pub tiers: [TierPrices; TIER_COUNT],
    /// Tier-change price matrix in dollars per GB, `[from][to]`.
    /// xtask-unit: $/GB
    pub change_per_gb: [[f64; TIER_COUNT]; TIER_COUNT],
    /// Flat per-change operation fee in dollars (one op billed at the
    /// destination tier's write price in real CSPs; kept explicit here).
    /// xtask-unit: $
    pub change_op_fee: f64,
}

impl PricingPolicy {
    /// Prices for one tier.
    #[must_use]
    pub fn tier(&self, tier: Tier) -> &TierPrices {
        let [hot, cool, archive] = &self.tiers;
        match tier {
            Tier::Hot => hot,
            Tier::Cool => cool,
            Tier::Archive => archive,
        }
    }

    /// One-time cost of moving a file of `size_gb` GB from `from` to `to`
    /// (Eq. 9: `utran * D`, plus the per-change operation fee).
    ///
    /// Returns [`Money::ZERO`] when `from == to`.
    #[must_use]
    pub fn change_cost(&self, from: Tier, to: Tier, size_gb: f64) -> Money {
        if from == to {
            return Money::ZERO;
        }
        let [from_hot, from_cool, from_archive] = &self.change_per_gb;
        let row = match from {
            Tier::Hot => from_hot,
            Tier::Cool => from_cool,
            Tier::Archive => from_archive,
        };
        let [to_hot, to_cool, to_archive] = row;
        let per_gb = match to {
            Tier::Hot => *to_hot,
            Tier::Cool => *to_cool,
            Tier::Archive => *to_archive,
        };
        Money::from_dollars(per_gb * size_gb + self.change_op_fee)
    }

    /// Microsoft Azure Block Blob pricing, US West, LRS, circa January 2020 —
    /// the policy the paper's experiments use (§6.1, its reference "Azure Storage Pricing Policy").
    ///
    /// Per-GB change prices follow Azure's rule: demotions are billed as
    /// writes at the destination tier; promotions as retrieval from the
    /// source tier.
    #[must_use]
    pub fn azure_blob_2020() -> Self {
        let hot = TierPrices {
            storage_gb_month: 0.0184,
            read_per_10k: 0.0044,
            write_per_10k: 0.055,
            retrieval_per_gb: 0.0,
            write_data_per_gb: 0.0,
        };
        let cool = TierPrices {
            storage_gb_month: 0.01,
            read_per_10k: 0.01,
            write_per_10k: 0.10,
            retrieval_per_gb: 0.01,
            write_data_per_gb: 0.0025,
        };
        let archive = TierPrices {
            storage_gb_month: 0.00099,
            read_per_10k: 5.50,
            write_per_10k: 0.11,
            retrieval_per_gb: 0.022,
            write_data_per_gb: 0.0,
        };
        // change_per_gb[from][to]
        let change_per_gb = [
            // from Hot: demote = destination write-data price
            [0.0, cool.write_data_per_gb, archive.write_data_per_gb],
            // from Cool: promote = cool retrieval; demote = archive write-data
            [cool.retrieval_per_gb, 0.0, archive.write_data_per_gb],
            // from Archive: promote = archive retrieval (rehydration)
            [archive.retrieval_per_gb, archive.retrieval_per_gb, 0.0],
        ];
        PricingPolicy {
            name: "azure-blob-2020-us-west".to_owned(),
            tiers: [hot, cool, archive],
            change_per_gb,
            change_op_fee: 0.10 / OPS_PER_PRICE_UNIT,
        }
    }

    /// The pricing policy the paper's evaluation implies (§6.1, Figs. 3, 7,
    /// 8): Azure's 2020 storage and per-operation prices with **negligible
    /// per-GB retrieval charges**.
    ///
    /// Why this preset exists: with Azure's literal cool-tier retrieval
    /// price ($0.01/GB) every read of a 100 MB file costs ~$0.001, making
    /// hot storage dominate all traffic levels — yet Fig. 7 of the paper
    /// shows *Cold* only ~20% above *Hot*, and Fig. 3 shows large savings
    /// from tier switching. That shape is only possible when read costs are
    /// dominated by the per-operation prices (hot $0.0044 vs cold $0.01 per
    /// 10k ops, the exact numbers the paper quotes in §1), i.e. when `urs`
    /// in Eq. 7 is negligible. This preset encodes that regime; the
    /// tier-change matrix uses Eq. 9's flat per-GB `utran` with promotions
    /// costlier than demotions (rehydration), sized so that a weekly burst
    /// repays a round trip but daily flip-flopping does not.
    #[must_use]
    pub fn paper_2020() -> Self {
        let hot = TierPrices {
            storage_gb_month: 0.0184,
            read_per_10k: 0.0044,
            write_per_10k: 0.055,
            retrieval_per_gb: 0.0,
            write_data_per_gb: 0.0,
        };
        let cool = TierPrices {
            storage_gb_month: 0.01,
            read_per_10k: 0.01,
            write_per_10k: 0.10,
            retrieval_per_gb: 0.0,
            write_data_per_gb: 0.0,
        };
        let archive = TierPrices {
            storage_gb_month: 0.00099,
            read_per_10k: 5.50,
            write_per_10k: 0.11,
            retrieval_per_gb: 0.0,
            write_data_per_gb: 0.0,
        };
        // Demotions repay within ~a day of storage savings for a 100 MB
        // file (so a myopic planner will demote idle files); promotions —
        // especially archive rehydration — are an order of magnitude
        // pricier, which is exactly what makes short-sighted demotion of a
        // weekly-bursty file a costly mistake (§3.2's motivating trap).
        let change_per_gb = [
            [0.0, 0.0001, 0.0002], // hot -> cooler
            [0.001, 0.0, 0.0002],  // cool -> hot promotion
            [0.02, 0.02, 0.0],     // archive rehydration is the costly path
        ];
        PricingPolicy {
            name: "paper-2020-op-dominated".to_owned(),
            tiers: [hot, cool, archive],
            change_per_gb,
            change_op_fee: 0.05 / OPS_PER_PRICE_UNIT,
        }
    }

    /// An AWS-S3-like policy (Standard / Standard-IA / Glacier, circa 2020),
    /// used to exercise the multi-CSP claim of §4.2.1.
    #[must_use]
    pub fn aws_s3_like() -> Self {
        let standard = TierPrices {
            storage_gb_month: 0.023,
            read_per_10k: 0.004,
            write_per_10k: 0.05,
            retrieval_per_gb: 0.0,
            write_data_per_gb: 0.0,
        };
        let ia = TierPrices {
            storage_gb_month: 0.0125,
            read_per_10k: 0.01,
            write_per_10k: 0.10,
            retrieval_per_gb: 0.01,
            write_data_per_gb: 0.0,
        };
        let glacier = TierPrices {
            storage_gb_month: 0.004,
            read_per_10k: 0.50,
            write_per_10k: 0.50,
            retrieval_per_gb: 0.03,
            write_data_per_gb: 0.0,
        };
        let change_per_gb = [
            [0.0, 0.0, 0.0],
            [ia.retrieval_per_gb, 0.0, 0.0],
            [glacier.retrieval_per_gb, glacier.retrieval_per_gb, 0.0],
        ];
        PricingPolicy {
            name: "aws-s3-like-2020".to_owned(),
            tiers: [standard, ia, glacier],
            change_per_gb,
            change_op_fee: 0.05 / OPS_PER_PRICE_UNIT,
        }
    }

    /// A degenerate policy where every tier costs the same. With this
    /// policy no assignment strategy can beat any other; used by tests to
    /// validate that optimizers report zero savings when none exist.
    #[must_use]
    pub fn flat() -> Self {
        let t = TierPrices {
            storage_gb_month: 0.01,
            read_per_10k: 0.01,
            write_per_10k: 0.01,
            retrieval_per_gb: 0.001,
            write_data_per_gb: 0.001,
        };
        PricingPolicy {
            name: "flat".to_owned(),
            tiers: [t, t, t],
            change_per_gb: [[0.0; TIER_COUNT]; TIER_COUNT],
            change_op_fee: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_matches_published_numbers() {
        let p = PricingPolicy::azure_blob_2020();
        // §1 of the paper: "$0.0044 in US West region per 10,000 reading
        // operations ... for hot files, and ... $0.01 per 10,000 data reading
        // operations ... for cold files".
        assert_eq!(p.tier(Tier::Hot).read_per_10k, 0.0044);
        assert_eq!(p.tier(Tier::Cool).read_per_10k, 0.01);
        // Storage ordering: hot most expensive, archive cheapest.
        assert!(p.tier(Tier::Hot).storage_gb_month > p.tier(Tier::Cool).storage_gb_month);
        assert!(p.tier(Tier::Cool).storage_gb_month > p.tier(Tier::Archive).storage_gb_month);
        // Ops ordering: archive reads are the most expensive by far.
        assert!(p.tier(Tier::Archive).read_per_10k > 100.0 * p.tier(Tier::Hot).read_per_10k);
    }

    #[test]
    fn paper_preset_has_midrange_breakeven() {
        // The defining property: for a 100 MB file, the hot/cool breakeven
        // sits at a moderate daily read rate (storage delta vs per-op delta),
        // so tier choice genuinely depends on traffic.
        let p = PricingPolicy::paper_2020();
        let size = 0.1; // GB
        let storage_delta =
            (p.tier(Tier::Hot).storage_gb_month - p.tier(Tier::Cool).storage_gb_month) / 30.0
                * size;
        let per_op_delta =
            (p.tier(Tier::Cool).read_per_10k - p.tier(Tier::Hot).read_per_10k) / 10_000.0;
        let breakeven = storage_delta / per_op_delta;
        assert!((10.0..200.0).contains(&breakeven), "breakeven {breakeven} reads/day");
    }

    #[test]
    fn paper_preset_burst_switching_pays_within_a_week() {
        // A weekly burst must repay a cool->hot->cool round trip: the
        // round-trip change cost for a 100 MB file is under one burst-day's
        // op saving at 1000 reads/day.
        let p = PricingPolicy::paper_2020();
        let size = 0.1;
        let round_trip =
            p.change_cost(Tier::Cool, Tier::Hot, size) + p.change_cost(Tier::Hot, Tier::Cool, size);
        let burst_saving = Money::from_dollars(
            1000.0 * (p.tier(Tier::Cool).read_per_10k - p.tier(Tier::Hot).read_per_10k) / 10_000.0,
        );
        assert!(
            round_trip < burst_saving * 2,
            "round trip {round_trip} vs 2-day burst saving {}",
            burst_saving * 2
        );
    }

    #[test]
    fn change_cost_zero_on_diagonal() {
        let p = PricingPolicy::azure_blob_2020();
        for t in Tier::all() {
            assert_eq!(p.change_cost(t, t, 123.0), Money::ZERO);
        }
    }

    #[test]
    fn change_cost_scales_with_size() {
        let p = PricingPolicy::azure_blob_2020();
        let small = p.change_cost(Tier::Archive, Tier::Hot, 1.0);
        let large = p.change_cost(Tier::Archive, Tier::Hot, 10.0);
        assert!(large > small);
        // Rehydration from archive is the most expensive promotion.
        assert!(
            p.change_cost(Tier::Archive, Tier::Hot, 1.0)
                >= p.change_cost(Tier::Cool, Tier::Hot, 1.0)
        );
    }

    #[test]
    fn read_cost_formula_matches_eq7() {
        let p = PricingPolicy::azure_blob_2020();
        // Cool tier: 10,000 reads of a 1 GB file =
        //   $0.01 (ops) + 10,000 * $0.01/GB (retrieval) = $100.01
        let cost = p.tier(Tier::Cool).read_cost(10_000, 1.0);
        assert_eq!(cost, Money::from_dollars(0.01 + 10_000.0 * 0.01));
    }

    #[test]
    fn write_cost_formula_matches_eq8() {
        let p = PricingPolicy::azure_blob_2020();
        // Cool tier: 10,000 writes of a 2 GB file =
        //   $0.10 (ops) + 10,000 * 2 * $0.0025/GB = $50.10
        let cost = p.tier(Tier::Cool).write_cost(10_000, 2.0);
        assert_eq!(cost, Money::from_dollars(0.10 + 10_000.0 * 2.0 * 0.0025));
    }

    #[test]
    fn storage_day_is_monthly_over_30() {
        let p = PricingPolicy::azure_blob_2020();
        let day = p.tier(Tier::Hot).storage_day(30.0);
        assert_eq!(day, Money::from_dollars(0.0184 * 30.0 / 30.0));
    }

    #[test]
    fn flat_policy_is_tier_invariant() {
        let p = PricingPolicy::flat();
        for a in Tier::all() {
            for b in Tier::all() {
                assert_eq!(p.tier(a).read_cost(100, 1.0), p.tier(b).read_cost(100, 1.0));
                assert_eq!(p.change_cost(a, b, 5.0), Money::ZERO);
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = PricingPolicy::azure_blob_2020();
        let json = serde_json::to_string(&p).unwrap();
        let back: PricingPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
