//! Storage tiers (the paper's "types of storage", Γ).
//!
//! The paper evaluates against Microsoft Azure's three blob tiers — hot, cool
//! ("cold" in the paper's terminology), and archive — and notes the
//! formulation extends to any tier count ("Γ can be easily adjusted for
//! multiple CSPs", §4.2.1). [`Tier`] is the fixed three-tier enum used by the
//! default experiments; [`TierSet`] supports policies with an arbitrary
//! number of tiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of storage tiers in the default (Azure-like) policy, the paper's Γ.
pub const TIER_COUNT: usize = 3;

/// A storage tier of the default three-tier (Azure-like) policy.
///
/// Ordering is from most access-optimized to most storage-optimized:
/// `Hot < Cool < Archive`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum Tier {
    /// Frequent access: cheapest operations, most expensive storage.
    Hot = 0,
    /// Infrequent access (the paper's "cold"): cheaper storage, pricier ops.
    Cool = 1,
    /// Rare access: cheapest storage, most expensive operations/retrieval.
    Archive = 2,
}

impl Tier {
    /// All tiers, in index order.
    pub const ALL: [Tier; TIER_COUNT] = [Tier::Hot, Tier::Cool, Tier::Archive];

    /// The tier's dense index in `0..TIER_COUNT`.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The tier with the given dense index, if in range.
    #[must_use]
    pub const fn from_index(index: usize) -> Option<Tier> {
        match index {
            0 => Some(Tier::Hot),
            1 => Some(Tier::Cool),
            2 => Some(Tier::Archive),
            _ => None,
        }
    }

    /// Iterator over all tiers.
    pub fn all() -> impl Iterator<Item = Tier> {
        Self::ALL.into_iter()
    }

    /// Human-readable lowercase name, matching the paper's figures.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Tier::Hot => "hot",
            Tier::Cool => "cold",
            Tier::Archive => "archive",
        }
    }

    /// `true` when moving `self -> to` goes toward colder storage
    /// (hot→cool, hot→archive, cool→archive).
    #[must_use]
    pub const fn is_demotion_to(self, to: Tier) -> bool {
        to.index() > self.index()
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of tiers of arbitrary cardinality Γ, for multi-CSP policies.
///
/// Tiers are identified by dense indices `0..len()`; index 0 is by convention
/// the most access-optimized tier. The default experiments use
/// `TierSet::standard()`, which mirrors [`Tier::ALL`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierSet {
    names: Vec<String>,
}

impl TierSet {
    /// Creates a tier set from tier names. Panics if empty.
    #[must_use]
    pub fn new(names: Vec<String>) -> Self {
        assert!(!names.is_empty(), "a tier set must contain at least one tier");
        TierSet { names }
    }

    /// The standard Azure-like three-tier set.
    #[must_use]
    pub fn standard() -> Self {
        TierSet { names: Tier::ALL.iter().map(|t| t.name().to_owned()).collect() }
    }

    /// Number of tiers (the paper's Γ).
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if the set has no tiers (never true for constructed sets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of tier `index`, if in range.
    #[must_use]
    pub fn name(&self, index: usize) -> Option<&str> {
        self.names.get(index).map(String::as_str)
    }

    /// Iterator over `(index, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for tier in Tier::all() {
            assert_eq!(Tier::from_index(tier.index()), Some(tier));
        }
        assert_eq!(Tier::from_index(3), None);
        assert_eq!(Tier::from_index(usize::MAX), None);
    }

    #[test]
    fn ordering_is_hot_to_archive() {
        assert!(Tier::Hot < Tier::Cool);
        assert!(Tier::Cool < Tier::Archive);
    }

    #[test]
    fn demotion_detection() {
        assert!(Tier::Hot.is_demotion_to(Tier::Cool));
        assert!(Tier::Hot.is_demotion_to(Tier::Archive));
        assert!(Tier::Cool.is_demotion_to(Tier::Archive));
        assert!(!Tier::Cool.is_demotion_to(Tier::Hot));
        assert!(!Tier::Hot.is_demotion_to(Tier::Hot));
        assert!(!Tier::Archive.is_demotion_to(Tier::Cool));
    }

    #[test]
    fn names_match_paper_terms() {
        assert_eq!(Tier::Hot.to_string(), "hot");
        assert_eq!(Tier::Cool.to_string(), "cold");
        assert_eq!(Tier::Archive.to_string(), "archive");
    }

    #[test]
    fn standard_tier_set_matches_enum() {
        let set = TierSet::standard();
        assert_eq!(set.len(), TIER_COUNT);
        assert!(!set.is_empty());
        for tier in Tier::all() {
            assert_eq!(set.name(tier.index()), Some(tier.name()));
        }
        assert_eq!(set.name(3), None);
    }

    #[test]
    fn custom_tier_set() {
        let set = TierSet::new(vec!["premium".into(), "standard".into()]);
        assert_eq!(set.len(), 2);
        let pairs: Vec<_> = set.iter().collect();
        assert_eq!(pairs, vec![(0, "premium"), (1, "standard")]);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_tier_set_panics() {
        let _ = TierSet::new(vec![]);
    }
}
