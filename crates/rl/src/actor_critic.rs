//! Actor and critic networks and their per-batch gradient computation.

use crate::memory::Transition;
use nn::{policy_gradient_loss, softmax, Conv1d, ConvBranch, Dense, Matrix, Network, Relu};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Architecture of the paper's networks (§6.1): a Conv1d over the
/// request-frequency history window whose outputs are "aggregated with other
/// inputs in a hidden layer", feeding a softmax policy head (actor) or a
/// scalar value head (critic).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Length of the frequency-history window (conv input length).
    pub window: usize,
    /// Number of history channels stacked in the conv input.
    pub channels: usize,
    /// Number of non-history scalar features appended to the state
    /// (size, write rate, tier one-hot, ...), passed around the conv.
    pub extras: usize,
    /// Conv filter count (paper default: 128).
    pub filters: usize,
    /// Conv kernel size (paper default: 4).
    pub kernel: usize,
    /// Conv stride (paper default: 1).
    pub stride: usize,
    /// Hidden dense width (paper default: 128).
    pub hidden: usize,
    /// Number of discrete actions (Γ).
    pub actions: usize,
}

impl NetSpec {
    /// The paper's §6.1 configuration for a given window/extras/action count.
    #[must_use]
    pub fn paper_default(window: usize, extras: usize, actions: usize) -> NetSpec {
        NetSpec {
            window,
            channels: 1,
            extras,
            filters: 128,
            kernel: 4,
            stride: 1,
            hidden: 128,
            actions,
        }
    }

    /// A scaled-down spec with `width` filters and hidden neurons (the
    /// Fig. 11 sweep varies exactly this knob).
    #[must_use]
    pub fn with_width(self, width: usize) -> NetSpec {
        NetSpec { filters: width, hidden: width, ..self }
    }

    /// State dimensionality this spec expects.
    #[must_use]
    pub fn state_dim(&self) -> usize {
        self.channels * self.window + self.extras
    }

    /// Builds a network with this trunk and `out` output units.
    fn build(&self, out: usize, seed: u64) -> Network {
        assert!(self.window >= self.kernel, "window must fit the conv kernel");
        assert!(self.actions > 0 && self.hidden > 0 && self.filters > 0);
        let conv =
            Conv1d::new(self.channels, self.window, self.filters, self.kernel, self.stride, seed);
        let conv_out = conv.out_width();
        let net = Network::new(vec![
            Box::new(ConvBranch::new(conv, self.extras)),
            Box::new(Relu::new()),
            Box::new(Dense::new(conv_out + self.extras, self.hidden, seed ^ 0xD1)),
            Box::new(Relu::new()),
            Box::new(Dense::new(self.hidden, out, seed ^ 0xD2)),
        ]);
        debug_assert_eq!(net.check_widths(self.state_dim()), out);
        net
    }

    /// Builds the actor (policy logits head).
    #[must_use]
    pub fn build_actor(&self, seed: u64) -> Network {
        self.build(self.actions, seed.wrapping_add(0xAC70))
    }

    /// Builds the critic (scalar value head).
    #[must_use]
    pub fn build_critic(&self, seed: u64) -> Network {
        self.build(1, seed.wrapping_add(0xC417))
    }
}

/// The actor-critic pair plus training hyperparameters.
///
/// Per the paper (§5.1): "there are no shared features between actor network
/// and critic network" — two fully independent networks.
pub struct ActorCritic {
    /// Policy network (logits over actions).
    pub actor: Network,
    /// Value network (scalar V(s)).
    pub critic: Network,
    /// Discount factor for TD targets.
    pub gamma: f64,
    /// Entropy bonus coefficient for the actor loss.
    pub entropy_coeff: f64,
    /// L2 pull on the policy logits. The entropy bonus alone cannot recover
    /// a saturated softmax (its gradient vanishes at the simplex corners);
    /// a small quadratic penalty keeps logits finite so state features can
    /// still steer the policy.
    pub logit_l2: f64,
    /// Normalize advantages to zero mean / unit variance per batch. Helps
    /// when reward scales are uncontrolled; disable when the reward is
    /// already well-scaled (e.g. shaped regret), where renormalizing
    /// amplifies batch noise.
    pub normalize_advantages: bool,
    /// Subtract the critic's V(s) from the TD target to form advantages.
    /// Disable for reward schemes that are already centered per state
    /// (shaped regret: the optimal action scores 0, everything else is
    /// negative) — the raw reward is then a noise-free advantage and the
    /// critic's approximation error only hurts.
    pub critic_baseline: bool,
    /// Weight of a cross-entropy pull toward the environment's oracle
    /// action, for transitions that carry one. The paper's own convergence
    /// criterion is agreement with the offline Optimal (Figs. 9-11 all
    /// measure the optimal-action rate), and its agent trains on historical
    /// data where that oracle is computable; this term injects the
    /// corresponding learning signal directly. 0 disables (pure A3C).
    pub imitation_coeff: f64,
    spec: NetSpec,
}

impl ActorCritic {
    /// Builds the pair from a spec with seeded initialization.
    #[must_use]
    pub fn new(spec: NetSpec, gamma: f64, entropy_coeff: f64, seed: u64) -> ActorCritic {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        ActorCritic {
            actor: spec.build_actor(seed),
            critic: spec.build_critic(seed),
            gamma,
            entropy_coeff,
            logit_l2: 1e-3,
            normalize_advantages: true,
            critic_baseline: true,
            imitation_coeff: 0.0,
            spec,
        }
    }

    /// The architecture spec.
    #[must_use]
    pub fn spec(&self) -> NetSpec {
        self.spec
    }

    /// Action probabilities `π(s, ·)` for one state.
    #[must_use]
    pub fn policy(&mut self, state: &[f64]) -> Vec<f64> {
        let logits = self.actor.forward(&Matrix::row_vector(state));
        softmax(logits.row(0))
    }

    /// State value `V(s)`.
    #[must_use]
    pub fn value(&mut self, state: &[f64]) -> f64 {
        self.critic.forward(&Matrix::row_vector(state)).get(0, 0)
    }

    /// Samples an action: with probability `epsilon` uniformly at random
    /// (exploration, the paper's greedy rate), otherwise from `π(s, ·)`.
    pub fn select_action<R: Rng + ?Sized>(
        &mut self,
        state: &[f64],
        epsilon: f64,
        rng: &mut R,
    ) -> usize {
        let n = self.spec.actions;
        if rng.random::<f64>() < epsilon {
            return rng.random_range(0..n);
        }
        let probs = self.policy(state);
        sample_categorical(&probs, rng)
    }

    /// The greedy (argmax-probability) action.
    #[must_use]
    pub fn greedy_action(&mut self, state: &[f64]) -> usize {
        let probs = self.policy(state);
        argmax(&probs)
    }

    /// Accumulates actor and critic gradients for a batch of transitions
    /// (advantage policy gradient + TD(0) value regression; Eqs. 10–12).
    ///
    /// Gradients accumulate into the networks; callers extract them with
    /// `grad_vector()` and must `zero_grads()` between updates. Returns the
    /// mean actor loss and mean critic loss.
    pub fn accumulate_gradients(&mut self, batch: &[Transition]) -> (f64, f64) {
        if batch.is_empty() {
            return (0.0, 0.0);
        }
        let scale = 1.0 / batch.len() as f64;

        // Pass 1: TD(0) targets and raw advantages for the whole batch.
        let mut targets = Vec::with_capacity(batch.len());
        let mut advantages = Vec::with_capacity(batch.len());
        for tr in batch {
            let v_s = self.value(&tr.state);
            let v_next = if tr.done { 0.0 } else { self.value(&tr.next_state) };
            let target = tr.reward + self.gamma * v_next;
            targets.push(target);
            advantages.push(if self.critic_baseline { target - v_s } else { target });
        }

        // Normalize advantages across the batch (zero mean, unit variance).
        // Without this, early critic bias makes every advantage share one
        // sign and the policy saturates to a single action before it learns
        // to condition on state.
        if self.normalize_advantages {
            let mean = advantages.iter().sum::<f64>() * scale;
            let var = advantages.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() * scale;
            let sd = var.sqrt().max(1e-6);
            for a in &mut advantages {
                *a = (*a - mean) / sd;
            }
        }

        // Pass 2: gradients.
        let mut actor_loss = 0.0;
        let mut critic_loss = 0.0;
        for ((tr, &target), &advantage) in batch.iter().zip(&targets).zip(&advantages) {
            // Critic regression toward the raw TD target.
            let v_s = self.critic.forward(&Matrix::row_vector(&tr.state)).get(0, 0);
            critic_loss += (v_s - target) * (v_s - target);
            let critic_grad = 2.0 * (v_s - target) * scale;
            self.critic.backward(&Matrix::row_vector(&[critic_grad]));

            // Actor: normalized-advantage policy gradient on the logits.
            let logits_m = self.actor.forward(&Matrix::row_vector(&tr.state));
            let pg =
                policy_gradient_loss(logits_m.row(0), tr.action, advantage, self.entropy_coeff);
            actor_loss += pg.loss;
            let logits = logits_m.row(0);
            // Optional oracle imitation: plain cross-entropy toward the
            // oracle action (grad = pi - onehot).
            let imitation: Vec<f64> = match (self.imitation_coeff, tr.oracle) {
                (coeff, Some(oracle)) if coeff > 0.0 => {
                    let probs = softmax(logits);
                    (0..logits.len())
                        .map(|i| coeff * (probs[i] - if i == oracle { 1.0 } else { 0.0 }))
                        .collect()
                }
                _ => vec![0.0; logits.len()],
            };
            let scaled: Vec<f64> = pg
                .grad_logits
                .iter()
                .zip(logits)
                .zip(&imitation)
                .map(|((g, &logit), im)| (g + im + self.logit_l2 * logit) * scale)
                .collect();
            self.actor.backward(&Matrix::row_vector(&scaled));
        }
        (actor_loss * scale, critic_loss * scale)
    }
}

/// Samples an index from a probability vector. Falls back to the argmax when
/// the distribution is degenerate (e.g. numerically all-zero).
pub fn sample_categorical<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    debug_assert!(!probs.is_empty());
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    argmax(probs)
}

/// Index of the maximum value (first on ties). Panics on empty input.
#[must_use]
pub fn argmax(values: &[f64]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> NetSpec {
        NetSpec {
            window: 7,
            channels: 1,
            extras: 3,
            filters: 4,
            kernel: 4,
            stride: 1,
            hidden: 8,
            actions: 3,
        }
    }

    fn state() -> Vec<f64> {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 1.0, 0.0, 0.5]
    }

    #[test]
    fn spec_dims() {
        let s = spec();
        assert_eq!(s.state_dim(), 10);
        let paper = NetSpec::paper_default(7, 3, 3);
        assert_eq!((paper.filters, paper.kernel, paper.stride, paper.hidden), (128, 4, 1, 128));
        let narrow = paper.with_width(16);
        assert_eq!((narrow.filters, narrow.hidden), (16, 16));
        assert_eq!(narrow.kernel, 4);
    }

    #[test]
    fn policy_is_distribution() {
        let mut ac = ActorCritic::new(spec(), 0.9, 0.01, 1);
        let p = ac.policy(&state());
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn value_is_finite_scalar() {
        let mut ac = ActorCritic::new(spec(), 0.9, 0.01, 2);
        assert!(ac.value(&state()).is_finite());
    }

    #[test]
    fn actor_and_critic_are_independent() {
        let ac = ActorCritic::new(spec(), 0.9, 0.01, 3);
        // No parameter sharing: separate vectors of independent lengths.
        assert!(ac.actor.param_count() > 0);
        assert!(ac.critic.param_count() > 0);
        // Output widths differ (3 actions vs 1 value).
        assert_ne!(ac.actor.param_count(), ac.critic.param_count());
    }

    #[test]
    fn epsilon_one_ignores_policy() {
        let mut ac = ActorCritic::new(spec(), 0.9, 0.01, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[ac.select_action(&state(), 1.0, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 1000.0).abs() < 150.0, "counts {counts:?}");
        }
    }

    #[test]
    fn epsilon_zero_follows_policy() {
        let mut ac = ActorCritic::new(spec(), 0.9, 0.01, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let probs = ac.policy(&state());
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[ac.select_action(&state(), 0.0, &mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = probs[i] * 5000.0;
            assert!(
                (c as f64 - expected).abs() < 5.0 * (expected.sqrt() + 1.0),
                "action {i}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn greedy_action_is_argmax_of_policy() {
        let mut ac = ActorCritic::new(spec(), 0.9, 0.01, 8);
        let p = ac.policy(&state());
        assert_eq!(ac.greedy_action(&state()), argmax(&p));
    }

    #[test]
    fn gradient_accumulation_produces_nonzero_grads() {
        let mut ac = ActorCritic::new(spec(), 0.9, 0.01, 9);
        let tr = Transition {
            state: state(),
            action: 1,
            reward: 2.0,
            next_state: state(),
            done: false,
            oracle: None,
        };
        let (al, cl) = ac.accumulate_gradients(&[tr]);
        assert!(al.is_finite() && cl > 0.0);
        assert!(ac.actor.grad_vector().iter().any(|&g| g != 0.0));
        assert!(ac.critic.grad_vector().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut ac = ActorCritic::new(spec(), 0.9, 0.01, 10);
        let (al, cl) = ac.accumulate_gradients(&[]);
        assert_eq!((al, cl), (0.0, 0.0));
        assert!(ac.actor.grad_vector().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn training_drives_policy_toward_rewarding_action() {
        // One-state bandit: action 2 pays +1, others -1. After enough
        // updates the policy must prefer action 2.
        let s = spec();
        let mut ac = ActorCritic::new(s, 0.0, 0.001, 11);
        let st = state();
        let mut opt_a = nn::Adam::new(0.01);
        let mut opt_c = nn::Adam::new(0.01);
        use nn::Optimizer;
        for _ in 0..300 {
            let batch: Vec<Transition> = (0..3)
                .map(|a| Transition {
                    state: st.clone(),
                    action: a,
                    reward: if a == 2 { 1.0 } else { -1.0 },
                    next_state: st.clone(),
                    done: true,
                    oracle: None,
                })
                .collect();
            ac.actor.zero_grads();
            ac.critic.zero_grads();
            let _ = ac.accumulate_gradients(&batch);
            let ga = ac.actor.grad_vector();
            let mut pa = ac.actor.param_vector();
            opt_a.step(&mut pa, &ga);
            ac.actor.set_params(&pa);
            let gc = ac.critic.grad_vector();
            let mut pc = ac.critic.param_vector();
            opt_c.step(&mut pc, &gc);
            ac.critic.set_params(&pc);
        }
        let p = ac.policy(&st);
        assert!(p[2] > 0.8, "policy after training: {p:?}");
    }

    #[test]
    fn categorical_sampling_matches_distribution() {
        let mut rng = StdRng::seed_from_u64(12);
        let probs = [0.1, 0.6, 0.3];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        assert!((counts[1] as f64 - 6000.0).abs() < 300.0, "{counts:?}");
        assert!((counts[0] as f64 - 1000.0).abs() < 200.0, "{counts:?}");
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_empty_panics() {
        let _ = argmax(&[]);
    }

    #[test]
    fn seeded_nets_are_reproducible() {
        let mut a = ActorCritic::new(spec(), 0.9, 0.01, 42);
        let mut b = ActorCritic::new(spec(), 0.9, 0.01, 42);
        assert_eq!(a.actor.param_vector(), b.actor.param_vector());
        assert_eq!(a.policy(&state()), b.policy(&state()));
        let mut c = ActorCritic::new(spec(), 0.9, 0.01, 43);
        assert_ne!(a.actor.param_vector(), c.actor.param_vector());
        let _ = c.policy(&state());
    }
}
