//! Deep Q-learning with a target network.
//!
//! The paper describes its method as "training two Deep Q-Networks" inside
//! an A3C loop (§5.1). This module provides the classical alternative
//! reading — plain DQN (Mnih et al. 2015): one Q-network trained by
//! temporal-difference regression against a periodically-synchronized
//! target network, ε-greedy behavior, and uniform replay sampling. It
//! reuses the same [`NetSpec`] topology (the Q-head has one output per
//! action), so a trained Q-network deploys through the same greedy-argmax
//! policy path as the actor-critic agent.
//!
//! Kept single-threaded: DQN's stability comes from the replay buffer and
//! target network, not from asynchrony; the experiment harness uses it as
//! the trainer ablation against A3C.

use crate::actor_critic::{argmax, NetSpec};
use crate::env::Env;
use crate::memory::{ReplayMemory, Transition};
use crate::metrics::RollingRate;
use nn::{Adam, Matrix, Network, Optimizer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters of a DQN training run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Gradient updates to run.
    pub total_updates: u64,
    /// Environment steps collected between updates.
    pub steps_per_update: usize,
    /// Minibatch size sampled from replay per update.
    pub batch_size: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Exploration rate at the start of training.
    pub epsilon_start: f64,
    /// Exploration rate at the end (linear anneal).
    pub epsilon_end: f64,
    /// Sync the target network every this many updates.
    pub target_sync_every: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            total_updates: 5_000,
            steps_per_update: 4,
            batch_size: 32,
            replay_capacity: 16_384,
            gamma: 0.9,
            learning_rate: 0.001,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            target_sync_every: 250,
            seed: 0,
        }
    }
}

impl DqnConfig {
    /// Validates invariants; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.steps_per_update == 0 || self.batch_size == 0 {
            return Err("steps_per_update and batch_size must be > 0".into());
        }
        if self.replay_capacity == 0 {
            return Err("replay_capacity must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err("gamma must be in [0, 1]".into());
        }
        if self.learning_rate <= 0.0 {
            return Err("learning_rate must be positive".into());
        }
        for eps in [self.epsilon_start, self.epsilon_end] {
            if !(0.0..=1.0).contains(&eps) {
                return Err("epsilon must be in [0, 1]".into());
            }
        }
        if self.target_sync_every == 0 {
            return Err("target_sync_every must be > 0".into());
        }
        Ok(())
    }

    /// Linearly annealed exploration rate at `update`.
    #[must_use]
    pub fn epsilon_at(&self, update: u64) -> f64 {
        if self.total_updates == 0 {
            return self.epsilon_end;
        }
        let progress = (update as f64 / self.total_updates as f64).clamp(0.0, 1.0);
        self.epsilon_start + (self.epsilon_end - self.epsilon_start) * progress
    }
}

/// The outcome of a DQN training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DqnResult {
    /// Trained Q-network parameters (deployable via greedy argmax — the
    /// same path as an actor network, e.g. `RlPolicy::from_params`).
    pub q_params: Vec<f64>,
    /// Architecture of the Q-network.
    pub spec: NetSpec,
    /// Final rolling optimal-action rate, when the env exposes an oracle.
    pub final_optimal_rate: Option<f64>,
    /// Mean TD loss over the last 10% of updates.
    pub final_loss: f64,
}

/// Trains a DQN on `env`.
///
/// Panics on invalid configuration or env/spec mismatch.
pub fn train_dqn<E: Env>(spec: NetSpec, cfg: &DqnConfig, mut env: E) -> DqnResult {
    if let Err(e) = cfg.validate() {
        // Documented contract: callers must validate their config first.
        panic!("invalid DqnConfig: {e}"); // xtask-allow(no-panic-in-libs): documented fail-fast contract
    }
    assert_eq!(env.state_dim(), spec.state_dim(), "state width mismatch");
    assert_eq!(env.n_actions(), spec.actions, "action count mismatch");

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD9_0000);
    let mut q = spec.build_actor(cfg.seed);
    let mut target = spec.build_actor(cfg.seed);
    target.set_params(&q.param_vector());
    let mut optimizer = Adam::new(cfg.learning_rate);
    let mut memory = ReplayMemory::new(cfg.replay_capacity);
    let mut rate = RollingRate::new(256);
    let mut saw_oracle = false;

    let mut state = env.reset();
    let mut tail_loss = 0.0;
    let mut tail_count = 0u64;

    for update in 0..cfg.total_updates {
        let epsilon = cfg.epsilon_at(update);

        // Collect experience.
        for _ in 0..cfg.steps_per_update {
            let oracle = env.optimal_action();
            let greedy = {
                let values = q.forward(&Matrix::row_vector(&state));
                argmax(values.row(0))
            };
            let action = if rng.random::<f64>() < epsilon {
                rng.random_range(0..spec.actions)
            } else {
                greedy
            };
            if let Some(opt) = oracle {
                saw_oracle = true;
                rate.record(greedy == opt);
            }
            let step = env.step(action);
            memory.push(Transition {
                state: std::mem::take(&mut state),
                action,
                reward: step.reward,
                next_state: step.next_state.clone(),
                done: step.done,
                oracle,
            });
            state = if step.done { env.reset() } else { step.next_state };
        }

        // TD regression against the target network.
        let batch = memory.sample(cfg.batch_size, &mut rng);
        q.zero_grads();
        let scale = 1.0 / batch.len().max(1) as f64;
        let mut loss = 0.0;
        for tr in &batch {
            let bootstrap = if tr.done {
                0.0
            } else {
                let next = target.forward(&Matrix::row_vector(&tr.next_state));
                next.row(0).iter().copied().fold(f64::NEG_INFINITY, f64::max)
            };
            let td_target = tr.reward + cfg.gamma * bootstrap;
            let values = q.forward(&Matrix::row_vector(&tr.state));
            let predicted = values.get(0, tr.action);
            let error = predicted - td_target;
            loss += error * error;
            // dL/dQ is nonzero only at the taken action.
            let mut grad = vec![0.0; spec.actions];
            grad[tr.action] = 2.0 * error * scale;
            q.backward(&Matrix::row_vector(&grad));
        }
        let grads = q.grad_vector();
        let mut params = q.param_vector();
        optimizer.step(&mut params, &grads);
        q.set_params(&params);

        if (update + 1) % cfg.target_sync_every == 0 {
            target.set_params(&q.param_vector());
        }
        if update >= cfg.total_updates - cfg.total_updates.div_ceil(10) {
            tail_loss += loss * scale;
            tail_count += 1;
        }
    }

    DqnResult {
        q_params: q.param_vector(),
        spec,
        final_optimal_rate: saw_oracle.then(|| rate.rate()),
        final_loss: tail_loss / tail_count.max(1) as f64,
    }
}

/// Rebuilds the greedy Q-policy network from a result.
#[must_use]
pub fn q_network(result: &DqnResult) -> Network {
    let mut net = result.spec.build_actor(0);
    net.set_params(&result.q_params);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::{Bandit, ContextualBandit};
    use crate::env::Step;

    fn tiny_spec() -> NetSpec {
        NetSpec {
            window: 2,
            channels: 1,
            extras: 0,
            filters: 4,
            kernel: 2,
            stride: 1,
            hidden: 8,
            actions: 2,
        }
    }

    /// Pads bandit states to width 2.
    struct Padded<E>(E);

    impl<E: Env> Env for Padded<E> {
        fn state_dim(&self) -> usize {
            2
        }
        fn n_actions(&self) -> usize {
            self.0.n_actions()
        }
        fn reset(&mut self) -> Vec<f64> {
            let mut s = self.0.reset();
            s.resize(2, 0.0);
            s
        }
        fn step(&mut self, action: usize) -> Step {
            let mut step = self.0.step(action);
            step.next_state.resize(2, 0.0);
            step
        }
        fn optimal_action(&self) -> Option<usize> {
            self.0.optimal_action()
        }
    }

    #[test]
    fn epsilon_anneals_linearly() {
        let cfg = DqnConfig { total_updates: 100, ..DqnConfig::default() };
        assert_eq!(cfg.epsilon_at(0), 1.0);
        assert!((cfg.epsilon_at(50) - 0.525).abs() < 1e-12);
        assert!((cfg.epsilon_at(100) - 0.05).abs() < 1e-12);
        assert!((cfg.epsilon_at(10_000) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn dqn_learns_the_bandit() {
        let cfg =
            DqnConfig { total_updates: 600, learning_rate: 0.01, seed: 1, ..DqnConfig::default() };
        let result = train_dqn(tiny_spec(), &cfg, Padded(Bandit { steps: 0 }));
        let mut q = q_network(&result);
        let values = q.forward(&Matrix::row_vector(&[1.0, 0.0]));
        assert!(values.get(0, 1) > values.get(0, 0), "Q-values {:?}", values.row(0));
        assert!(result.final_optimal_rate.unwrap() > 0.6);
        assert!(result.final_loss.is_finite());
    }

    #[test]
    fn dqn_learns_state_dependence() {
        let cfg = DqnConfig {
            total_updates: 1_500,
            learning_rate: 0.01,
            gamma: 0.5,
            seed: 2,
            ..DqnConfig::default()
        };
        let result = train_dqn(tiny_spec(), &cfg, ContextualBandit { context: 0, steps: 0 });
        let mut q = q_network(&result);
        let q0 = q.forward(&Matrix::row_vector(&[1.0, 0.0]));
        let q1 = q.forward(&Matrix::row_vector(&[0.0, 1.0]));
        assert!(q0.get(0, 0) > q0.get(0, 1), "context 0: {:?}", q0.row(0));
        assert!(q1.get(0, 1) > q1.get(0, 0), "context 1: {:?}", q1.row(0));
    }

    #[test]
    fn training_is_seed_deterministic() {
        let cfg = DqnConfig { total_updates: 50, seed: 3, ..DqnConfig::default() };
        let a = train_dqn(tiny_spec(), &cfg, Padded(Bandit { steps: 0 }));
        let b = train_dqn(tiny_spec(), &cfg, Padded(Bandit { steps: 0 }));
        assert_eq!(a.q_params, b.q_params);
        let c = train_dqn(tiny_spec(), &DqnConfig { seed: 4, ..cfg }, Padded(Bandit { steps: 0 }));
        assert_ne!(a.q_params, c.q_params);
    }

    #[test]
    #[should_panic(expected = "invalid DqnConfig")]
    fn invalid_config_rejected() {
        let cfg = DqnConfig { batch_size: 0, ..DqnConfig::default() };
        let _ = train_dqn(tiny_spec(), &cfg, Padded(Bandit { steps: 0 }));
    }

    #[test]
    fn config_validation_covers_fields() {
        let ok = DqnConfig::default();
        assert!(ok.validate().is_ok());
        assert!(DqnConfig { replay_capacity: 0, ..ok.clone() }.validate().is_err());
        assert!(DqnConfig { gamma: -0.1, ..ok.clone() }.validate().is_err());
        assert!(DqnConfig { learning_rate: 0.0, ..ok.clone() }.validate().is_err());
        assert!(DqnConfig { epsilon_start: 1.5, ..ok.clone() }.validate().is_err());
        assert!(DqnConfig { target_sync_every: 0, ..ok }.validate().is_err());
    }
}
