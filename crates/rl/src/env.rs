//! The MDP environment interface.

/// One environment transition.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    /// State after the action.
    pub next_state: Vec<f64>,
    /// Immediate reward (the paper's Eq. 4).
    pub reward: f64,
    /// `true` when the episode ended (bootstrap value is zero).
    pub done: bool,
}

/// A Markov decision process with a discrete action space.
///
/// Implementations must be `Send` so A3C workers can own one each.
pub trait Env: Send {
    /// Dimensionality of the state feature vector.
    fn state_dim(&self) -> usize;

    /// Number of discrete actions (the paper's Γ tier count).
    fn n_actions(&self) -> usize;

    /// Resets to an initial state and returns its features.
    fn reset(&mut self) -> Vec<f64>;

    /// Applies `action` and advances one decision step.
    ///
    /// Panics if `action >= n_actions()`.
    fn step(&mut self, action: usize) -> Step;

    /// The action an oracle (the paper's *Optimal* offline solver) would
    /// take in the current state, when the environment can compute it.
    /// Drives the optimal-action-rate metric of Figs. 9–11.
    fn optimal_action(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
pub(crate) mod test_envs {
    use super::*;

    /// A two-state, two-action chain: action 0 keeps reward 0, action 1
    /// yields reward 1 and ends the episode. Optimal action is always 1.
    pub struct Bandit {
        pub steps: usize,
    }

    impl Env for Bandit {
        fn state_dim(&self) -> usize {
            1
        }

        fn n_actions(&self) -> usize {
            2
        }

        fn reset(&mut self) -> Vec<f64> {
            self.steps = 0;
            vec![1.0]
        }

        fn step(&mut self, action: usize) -> Step {
            assert!(action < 2);
            self.steps += 1;
            Step {
                next_state: vec![1.0],
                reward: if action == 1 { 1.0 } else { 0.0 },
                done: self.steps >= 4,
            }
        }

        fn optimal_action(&self) -> Option<usize> {
            Some(1)
        }
    }

    /// A state-dependent environment: two observable contexts that demand
    /// opposite actions. Tests that policies actually condition on state.
    pub struct ContextualBandit {
        pub context: usize,
        pub steps: usize,
    }

    impl Env for ContextualBandit {
        fn state_dim(&self) -> usize {
            2
        }

        fn n_actions(&self) -> usize {
            2
        }

        fn reset(&mut self) -> Vec<f64> {
            self.steps = 0;
            self.context = 0;
            vec![1.0, 0.0]
        }

        fn step(&mut self, action: usize) -> Step {
            assert!(action < 2);
            let reward = if action == self.context { 1.0 } else { -1.0 };
            self.steps += 1;
            self.context = (self.context + 1) % 2;
            let state = if self.context == 0 { vec![1.0, 0.0] } else { vec![0.0, 1.0] };
            Step { next_state: state, reward, done: self.steps >= 8 }
        }

        fn optimal_action(&self) -> Option<usize> {
            Some(self.context)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_envs::*;
    use super::*;

    #[test]
    fn bandit_rewards_action_one() {
        let mut env = Bandit { steps: 0 };
        let s0 = env.reset();
        assert_eq!(s0, vec![1.0]);
        assert_eq!(env.state_dim(), 1);
        assert_eq!(env.n_actions(), 2);
        assert_eq!(env.optimal_action(), Some(1));
        let step = env.step(1);
        assert_eq!(step.reward, 1.0);
        assert!(!step.done);
        let step = env.step(0);
        assert_eq!(step.reward, 0.0);
    }

    #[test]
    fn bandit_episode_terminates() {
        let mut env = Bandit { steps: 0 };
        env.reset();
        for i in 0..4 {
            let step = env.step(0);
            assert_eq!(step.done, i == 3);
        }
    }

    #[test]
    fn contextual_bandit_alternates_optimal_action() {
        let mut env = ContextualBandit { context: 0, steps: 0 };
        let s = env.reset();
        assert_eq!(s, vec![1.0, 0.0]);
        assert_eq!(env.optimal_action(), Some(0));
        let step = env.step(0);
        assert_eq!(step.reward, 1.0);
        assert_eq!(step.next_state, vec![0.0, 1.0]);
        assert_eq!(env.optimal_action(), Some(1));
        let step = env.step(0);
        assert_eq!(step.reward, -1.0);
    }

    #[test]
    fn default_optimal_action_is_none() {
        struct Dumb;
        impl Env for Dumb {
            fn state_dim(&self) -> usize {
                1
            }
            fn n_actions(&self) -> usize {
                1
            }
            fn reset(&mut self) -> Vec<f64> {
                vec![0.0]
            }
            fn step(&mut self, _action: usize) -> Step {
                Step { next_state: vec![0.0], reward: 0.0, done: true }
            }
        }
        assert_eq!(Dumb.optimal_action(), None);
    }
}
