//! Reinforcement-learning substrate: the MDP interface, actor-critic
//! networks, replay memory, and an asynchronous advantage actor-critic
//! (A3C-style) trainer.
//!
//! The paper (§5.1) trains two DQNs — an actor network producing the policy
//! `π_η(s, a)` and a critic network producing the state value `V(s)` — with
//! asynchronous workers, advantage-based policy gradients (Eqs. 10–12), a
//! replay memory sampled uniformly (Algorithm 1 line 7), and ε-greedy
//! exploration. This crate reproduces that machinery on CPU threads:
//! each worker owns thread-local copies of both networks, pulls the latest
//! shared parameters before every update, and pushes gradients into a
//! shared [`ParamStore`] that applies them Hogwild-style under a lock.
//!
//! The crate is deliberately independent of the storage-tiering domain:
//! anything implementing [`Env`] can be trained. `minicost-core` provides
//! the tiering environment.

#![warn(missing_docs)]
// Library code must surface failures as values (L2 no-panic-in-libs); tests
// may unwrap freely.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Tests assert bit-exact float reproducibility on purpose.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod a3c;
pub mod actor_critic;
pub mod dqn;
pub mod env;
pub mod memory;
pub mod metrics;
pub mod params;

pub use a3c::{A3cConfig, A3cTrainer, ProgressPoint, TrainResult};
pub use actor_critic::{ActorCritic, NetSpec};
pub use dqn::{train_dqn, DqnConfig, DqnResult};
pub use env::{Env, Step};
pub use memory::{ReplayMemory, Transition};
pub use metrics::{convergence_step, RollingRate};
pub use params::ParamStore;
