//! Replay memory (Algorithm 1, lines 1 and 7 of the paper).

use rand::{Rng, RngExt};
use std::collections::VecDeque;

/// One stored transition `(s_t, a_t, r_t, s_{t+1})`.
#[derive(Clone, Debug, PartialEq)]
pub struct Transition {
    /// State features.
    pub state: Vec<f64>,
    /// Action index taken.
    pub action: usize,
    /// Immediate reward.
    pub reward: f64,
    /// Next-state features.
    pub next_state: Vec<f64>,
    /// Whether the episode ended at this transition.
    pub done: bool,
    /// The oracle's action in `state`, when the environment exposes one
    /// (drives the optimal-action-rate metric and optional imitation).
    pub oracle: Option<usize>,
}

/// A bounded FIFO replay buffer with uniform random sampling.
#[derive(Clone, Debug)]
pub struct ReplayMemory {
    capacity: usize,
    buffer: VecDeque<Transition>,
}

impl ReplayMemory {
    /// Creates a memory holding at most `capacity` transitions.
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> ReplayMemory {
        assert!(capacity > 0, "capacity must be positive");
        ReplayMemory { capacity, buffer: VecDeque::with_capacity(capacity) }
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, transition: Transition) {
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back(transition);
    }

    /// Number of stored transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// `true` when no transitions are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Maximum capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Uniformly samples `batch` transitions with replacement
    /// (Algorithm 1: "Randomly select a set of actions ... from the memory").
    /// Returns fewer (cloned) items only when the memory is empty.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, batch: usize, rng: &mut R) -> Vec<Transition> {
        if self.buffer.is_empty() {
            return Vec::new();
        }
        (0..batch).map(|_| self.buffer[rng.random_range(0..self.buffer.len())].clone()).collect()
    }

    /// Drops all stored transitions.
    pub fn clear(&mut self) {
        self.buffer.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(tag: f64) -> Transition {
        Transition {
            state: vec![tag],
            action: 0,
            reward: tag,
            next_state: vec![tag + 1.0],
            done: false,
            oracle: None,
        }
    }

    #[test]
    fn push_and_len() {
        let mut m = ReplayMemory::new(3);
        assert!(m.is_empty());
        m.push(t(1.0));
        m.push(t(2.0));
        assert_eq!(m.len(), 2);
        assert_eq!(m.capacity(), 3);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut m = ReplayMemory::new(2);
        m.push(t(1.0));
        m.push(t(2.0));
        m.push(t(3.0));
        assert_eq!(m.len(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        let rewards: Vec<f64> = m.sample(100, &mut rng).iter().map(|x| x.reward).collect();
        assert!(rewards.iter().all(|&r| r == 2.0 || r == 3.0));
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0));
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let m = ReplayMemory::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(m.sample(8, &mut rng).is_empty());
    }

    #[test]
    fn sample_is_uniformish() {
        let mut m = ReplayMemory::new(10);
        for i in 0..10 {
            m.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let samples = m.sample(10_000, &mut rng);
        let mut counts = [0usize; 10];
        for s in &samples {
            counts[s.reward as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as f64 - 1000.0).abs() < 150.0, "slot {i} sampled {c} times");
        }
    }

    #[test]
    fn clear_empties_buffer() {
        let mut m = ReplayMemory::new(4);
        m.push(t(1.0));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayMemory::new(0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut m = ReplayMemory::new(8);
        for i in 0..8 {
            m.push(t(i as f64));
        }
        let a = m.sample(5, &mut StdRng::seed_from_u64(3));
        let b = m.sample(5, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
