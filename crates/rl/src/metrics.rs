//! Training metrics: optimal-action-rate tracking and convergence detection
//! (the y-axes of the paper's Figs. 9–11).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A rolling hit-rate over the last `window` boolean observations —
/// the "optimal action rate" when fed `agent_action == optimal_action`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RollingRate {
    window: usize,
    hits: VecDeque<bool>,
    hit_count: usize,
}

impl RollingRate {
    /// Creates a tracker over a window of `window` observations.
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(window: usize) -> RollingRate {
        assert!(window > 0, "window must be positive");
        RollingRate { window, hits: VecDeque::with_capacity(window), hit_count: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, hit: bool) {
        if self.hits.len() == self.window && self.hits.pop_front() == Some(true) {
            self.hit_count -= 1;
        }
        self.hits.push_back(hit);
        if hit {
            self.hit_count += 1;
        }
    }

    /// Current rate in `[0, 1]`; 0.0 before any observation.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.hits.is_empty() {
            0.0
        } else {
            self.hit_count as f64 / self.hits.len() as f64
        }
    }

    /// Number of recorded observations currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// `true` before the first observation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// `true` once the window is fully populated.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.hits.len() == self.window
    }
}

/// The first index at which `rates` reaches `threshold` and stays at or
/// above it for the rest of the series ("converged", Fig. 9's y-axis).
/// Returns `None` when the series never converges.
#[must_use]
pub fn convergence_step(rates: &[f64], threshold: f64) -> Option<usize> {
    let mut candidate = None;
    for (i, &r) in rates.iter().enumerate() {
        if r >= threshold {
            if candidate.is_none() {
                candidate = Some(i);
            }
        } else {
            candidate = None;
        }
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rate_over_partial_window() {
        let mut r = RollingRate::new(4);
        assert_eq!(r.rate(), 0.0);
        assert!(r.is_empty());
        r.record(true);
        r.record(false);
        assert_eq!(r.rate(), 0.5);
        assert_eq!(r.len(), 2);
        assert!(!r.is_warm());
    }

    #[test]
    fn rolling_eviction() {
        let mut r = RollingRate::new(2);
        r.record(true);
        r.record(true);
        assert_eq!(r.rate(), 1.0);
        assert!(r.is_warm());
        r.record(false);
        // Window now [true, false].
        assert_eq!(r.rate(), 0.5);
        r.record(false);
        assert_eq!(r.rate(), 0.0);
    }

    #[test]
    fn convergence_finds_stable_crossing() {
        let rates = [0.1, 0.95, 0.2, 0.9, 0.92, 0.99];
        // The early 0.95 does not stick; convergence starts at index 3.
        assert_eq!(convergence_step(&rates, 0.9), Some(3));
    }

    #[test]
    fn convergence_none_when_never_reached() {
        assert_eq!(convergence_step(&[0.1, 0.5, 0.89], 0.9), None);
        assert_eq!(convergence_step(&[], 0.9), None);
    }

    #[test]
    fn convergence_at_zero_threshold_is_immediate() {
        assert_eq!(convergence_step(&[0.0, 0.0], 0.0), Some(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = RollingRate::new(0);
    }

    proptest! {
        #[test]
        fn rate_always_in_unit_interval(
            observations in proptest::collection::vec(any::<bool>(), 0..100),
            window in 1usize..20,
        ) {
            let mut r = RollingRate::new(window);
            for o in observations {
                r.record(o);
                prop_assert!((0.0..=1.0).contains(&r.rate()));
                prop_assert!(r.len() <= window);
            }
        }

        #[test]
        fn convergence_suffix_property(
            rates in proptest::collection::vec(0.0f64..1.0, 1..50),
            threshold in 0.0f64..1.0,
        ) {
            if let Some(step) = convergence_step(&rates, threshold) {
                prop_assert!(rates[step..].iter().all(|&r| r >= threshold));
                if step > 0 {
                    prop_assert!(rates[step - 1] < threshold);
                }
            } else {
                // Not converged: the last element must be below threshold.
                prop_assert!(rates.last().copied().unwrap_or(0.0) < threshold);
            }
        }
    }
}
