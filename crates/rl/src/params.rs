//! The shared parameter store for asynchronous training.
//!
//! A3C workers train thread-local networks against snapshots of the shared
//! parameters and push gradients back; the store applies them under a lock
//! (Hogwild-style serialization of the optimizer step, which keeps Adam's
//! moment estimates coherent). The store also counts applied updates, which
//! is the "number of steps" axis in the paper's Figs. 9–10.

use nn::{clip_grad_norm, Optimizer};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Parameters plus optimizer state for one network (actor or critic).
struct Slot {
    params: Vec<f64>,
    optimizer: Box<dyn Optimizer>,
}

/// Shared actor/critic parameters with atomic update counting.
pub struct ParamStore {
    actor: Mutex<Slot>,
    critic: Mutex<Slot>,
    updates: AtomicU64,
    max_grad_norm: f64,
}

impl ParamStore {
    /// Creates a store with initial parameters and per-network optimizers.
    #[must_use]
    pub fn new(
        actor_params: Vec<f64>,
        critic_params: Vec<f64>,
        actor_opt: Box<dyn Optimizer>,
        critic_opt: Box<dyn Optimizer>,
        max_grad_norm: f64,
    ) -> ParamStore {
        assert!(max_grad_norm > 0.0, "max_grad_norm must be positive");
        ParamStore {
            actor: Mutex::new(Slot { params: actor_params, optimizer: actor_opt }),
            critic: Mutex::new(Slot { params: critic_params, optimizer: critic_opt }),
            updates: AtomicU64::new(0),
            max_grad_norm,
        }
    }

    /// Copies of the current actor and critic parameters.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<f64>, Vec<f64>) {
        let (mut actor, mut critic) = (Vec::new(), Vec::new());
        self.snapshot_into(&mut actor, &mut critic);
        (actor, critic)
    }

    /// Copies the current actor and critic parameters into caller-owned
    /// buffers (cleared first), reusing their allocations; the worker loop's
    /// per-update pull path.
    pub fn snapshot_into(&self, actor: &mut Vec<f64>, critic: &mut Vec<f64>) {
        actor.clear();
        actor.extend_from_slice(&self.actor.lock().params);
        critic.clear();
        critic.extend_from_slice(&self.critic.lock().params);
    }

    /// Applies one asynchronous update: clips both gradients to the
    /// configured norm, steps both optimizers, bumps the update counter, and
    /// returns the new counter value.
    pub fn apply(&self, mut actor_grads: Vec<f64>, mut critic_grads: Vec<f64>) -> u64 {
        self.apply_grads(&mut actor_grads, &mut critic_grads)
    }

    /// [`ParamStore::apply`] over caller-owned gradient buffers, clipping in
    /// place; the worker loop's per-update push path, allocation-free on the
    /// caller's side.
    pub fn apply_grads(&self, actor_grads: &mut [f64], critic_grads: &mut [f64]) -> u64 {
        clip_grad_norm(actor_grads, self.max_grad_norm);
        clip_grad_norm(critic_grads, self.max_grad_norm);
        {
            let mut slot = self.actor.lock();
            let Slot { params, optimizer } = &mut *slot;
            optimizer.step(params, actor_grads);
        }
        {
            let mut slot = self.critic.lock();
            let Slot { params, optimizer } = &mut *slot;
            optimizer.step(params, critic_grads);
        }
        self.updates.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Number of updates applied so far.
    #[must_use]
    pub fn update_count(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::Sgd;
    use std::sync::Arc;

    fn store(n: usize) -> ParamStore {
        ParamStore::new(
            vec![0.0; n],
            vec![0.0; n],
            Box::new(Sgd::new(1.0)),
            Box::new(Sgd::new(1.0)),
            1e9,
        )
    }

    #[test]
    fn apply_updates_parameters() {
        let s = store(2);
        s.apply(vec![1.0, -1.0], vec![0.5, 0.5]);
        let (a, c) = s.snapshot();
        assert_eq!(a, vec![-1.0, 1.0]);
        assert_eq!(c, vec![-0.5, -0.5]);
        assert_eq!(s.update_count(), 1);
    }

    #[test]
    fn gradient_clipping_applies() {
        let s = ParamStore::new(
            vec![0.0],
            vec![0.0],
            Box::new(Sgd::new(1.0)),
            Box::new(Sgd::new(1.0)),
            1.0,
        );
        s.apply(vec![10.0], vec![0.1]);
        let (a, c) = s.snapshot();
        // Actor gradient clipped from 10 to 1.
        assert!((a[0] + 1.0).abs() < 1e-12, "{a:?}");
        // Critic gradient under the cap, untouched.
        assert!((c[0] + 0.1).abs() < 1e-12, "{c:?}");
    }

    #[test]
    fn concurrent_updates_all_land() {
        let s = Arc::new(store(1));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        s.apply(vec![0.001], vec![0.001]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.update_count(), 800);
        let (a, _) = s.snapshot();
        // 800 SGD steps of -0.001 each.
        assert!((a[0] + 0.8).abs() < 1e-9, "{a:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clip_norm_rejected() {
        let _ =
            ParamStore::new(vec![], vec![], Box::new(Sgd::new(1.0)), Box::new(Sgd::new(1.0)), 0.0);
    }
}
