//! The append-only migration journal: a two-phase commit per job.
//!
//! Every migration writes, in order: an `intent` record before any bytes
//! move, a `committed` record after the destination copy verifies (the
//! **commit point** — its `bytes` field is what the billed-vs-committed
//! invariant sums), and a `done` record once the source copy is deleted.
//! A job abandoned by rollback or pinned after retry exhaustion appends
//! `aborted` instead.
//!
//! Each line is independently checksummed with the snapshot path's
//! `fnv1a64` (`fnv1a64:<16 hex> <json>`), so a crash mid-append leaves a
//! torn *tail* line that is detected and dropped — indistinguishable from
//! the record never having been written, which is exactly the two-phase-
//! commit contract. A bad line *before* the tail means real corruption
//! and fails the load (the serving loop's unrecoverable-pool path).
//!
//! Recovery semantics over the latest phase per job id:
//!
//! | latest phase | meaning                | recovery action               |
//! |--------------|------------------------|-------------------------------|
//! | `intent`     | copy may be torn       | roll back: delete destination |
//! | `committed`  | copy verified, durable | roll forward: delete source   |
//! | `done`       | fully applied          | nothing                       |
//! | `aborted`    | rolled back / pinned   | nothing (job may re-run)      |

use pricing::Tier;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use stream::fnv1a64;

/// Identity of one migration job: a specific file moving between a
/// specific pair of tiers on a specific day. Replaying a day after a
/// restart regenerates the same ids, which is what makes journal lookups
/// deduplicate already-committed work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId {
    /// Trace day the decision was made.
    pub day: usize,
    /// File id (the trace's stable u64 id).
    pub file: u64,
    /// Source tier.
    pub from: Tier,
    /// Destination tier.
    pub to: Tier,
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "day {} file {:016x} {}->{}",
            self.day,
            self.file,
            self.from.name(),
            self.to.name()
        )
    }
}

/// A job's lifecycle phase as recorded in the journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum JobPhase {
    /// Declared before any bytes move.
    Intent,
    /// Destination copy verified; the commit point.
    Committed,
    /// Source copy deleted; fully applied.
    Done,
    /// Rolled back or pinned; the job may be re-attempted later.
    Aborted,
}

/// One checksummed journal line.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Monotone sequence number (per journal).
    pub seq: u64,
    /// The job this record belongs to.
    pub job: JobId,
    /// The phase transition this record declares.
    pub phase: JobPhase,
    /// Logical bytes the job moves (meaningful on `committed`).
    pub bytes: u64,
}

/// Where journal lines persist.
trait JournalSink {
    /// Appends one line durably.
    fn append_line(&mut self, line: &str) -> Result<(), String>;
}

/// In-memory sink (ephemeral pools).
#[derive(Debug, Default)]
struct MemSink;

impl JournalSink for MemSink {
    fn append_line(&mut self, _line: &str) -> Result<(), String> {
        Ok(())
    }
}

/// File sink: append + fsync per record, so the journal's record order is
/// durable before any depending pool mutation happens.
#[derive(Debug)]
struct FileSink {
    path: PathBuf,
}

impl JournalSink for FileSink {
    fn append_line(&mut self, line: &str) -> Result<(), String> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("{}: {e}", self.path.display()))?;
        file.write_all(line.as_bytes()).map_err(|e| format!("{}: {e}", self.path.display()))?;
        file.write_all(b"\n").map_err(|e| format!("{}: {e}", self.path.display()))?;
        file.sync_data().map_err(|e| format!("{}: {e}", self.path.display()))
    }
}

/// The migration journal: an ordered, checksummed record log plus the
/// derived latest-phase index.
pub struct Journal {
    sink: Box<dyn JournalSink>,
    records: Vec<JournalRecord>,
    next_seq: u64,
    dropped_tail: bool,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("records", &self.records.len())
            .field("next_seq", &self.next_seq)
            .field("dropped_tail", &self.dropped_tail)
            .finish()
    }
}

fn encode_line(record: &JournalRecord) -> Result<String, String> {
    let json = serde_json::to_string(record).map_err(|e| format!("encode: {e}"))?;
    let digest = fnv1a64(json.as_bytes());
    Ok(format!("fnv1a64:{digest:016x} {json}"))
}

fn decode_line(line: &str) -> Result<JournalRecord, String> {
    let (head, json) =
        line.split_once(' ').ok_or_else(|| format!("journal line missing checksum: {line:?}"))?;
    let hex = head
        .strip_prefix("fnv1a64:")
        .ok_or_else(|| format!("journal line missing checksum: {line:?}"))?;
    let declared = u64::from_str_radix(hex, 16).map_err(|e| format!("journal checksum: {e}"))?;
    let actual = fnv1a64(json.as_bytes());
    if actual != declared {
        return Err(format!("journal checksum mismatch ({actual:016x} != {declared:016x})"));
    }
    serde_json::from_str(json).map_err(|e| format!("journal record: {e}"))
}

impl Journal {
    /// An ephemeral journal (memory-backed pools; nothing survives the
    /// process, so neither does the journal).
    #[must_use]
    pub fn in_memory() -> Journal {
        Journal { sink: Box::new(MemSink), records: Vec::new(), next_seq: 0, dropped_tail: false }
    }

    /// Opens (or creates) a file-backed journal, replaying existing
    /// records. A torn final line is dropped — by the append protocol it
    /// carries no effects that need undoing; a torn or corrupt line
    /// anywhere else is an error.
    ///
    /// # Errors
    ///
    /// I/O failures and mid-log corruption, as messages.
    pub fn open_file(path: &Path) -> Result<Journal, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
        let mut records = Vec::with_capacity(lines.len());
        let mut dropped_tail = false;
        let last_ix = lines.len().saturating_sub(1);
        for (ix, line) in lines.iter().enumerate() {
            match decode_line(line) {
                Ok(record) => records.push(record),
                Err(_) if ix == last_ix => {
                    // Torn tail from a crash mid-append: the record never
                    // committed. Later appends rewrite from a clean line.
                    dropped_tail = true;
                }
                Err(e) => return Err(format!("{} line {}: {e}", path.display(), ix + 1)),
            }
        }
        if dropped_tail {
            // Truncate the torn tail so future appends start on a fresh
            // line instead of concatenating onto garbage.
            let clean: String = records
                .iter()
                .map(encode_line)
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|l| l + "\n")
                .collect();
            std::fs::write(path, clean).map_err(|e| format!("{}: {e}", path.display()))?;
        }
        let next_seq = records.iter().map(|r| r.seq + 1).max().unwrap_or(0);
        Ok(Journal {
            sink: Box::new(FileSink { path: path.to_path_buf() }),
            records,
            next_seq,
            dropped_tail,
        })
    }

    /// Appends a record durably and returns it.
    ///
    /// # Errors
    ///
    /// Encoding or sink failures, as messages.
    pub fn append(
        &mut self,
        job: JobId,
        phase: JobPhase,
        bytes: u64,
    ) -> Result<JournalRecord, String> {
        let record = JournalRecord { seq: self.next_seq, job, phase, bytes };
        let line = encode_line(&record)?;
        self.sink.append_line(&line)?;
        self.next_seq += 1;
        self.records.push(record.clone());
        Ok(record)
    }

    /// Every record, in append order.
    #[must_use]
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// The latest phase recorded for each job id.
    #[must_use]
    pub fn latest_phases(&self) -> BTreeMap<JobId, JobPhase> {
        let mut latest = BTreeMap::new();
        for r in &self.records {
            latest.insert(r.job, r.phase);
        }
        latest
    }

    /// The latest phase recorded for `job`, if any.
    #[must_use]
    pub fn phase_of(&self, job: &JobId) -> Option<JobPhase> {
        self.records.iter().rev().find(|r| r.job == *job).map(|r| r.phase)
    }

    /// Total logical bytes across `committed` records — the durable side
    /// of the billed-vs-committed invariant.
    #[must_use]
    pub fn committed_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.phase == JobPhase::Committed)
            .map(|r| r.bytes)
            .fold(0u64, u64::saturating_add)
    }

    /// Count of `committed` records.
    #[must_use]
    pub fn committed_jobs(&self) -> u64 {
        self.records.iter().filter(|r| r.phase == JobPhase::Committed).count() as u64
    }

    /// Whether opening this journal dropped a torn tail line.
    #[must_use]
    pub fn dropped_tail(&self) -> bool {
        self.dropped_tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(day: usize, file: u64) -> JobId {
        JobId { day, file, from: Tier::Hot, to: Tier::Cool }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("minicost-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn file_journal_round_trips_and_indexes() {
        let path = scratch("roundtrip.log");
        {
            let mut j = Journal::open_file(&path).unwrap();
            j.append(job(0, 1), JobPhase::Intent, 0).unwrap();
            j.append(job(0, 1), JobPhase::Committed, 100).unwrap();
            j.append(job(0, 1), JobPhase::Done, 100).unwrap();
            j.append(job(0, 2), JobPhase::Intent, 0).unwrap();
        }
        let j = Journal::open_file(&path).unwrap();
        assert_eq!(j.records().len(), 4);
        assert!(!j.dropped_tail());
        assert_eq!(j.phase_of(&job(0, 1)), Some(JobPhase::Done));
        assert_eq!(j.phase_of(&job(0, 2)), Some(JobPhase::Intent));
        assert_eq!(j.phase_of(&job(9, 9)), None);
        assert_eq!(j.committed_bytes(), 100);
        assert_eq!(j.committed_jobs(), 1);
        assert_eq!(j.latest_phases().len(), 2);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = scratch("torn.log");
        {
            let mut j = Journal::open_file(&path).unwrap();
            j.append(job(1, 5), JobPhase::Intent, 0).unwrap();
            j.append(job(1, 5), JobPhase::Committed, 64).unwrap();
        }
        // Simulate a crash mid-append: a prefix of a valid third line.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"fnv1a64:0123456789abcdef {\"seq\":2,\"jo");
        std::fs::write(&path, &bytes).unwrap();

        let j = Journal::open_file(&path).unwrap();
        assert!(j.dropped_tail(), "torn tail must be detected");
        assert_eq!(j.records().len(), 2, "torn record never committed");
        assert_eq!(j.committed_bytes(), 64);
        // The reopen truncated the tail; a fresh open is clean.
        let again = Journal::open_file(&path).unwrap();
        assert!(!again.dropped_tail());
        assert_eq!(again.records().len(), 2);
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_a_drop() {
        let path = scratch("corrupt.log");
        {
            let mut j = Journal::open_file(&path).unwrap();
            j.append(job(2, 8), JobPhase::Intent, 0).unwrap();
            j.append(job(2, 8), JobPhase::Committed, 32).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("fnv1a64", "fnv1a65", 1);
        std::fs::write(&path, corrupted).unwrap();
        assert!(Journal::open_file(&path).is_err(), "mid-log corruption must fail the open");
    }

    #[test]
    fn seq_continues_after_reopen() {
        let path = scratch("seq.log");
        {
            let mut j = Journal::open_file(&path).unwrap();
            j.append(job(3, 1), JobPhase::Intent, 0).unwrap();
        }
        let mut j = Journal::open_file(&path).unwrap();
        let r = j.append(job(3, 1), JobPhase::Aborted, 0).unwrap();
        assert_eq!(r.seq, 1, "sequence numbers continue across restarts");
    }
}
