//! Tiered object store for MiniCost.
//!
//! The batch simulator and the serving loop treat a tier change as a pure
//! ledger entry. This crate makes it *physical*: every tracked file is an
//! object resident on exactly one per-tier vdev, and a tier change is a
//! migration — copy, verify, commit, delete — that can fail, stall, be
//! throttled, and be interrupted by a crash. The serving loop drives the
//! pipeline; this crate guarantees that whatever happens, the pool and the
//! ledger stay mutually consistent:
//!
//! * [`vdev`] — the [`vdev::Vdev`] trait with [`vdev::MemoryVdev`] and
//!   [`vdev::FileVdev`] backends, plus the per-tier latency/bandwidth
//!   model ([`vdev::VdevProfile`]) that prices every transfer in virtual
//!   milliseconds.
//! * [`object`] — checksummed object framing (reusing the snapshot path's
//!   `fnv1a64`) and deterministic payload synthesis, so torn or corrupted
//!   copies are detected by verification rather than trusted.
//! * [`pool`] — the [`pool::StoragePool`]: one vdev per [`pricing::Tier`],
//!   object location tracking, per-tier I/O counters, and seeded fault
//!   consultation (`VdevRead`/`VdevWrite`/`TierFull`/`SlowVdev`).
//! * [`journal`] — the append-only, per-line-checksummed migration journal
//!   that makes every migration a two-phase commit: the `committed` record
//!   is the commit point, and a torn tail line is indistinguishable from
//!   the record never having been written.
//! * [`migrate`] — the batched, bounded migration pipeline: deterministic
//!   exponential backoff on a virtual clock, per-job retry budget and
//!   timeout, bandwidth/inflight throttling, graceful pin-to-source on
//!   budget exhaustion, and journal-driven crash recovery
//!   ([`migrate::recover`]).
//!
//! The headline invariant (DESIGN.md §15): at end of run, the logical
//! bytes the cost ledger billed as tier-change traffic equal the bytes the
//! journal committed — under vdev faults, throttling, pinning, and
//! kill→restore mid-migration.

#![warn(missing_docs)]
// Library code must surface failures as values (L2 no-panic-in-libs); tests
// may unwrap freely.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod journal;
pub mod migrate;
pub mod object;
pub mod pool;
pub mod vdev;

pub use journal::{JobId, JobPhase, Journal, JournalRecord};
pub use migrate::{
    recover, BatchOutcome, MigrateConfig, MigrationEvent, MigrationEventKind, MigrationJob,
    Migrator, RecoveryReport,
};
pub use object::{frame_object, synth_payload, unframe_object, ObjectFrame};
pub use pool::{PoolBuild, StoragePool, TierIo};
pub use vdev::{FileVdev, MemoryVdev, Vdev, VdevError, VdevProfile};

/// How a file's abstract size (GB, the billing unit) maps to the logical
/// bytes a migration moves. Logical bytes are the unit of the bandwidth
/// model, the journal, and the billed-vs-committed invariant; physical
/// payloads are miniature deterministic stand-ins (see
/// [`object::synth_payload`]) so tests and soaks stay fast.
#[must_use]
pub fn logical_bytes(size_gb: f64) -> u64 {
    if !size_gb.is_finite() || size_gb <= 0.0 {
        return 0;
    }
    // 1 GiB = 2^30 bytes, round-to-nearest.
    let bytes = (size_gb * 1_073_741_824.0).round();
    if bytes >= 1.8446744073709552e19 {
        u64::MAX
    } else {
        bytes as u64
    }
}

/// Why a store operation failed unrecoverably (the serving loop maps this
/// to its exit-code-5 "unrecoverable pool" taxonomy entry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// A vdev operation failed outside any retry envelope.
    Vdev(VdevError),
    /// The migration journal could not be read or written.
    Journal(String),
    /// Pool contents and journal disagree in a way recovery cannot
    /// explain (e.g. an object resident on two tiers with no in-flight
    /// job covering it).
    Inconsistent(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Vdev(e) => write!(f, "vdev: {e}"),
            StoreError::Journal(msg) => write!(f, "journal: {msg}"),
            StoreError::Inconsistent(msg) => write!(f, "inconsistent pool: {msg}"),
        }
    }
}

impl From<VdevError> for StoreError {
    fn from(e: VdevError) -> StoreError {
        StoreError::Vdev(e)
    }
}

#[cfg(test)]
mod tests {
    use super::logical_bytes;

    #[test]
    fn logical_bytes_is_deterministic_and_monotone() {
        assert_eq!(logical_bytes(0.0), 0);
        assert_eq!(logical_bytes(-1.0), 0);
        assert_eq!(logical_bytes(f64::NAN), 0);
        assert_eq!(logical_bytes(1.0), 1_073_741_824);
        assert_eq!(logical_bytes(0.5), 536_870_912);
        assert!(logical_bytes(2.0) > logical_bytes(1.0));
        assert_eq!(logical_bytes(f64::MAX), u64::MAX);
    }
}
