//! The batched, bounded migration pipeline and journal-driven recovery.
//!
//! Each tier change the decision loop produces becomes a job:
//! **copy → verify → commit → delete**, journaled as a two-phase commit
//! (see [`crate::journal`]). The pipeline runs under the supervisor idiom:
//! deterministic exponential backoff on a virtual clock, a per-job retry
//! budget, a per-attempt timeout, and graceful degradation — a job that
//! exhausts its budget is *pinned*: the destination copy is rolled back,
//! an `aborted` record lands, and the caller keeps the file billed on its
//! source tier, so the ledger stays truthful instead of the loop wedging.
//!
//! Throttling is virtual-time shaping, not work deferral: every job of a
//! decision batch completes within its day (billing equivalence with the
//! batch simulator is preserved), but `--migrate-bw` caps the modeled
//! bandwidth and `--migrate-inflight` fixes how many virtual lanes drain
//! the queue, which is what the batch's elapsed virtual time — and every
//! incident timestamp downstream — is computed from.
//!
//! The `CrashCopy` fault site fires *between* a job's verified copy and
//! its commit record: the batch stops with `crashed = true`, leaving a
//! destination copy with only an `intent` record — exactly the torn state
//! [`recover`] rolls back deterministically on restart.

use crate::journal::{JobId, JobPhase, Journal};
use crate::pool::StoragePool;
use crate::StoreError;
use stream::FaultSite;

/// Tuning for the migration pipeline (CLI: `--migrate-bw`,
/// `--migrate-inflight`; the retry/backoff family mirrors the
/// supervisor's defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrateConfig {
    /// Bandwidth cap in MiB/s of virtual time; 0 = device speed.
    pub bw_cap_mib_s: u64,
    /// Virtual lanes draining the queue (min 1).
    pub inflight: usize,
    /// Failed attempts tolerated per job before pinning.
    pub retry_budget: u32,
    /// Virtual ms an attempt may take before it counts as failed.
    pub timeout_ms: u64,
    /// Backoff base: attempt `n` waits `base * 2^n` virtual ms...
    pub backoff_base_ms: u64,
    /// ...capped here.
    pub backoff_cap_ms: u64,
}

impl Default for MigrateConfig {
    fn default() -> MigrateConfig {
        MigrateConfig {
            bw_cap_mib_s: 0,
            inflight: 4,
            retry_budget: 8,
            timeout_ms: 120_000,
            backoff_base_ms: 10,
            backoff_cap_ms: 5_000,
        }
    }
}

/// One queued migration: the job id plus the logical bytes it moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationJob {
    /// Identity (day, file, from, to).
    pub id: JobId,
    /// Logical bytes to move (billing/bandwidth unit).
    pub logical_bytes: u64,
}

/// What happened to a migration, for the incident log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationEventKind {
    /// An attempt failed and the job backed off for another try.
    Retried,
    /// The retry budget ran out; the file stays pinned to its source.
    Pinned,
    /// Recovery rolled a torn copy back to the source tier.
    RolledBack,
    /// Recovery rolled a committed-but-uncleaned job forward.
    Replayed,
    /// The injected crash fired between copy and commit.
    Crashed,
}

impl MigrationEventKind {
    /// Stable name for logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MigrationEventKind::Retried => "migration-retried",
            MigrationEventKind::Pinned => "migration-pinned",
            MigrationEventKind::RolledBack => "migration-rolled-back",
            MigrationEventKind::Replayed => "migration-replayed",
            MigrationEventKind::Crashed => "migration-crashed",
        }
    }
}

/// One pipeline anomaly, timed on the batch's virtual clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationEvent {
    /// Virtual ms since the batch started.
    pub at_ms: u64,
    /// What happened.
    pub kind: MigrationEventKind,
    /// The job involved.
    pub job: JobId,
    /// Human-readable cause.
    pub detail: String,
}

/// The result of draining one decision batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Anomalies, in deterministic order.
    pub events: Vec<MigrationEvent>,
    /// Jobs committed in this batch.
    pub committed_jobs: u64,
    /// Logical bytes committed in this batch.
    pub committed_bytes: u64,
    /// Jobs skipped because the journal already recorded them durable
    /// (day replay after a restart).
    pub skipped_jobs: u64,
    /// Jobs pinned to their source tier after retry exhaustion. The
    /// caller must bill these files on the *source* tier.
    pub pinned: Vec<JobId>,
    /// Virtual ms the batch took (max over lanes).
    pub elapsed_ms: u64,
    /// The injected crash fired: the batch stopped mid-pipeline and the
    /// process must abort without billing this day.
    pub crashed: bool,
}

/// Executes migration batches against a pool + journal.
#[derive(Clone, Copy, Debug)]
pub struct Migrator {
    cfg: MigrateConfig,
}

impl Migrator {
    /// A migrator with the given tuning.
    #[must_use]
    pub fn new(cfg: MigrateConfig) -> Migrator {
        Migrator { cfg: MigrateConfig { inflight: cfg.inflight.max(1), ..cfg } }
    }

    /// The configured tuning (inflight normalized to ≥ 1).
    #[must_use]
    pub fn config(&self) -> &MigrateConfig {
        &self.cfg
    }

    /// Deterministic exponential backoff before retry `attempt` (0-based):
    /// `base * 2^attempt`, saturating, capped (the supervisor's curve).
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.cfg.backoff_base_ms.saturating_mul(factor).min(self.cfg.backoff_cap_ms)
    }

    /// Drains one decision batch. Jobs run in the given order; lanes are
    /// filled greedily (least-loaded lane, ties to the lowest index), so
    /// the whole schedule is a pure function of the job list, the pool
    /// state, and the fault plan.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on journal append failures or non-injected vdev
    /// errors outside the retry envelope — the unrecoverable-pool path.
    pub fn run_batch(
        &self,
        pool: &mut StoragePool,
        journal: &mut Journal,
        jobs: &[MigrationJob],
    ) -> Result<BatchOutcome, StoreError> {
        let mut out = BatchOutcome::default();
        let mut lanes = vec![0u64; self.cfg.inflight.max(1)];
        for job in jobs {
            let id = job.id;
            match journal.phase_of(&id) {
                Some(JobPhase::Done) => {
                    // Fully applied before the restart; just assert truth.
                    pool.set_location(id.file, id.to);
                    out.skipped_jobs += 1;
                    continue;
                }
                Some(JobPhase::Committed) => {
                    // Commit is durable; finish the cleanup half.
                    pool.delete_frame(id.from, id.file).map_err(StoreError::Vdev)?;
                    journal
                        .append(id, JobPhase::Done, job.logical_bytes)
                        .map_err(StoreError::Journal)?;
                    pool.set_location(id.file, id.to);
                    out.skipped_jobs += 1;
                    continue;
                }
                _ => {}
            }

            // Least-loaded lane, ties to the lowest index.
            let (lane_ix, lane_start) = lanes
                .iter()
                .copied()
                .enumerate()
                .fold((0usize, u64::MAX), |best, (ix, t)| if t < best.1 { (ix, t) } else { best });
            let mut clock = lane_start;

            journal.append(id, JobPhase::Intent, job.logical_bytes).map_err(StoreError::Journal)?;
            let mut attempt = 0u32;
            let copied = loop {
                match self.attempt(pool, job) {
                    Ok(ms) => {
                        clock = clock.saturating_add(ms);
                        break true;
                    }
                    Err((ms, why)) => {
                        clock = clock.saturating_add(ms);
                        if attempt >= self.cfg.retry_budget {
                            break false;
                        }
                        let pause = self.backoff_ms(attempt);
                        clock = clock.saturating_add(pause);
                        out.events.push(MigrationEvent {
                            at_ms: clock,
                            kind: MigrationEventKind::Retried,
                            job: id,
                            detail: format!("attempt {attempt}: {why}; backoff {pause}ms"),
                        });
                        attempt += 1;
                    }
                }
            };

            if copied {
                if pool.fires(FaultSite::CrashCopy) {
                    // Simulated kill between copy and commit: destination
                    // copy resident, journal still at `intent`. The
                    // process aborts; restart recovery rolls this back.
                    out.events.push(MigrationEvent {
                        at_ms: clock,
                        kind: MigrationEventKind::Crashed,
                        job: id,
                        detail: "injected crash between copy and commit".to_owned(),
                    });
                    out.crashed = true;
                    if let Some(slot) = lanes.get_mut(lane_ix) {
                        *slot = clock;
                    }
                    out.elapsed_ms = lanes.iter().copied().max().unwrap_or(0);
                    return Ok(out);
                }
                journal
                    .append(id, JobPhase::Committed, job.logical_bytes)
                    .map_err(StoreError::Journal)?;
                pool.delete_frame(id.from, id.file).map_err(StoreError::Vdev)?;
                journal
                    .append(id, JobPhase::Done, job.logical_bytes)
                    .map_err(StoreError::Journal)?;
                pool.set_location(id.file, id.to);
                out.committed_jobs += 1;
                out.committed_bytes = out.committed_bytes.saturating_add(job.logical_bytes);
            } else {
                // Budget exhausted: roll back and pin to the source tier.
                pool.delete_frame(id.to, id.file).map_err(StoreError::Vdev)?;
                journal.append(id, JobPhase::Aborted, 0).map_err(StoreError::Journal)?;
                pool.set_location(id.file, id.from);
                out.events.push(MigrationEvent {
                    at_ms: clock,
                    kind: MigrationEventKind::Pinned,
                    job: id,
                    detail: format!(
                        "retry budget ({}) exhausted; pinned to {}",
                        self.cfg.retry_budget,
                        id.from.name()
                    ),
                });
                out.pinned.push(id);
            }
            if let Some(slot) = lanes.get_mut(lane_ix) {
                *slot = clock;
            }
        }
        out.elapsed_ms = lanes.iter().copied().max().unwrap_or(0);
        Ok(out)
    }

    /// One copy+verify attempt. Returns the attempt's virtual ms on
    /// success, or `(ms consumed, reason)` on failure with the
    /// destination cleaned up.
    fn attempt(&self, pool: &mut StoragePool, job: &MigrationJob) -> Result<u64, (u64, String)> {
        let id = job.id;
        let cap = self.cfg.bw_cap_mib_s;
        let mut ms = 0u64;
        let src = match pool.read_frame(id.from, id.file, job.logical_bytes, cap) {
            Ok((bytes, t)) => {
                ms = ms.saturating_add(t);
                bytes
            }
            Err(e) => return Err((ms, format!("copy read: {e}"))),
        };
        match pool.write_frame(id.to, id.file, &src, job.logical_bytes, cap) {
            Ok(t) => ms = ms.saturating_add(t),
            Err(e) => return Err((ms, format!("copy write: {e}"))),
        }
        // Verify: re-read the destination and require bit-identity with
        // the source frame (the frame embeds the payload digest, so this
        // subsumes a checksum pass).
        match pool.read_frame(id.to, id.file, job.logical_bytes, cap) {
            Ok((back, t)) => {
                ms = ms.saturating_add(t);
                if back != src {
                    let _ = pool.delete_frame(id.to, id.file);
                    return Err((ms, "verify: destination differs from source".to_owned()));
                }
            }
            Err(e) => {
                let _ = pool.delete_frame(id.to, id.file);
                return Err((ms, format!("verify read: {e}")));
            }
        }
        if ms > self.cfg.timeout_ms {
            let _ = pool.delete_frame(id.to, id.file);
            return Err((ms, format!("timeout: attempt took {ms}ms > {}ms", self.cfg.timeout_ms)));
        }
        Ok(ms)
    }
}

/// What recovery did at startup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Jobs rolled back (dangling `intent`: torn or unverified copies).
    pub rolled_back: Vec<JobId>,
    /// Jobs rolled forward (`committed` without `done`).
    pub replayed: Vec<JobId>,
    /// Whether the journal dropped a torn tail line on open.
    pub dropped_tail: bool,
}

/// Replays the journal against the pool: torn migrations roll back,
/// committed-but-uncleaned migrations roll forward, and every surviving
/// cross-tier duplicate must be explained or the pool is declared
/// inconsistent. Deterministic: jobs are processed in `JobId` order.
///
/// # Errors
///
/// [`StoreError`] on journal/vdev failures or unexplained duplicates —
/// the unrecoverable-pool path (CLI exit code 5).
pub fn recover(
    pool: &mut StoragePool,
    journal: &mut Journal,
) -> Result<RecoveryReport, StoreError> {
    let mut report =
        RecoveryReport { dropped_tail: journal.dropped_tail(), ..RecoveryReport::default() };
    for (id, phase) in journal.latest_phases() {
        match phase {
            JobPhase::Intent => {
                // The copy may be absent, torn, or even complete — without
                // a commit record it never happened. Delete the
                // destination copy and keep the source authoritative.
                pool.delete_frame(id.to, id.file).map_err(StoreError::Vdev)?;
                journal.append(id, JobPhase::Aborted, 0).map_err(StoreError::Journal)?;
                if pool.contains_at(id.from, id.file) {
                    pool.set_location(id.file, id.from);
                } else {
                    return Err(StoreError::Inconsistent(format!(
                        "rollback of {id}: source object missing"
                    )));
                }
                report.rolled_back.push(id);
            }
            JobPhase::Committed => {
                // The commit record is durable: the destination copy
                // verified. Finish the cleanup half idempotently.
                if !pool.contains_at(id.to, id.file) {
                    return Err(StoreError::Inconsistent(format!(
                        "replay of {id}: committed destination object missing"
                    )));
                }
                pool.delete_frame(id.from, id.file).map_err(StoreError::Vdev)?;
                journal.append(id, JobPhase::Done, 0).map_err(StoreError::Journal)?;
                pool.set_location(id.file, id.to);
                report.replayed.push(id);
            }
            JobPhase::Done => {
                if pool.contains_at(id.to, id.file) {
                    pool.set_location(id.file, id.to);
                }
            }
            JobPhase::Aborted => {}
        }
    }
    let leftover = pool.duplicate_keys();
    if !leftover.is_empty() {
        return Err(StoreError::Inconsistent(format!(
            "{} object(s) resident on multiple tiers with no explaining journal record \
             (first: {:016x})",
            leftover.len(),
            leftover.first().copied().unwrap_or(0)
        )));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{frame_object, synth_payload};
    use pricing::Tier;
    use stream::FaultPlan;

    fn job(day: usize, file: u64, from: Tier, to: Tier, bytes: u64) -> MigrationJob {
        MigrationJob { id: JobId { day, file, from, to }, logical_bytes: bytes }
    }

    fn seeded_pool(files: u64) -> StoragePool {
        let mut pool = StoragePool::memory();
        for f in 0..files {
            pool.put(f, Tier::Hot, 1000 + f * 37).unwrap();
        }
        pool
    }

    #[test]
    fn happy_path_commits_every_job() {
        let mut pool = seeded_pool(5);
        let mut journal = Journal::in_memory();
        let jobs: Vec<MigrationJob> =
            (0..5).map(|f| job(0, f, Tier::Hot, Tier::Cool, 1000 + f * 37)).collect();
        let out = Migrator::new(MigrateConfig::default())
            .run_batch(&mut pool, &mut journal, &jobs)
            .unwrap();
        assert_eq!(out.committed_jobs, 5);
        assert!(out.events.is_empty());
        assert!(!out.crashed);
        let expect: u64 = (0..5u64).map(|f| 1000 + f * 37).sum();
        assert_eq!(out.committed_bytes, expect);
        assert_eq!(journal.committed_bytes(), expect);
        for f in 0..5 {
            assert_eq!(pool.location(f), Some(Tier::Cool));
            assert!(!pool.contains_at(Tier::Hot, f), "source must be deleted");
        }
        assert!(out.elapsed_ms > 0);
    }

    #[test]
    fn inflight_lanes_shrink_elapsed_time() {
        let elapsed = |inflight: usize| {
            let mut pool = seeded_pool(8);
            let mut journal = Journal::in_memory();
            let jobs: Vec<MigrationJob> =
                (0..8).map(|f| job(0, f, Tier::Hot, Tier::Archive, 1 << 26)).collect();
            let cfg = MigrateConfig { inflight, ..MigrateConfig::default() };
            Migrator::new(cfg).run_batch(&mut pool, &mut journal, &jobs).unwrap().elapsed_ms
        };
        let serial = elapsed(1);
        let four = elapsed(4);
        assert!(four < serial, "4 lanes ({four}ms) must beat 1 lane ({serial}ms)");
    }

    #[test]
    fn bandwidth_cap_stretches_elapsed_time() {
        let elapsed = |cap: u64| {
            let mut pool = seeded_pool(2);
            let mut journal = Journal::in_memory();
            let jobs = vec![
                job(0, 0, Tier::Hot, Tier::Cool, 1 << 28),
                job(0, 1, Tier::Hot, Tier::Cool, 1 << 28),
            ];
            let cfg = MigrateConfig { bw_cap_mib_s: cap, inflight: 1, ..MigrateConfig::default() };
            Migrator::new(cfg).run_batch(&mut pool, &mut journal, &jobs).unwrap().elapsed_ms
        };
        assert!(elapsed(10) > elapsed(0), "a 10 MiB/s cap must stretch virtual time");
    }

    #[test]
    fn transient_faults_retry_then_commit() {
        let mut pool = seeded_pool(1);
        let plan = FaultPlan { vdev_write_permille: 600, max_faults: 3, ..FaultPlan::quiet(11) };
        pool.attach_injector(plan.injector());
        let mut journal = Journal::in_memory();
        let out = Migrator::new(MigrateConfig::default())
            .run_batch(&mut pool, &mut journal, &[job(0, 0, Tier::Hot, Tier::Cool, 1000)])
            .unwrap();
        assert_eq!(out.committed_jobs, 1, "a budgeted fault plan must not stop the job");
        assert!(
            out.events.iter().all(|e| e.kind == MigrationEventKind::Retried),
            "only retry events expected: {:?}",
            out.events
        );
        assert_eq!(pool.location(0), Some(Tier::Cool));
    }

    #[test]
    fn budget_exhaustion_pins_to_source() {
        let mut pool = seeded_pool(2);
        // Unlimited write faults: the job can never land its copy.
        let plan = FaultPlan { vdev_write_permille: 1000, ..FaultPlan::quiet(13) };
        pool.attach_injector(plan.injector());
        let mut journal = Journal::in_memory();
        let cfg = MigrateConfig { retry_budget: 3, ..MigrateConfig::default() };
        let out = Migrator::new(cfg)
            .run_batch(&mut pool, &mut journal, &[job(0, 0, Tier::Hot, Tier::Cool, 1000)])
            .unwrap();
        assert_eq!(out.committed_jobs, 0);
        assert_eq!(out.pinned, vec![JobId { day: 0, file: 0, from: Tier::Hot, to: Tier::Cool }]);
        let pins = out.events.iter().filter(|e| e.kind == MigrationEventKind::Pinned).count();
        assert_eq!(pins, 1);
        assert_eq!(pool.location(0), Some(Tier::Hot), "file stays on its source tier");
        assert!(!pool.contains_at(Tier::Cool, 0), "partial copies must be cleaned");
        assert_eq!(journal.committed_bytes(), 0);
        assert_eq!(journal.phase_of(&out.pinned[0]).unwrap(), JobPhase::Aborted);
    }

    #[test]
    fn slow_vdev_trips_the_timeout_then_pins() {
        let mut pool = seeded_pool(1);
        let plan = FaultPlan { slow_vdev_permille: 1000, ..FaultPlan::quiet(17) };
        pool.attach_injector(plan.injector());
        let mut journal = Journal::in_memory();
        // Archive write latency 100ms × 25 inflation > 1s timeout.
        let cfg = MigrateConfig { timeout_ms: 1000, retry_budget: 2, ..MigrateConfig::default() };
        let out = Migrator::new(cfg)
            .run_batch(&mut pool, &mut journal, &[job(0, 0, Tier::Hot, Tier::Archive, 1 << 20)])
            .unwrap();
        assert_eq!(out.committed_jobs, 0, "permanently slow vdev must pin");
        assert!(out.events.iter().any(|e| e.detail.contains("timeout")), "{:?}", out.events);
        assert_eq!(pool.location(0), Some(Tier::Hot));
    }

    #[test]
    fn crash_between_copy_and_commit_leaves_torn_state() {
        let mut pool = seeded_pool(3);
        pool.attach_injector(FaultPlan::store_crash(5).injector());
        let mut journal = Journal::in_memory();
        let jobs: Vec<MigrationJob> =
            (0..3).map(|f| job(0, f, Tier::Hot, Tier::Cool, 500)).collect();
        let out = Migrator::new(MigrateConfig::default())
            .run_batch(&mut pool, &mut journal, &jobs)
            .unwrap();
        assert!(out.crashed);
        assert_eq!(out.committed_jobs, 0, "the crash fires before the first commit");
        // Torn state: both copies resident, journal still at intent.
        assert!(pool.contains_at(Tier::Hot, 0) && pool.contains_at(Tier::Cool, 0));
        assert_eq!(journal.phase_of(&jobs[0].id).unwrap(), JobPhase::Intent);
        assert_eq!(journal.committed_bytes(), 0);
    }

    #[test]
    fn recover_rolls_back_torn_and_rolls_forward_committed() {
        let mut pool = seeded_pool(4);
        let mut journal = Journal::in_memory();
        // Job A: dangling intent with a (complete) destination copy.
        let a = JobId { day: 2, file: 0, from: Tier::Hot, to: Tier::Cool };
        journal.append(a, JobPhase::Intent, 700).unwrap();
        let frame = frame_object(700, &synth_payload(0, 700));
        pool.write_frame(Tier::Cool, 0, &frame, 700, 0).unwrap();
        // Job B: committed but the source was never deleted.
        let b = JobId { day: 2, file: 1, from: Tier::Hot, to: Tier::Archive };
        journal.append(b, JobPhase::Intent, 900).unwrap();
        let frame = frame_object(900, &synth_payload(1, 900));
        pool.write_frame(Tier::Archive, 1, &frame, 900, 0).unwrap();
        journal.append(b, JobPhase::Committed, 900).unwrap();

        let report = recover(&mut pool, &mut journal).unwrap();
        assert_eq!(report.rolled_back, vec![a]);
        assert_eq!(report.replayed, vec![b]);
        assert_eq!(pool.location(0), Some(Tier::Hot), "torn copy rolls back");
        assert!(!pool.contains_at(Tier::Cool, 0));
        assert_eq!(pool.location(1), Some(Tier::Archive), "committed copy rolls forward");
        assert!(!pool.contains_at(Tier::Hot, 1));
        assert_eq!(journal.phase_of(&a).unwrap(), JobPhase::Aborted);
        assert_eq!(journal.phase_of(&b).unwrap(), JobPhase::Done);
        assert_eq!(journal.committed_bytes(), 900, "commit counted exactly once");
        assert!(pool.duplicate_keys().is_empty());
        // Recovery is idempotent.
        let again = recover(&mut pool, &mut journal).unwrap();
        assert!(again.rolled_back.is_empty() && again.replayed.is_empty());
    }

    #[test]
    fn unexplained_duplicates_fail_recovery() {
        let mut pool = seeded_pool(1);
        let frame = frame_object(123, &synth_payload(0, 123));
        pool.write_frame(Tier::Archive, 0, &frame, 123, 0).unwrap();
        let mut journal = Journal::in_memory();
        match recover(&mut pool, &mut journal) {
            Err(StoreError::Inconsistent(msg)) => assert!(msg.contains("multiple tiers")),
            other => panic!("expected Inconsistent, got {other:?}"),
        }
    }

    #[test]
    fn replayed_batch_skips_durable_jobs() {
        // Run a batch, then re-run the same decisions (day replay after
        // restart): nothing is recopied, no bytes double-count.
        let mut pool = seeded_pool(3);
        let mut journal = Journal::in_memory();
        let jobs: Vec<MigrationJob> =
            (0..3).map(|f| job(1, f, Tier::Hot, Tier::Cool, 400)).collect();
        let m = Migrator::new(MigrateConfig::default());
        let first = m.run_batch(&mut pool, &mut journal, &jobs).unwrap();
        assert_eq!(first.committed_jobs, 3);
        let second = m.run_batch(&mut pool, &mut journal, &jobs).unwrap();
        assert_eq!(second.committed_jobs, 0);
        assert_eq!(second.skipped_jobs, 3);
        assert_eq!(second.committed_bytes, 0);
        assert_eq!(journal.committed_bytes(), 1200, "bytes counted exactly once");
    }
}
