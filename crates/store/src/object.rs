//! Checksummed object framing and deterministic payload synthesis.
//!
//! Every object a vdev stores is a *frame*: a one-line ASCII header
//! carrying the payload's FNV-1a digest, the file's logical size (the
//! billing/bandwidth unit), and the physical payload length, followed by
//! the payload bytes. The header reuses the snapshot path's `fnv1a64`
//! (DESIGN.md §10) so a torn copy, a bit flip, or a wrong-length write is
//! detected at verification time instead of silently committed.
//!
//! Payloads are deterministic functions of `(key, logical_bytes)` — a few
//! KiB of splitmix64 output standing in for what would be gigabytes in a
//! real deployment — so any two correct copies of an object are
//! bit-identical and a migration's verify step is a pure digest compare.

use stream::{fnv1a64, mix64};

/// Frame header magic; version-bumped if the layout ever changes.
const MAGIC: &str = "minicost-object v1";

/// A parsed object frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectFrame {
    /// FNV-1a 64 digest of the payload bytes.
    pub digest: u64,
    /// The file's logical size in bytes (billing/bandwidth unit).
    pub logical_bytes: u64,
    /// The physical payload.
    pub payload: Vec<u8>,
}

/// Synthesizes the deterministic stand-in payload for `(key,
/// logical_bytes)`: 64..=4159 bytes of seeded splitmix64 output. The
/// length and every byte depend on both inputs, so objects of different
/// files or sizes never collide.
#[must_use]
pub fn synth_payload(key: u64, logical_bytes: u64) -> Vec<u8> {
    let seed = mix64(key ^ mix64(logical_bytes) ^ 0x4f42_4a45_4354_5631);
    // Bit-mask instead of modulo keeps this branch-free and lint-quiet:
    // lengths land in 64..=4159.
    let len = 64 + (mix64(seed) & 0x0FFF) as usize;
    let mut payload = Vec::with_capacity(len);
    let mut word = 0u64;
    while payload.len() < len {
        let w = mix64(seed ^ word);
        for b in w.to_le_bytes() {
            if payload.len() < len {
                payload.push(b);
            }
        }
        word = word.wrapping_add(1);
    }
    payload
}

/// Frames `payload` with its digest and the file's logical size.
#[must_use]
pub fn frame_object(logical_bytes: u64, payload: &[u8]) -> Vec<u8> {
    let digest = fnv1a64(payload);
    let header =
        format!("{MAGIC} fnv1a64:{digest:016x} logical:{logical_bytes} len:{}\n", payload.len());
    let mut frame = Vec::with_capacity(header.len() + payload.len());
    frame.extend_from_slice(header.as_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Parses and verifies a frame: header shape, payload length, and digest
/// must all hold.
///
/// # Errors
///
/// Returns a description of the first mismatch (torn frame, wrong magic,
/// corrupted payload).
pub fn unframe_object(bytes: &[u8]) -> Result<ObjectFrame, String> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| "frame: missing header line".to_owned())?;
    let (header_bytes, rest) = bytes.split_at(newline);
    let payload = rest.get(1..).unwrap_or(&[]);
    let header =
        std::str::from_utf8(header_bytes).map_err(|_| "frame: non-ascii header".to_owned())?;
    let fields =
        header.strip_prefix(MAGIC).ok_or_else(|| format!("frame: bad magic in {header:?}"))?;
    let mut digest = None;
    let mut logical = None;
    let mut len = None;
    for field in fields.split_whitespace() {
        if let Some(hex) = field.strip_prefix("fnv1a64:") {
            digest = u64::from_str_radix(hex, 16).ok();
        } else if let Some(n) = field.strip_prefix("logical:") {
            logical = n.parse::<u64>().ok();
        } else if let Some(n) = field.strip_prefix("len:") {
            len = n.parse::<usize>().ok();
        }
    }
    let (digest, logical_bytes, len) = match (digest, logical, len) {
        (Some(d), Some(g), Some(l)) => (d, g, l),
        _ => return Err(format!("frame: malformed header {header:?}")),
    };
    if payload.len() != len {
        return Err(format!("frame: torn payload ({} of {len} bytes)", payload.len()));
    }
    let actual = fnv1a64(payload);
    if actual != digest {
        return Err(format!("frame: digest mismatch ({actual:016x} != {digest:016x})"));
    }
    Ok(ObjectFrame { digest, logical_bytes, payload: payload.to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_and_input_sensitive() {
        assert_eq!(synth_payload(1, 1000), synth_payload(1, 1000));
        assert_ne!(synth_payload(1, 1000), synth_payload(2, 1000));
        assert_ne!(synth_payload(1, 1000), synth_payload(1, 1001));
        for key in 0..50 {
            let len = synth_payload(key, key * 977).len();
            assert!((64..=4159).contains(&len), "payload length {len} out of range");
        }
    }

    #[test]
    fn frame_round_trips() {
        let payload = synth_payload(7, 12345);
        let frame = frame_object(12345, &payload);
        let parsed = unframe_object(&frame).unwrap();
        assert_eq!(parsed.logical_bytes, 12345);
        assert_eq!(parsed.payload, payload);
        assert_eq!(parsed.digest, stream::fnv1a64(&payload));
    }

    #[test]
    fn torn_and_corrupt_frames_are_rejected() {
        let payload = synth_payload(9, 4096);
        let frame = frame_object(4096, &payload);
        // Every strict prefix fails (torn copy at any byte offset).
        for cut in 0..frame.len() {
            assert!(
                unframe_object(&frame[..cut]).is_err(),
                "prefix of {cut} bytes must not verify"
            );
        }
        // Any single flipped payload byte fails the digest.
        let mut flipped = frame.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(unframe_object(&flipped).is_err());
        // Garbage fails on magic.
        assert!(unframe_object(b"not a frame\nxx").is_err());
        assert!(unframe_object(b"").is_err());
    }
}
