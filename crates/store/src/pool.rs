//! The [`StoragePool`]: one vdev per tier, object locations, I/O
//! accounting, and seeded fault consultation.
//!
//! The pool is the single chokepoint every store byte moves through, so
//! it owns the three concerns the migration pipeline composes:
//!
//! * **Location truth** — each tracked file resides on exactly one tier;
//!   a file found on two tiers is an in-flight migration the journal must
//!   explain (see [`crate::migrate::recover`]).
//! * **Virtual-time accounting** — every transfer is priced by the tier's
//!   [`VdevProfile`] in virtual milliseconds; the wall clock is never
//!   consulted, so runs replay bit-identically.
//! * **Fault consultation** — reads, writes, and allocations consult the
//!   shared seeded injector (`VdevRead`, `VdevWrite`, `TierFull`,
//!   `SlowVdev`) exactly once each in a fixed order. Initial placement
//!   (`put`) deliberately bypasses injection: chaos targets the migration
//!   path, not run setup.

use crate::object::{frame_object, synth_payload, unframe_object, ObjectFrame};
use crate::vdev::{FileVdev, MemoryVdev, Vdev, VdevError, VdevProfile};
use crate::StoreError;
use pricing::{Tier, TIER_COUNT};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use stream::{FaultSite, SharedInjector};

/// Latency inflation factor applied when the `SlowVdev` fault fires on a
/// transfer. Large enough that a default-profile transfer can trip a
/// tight migration timeout, small enough that the default timeout
/// tolerates it.
const SLOW_VDEV_FACTOR: u64 = 25;

/// One value per tier, addressed by [`Tier`] without any indexing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct PerTier<T> {
    hot: T,
    cool: T,
    archive: T,
}

impl<T> PerTier<T> {
    fn get(&self, tier: Tier) -> &T {
        match tier {
            Tier::Hot => &self.hot,
            Tier::Cool => &self.cool,
            Tier::Archive => &self.archive,
        }
    }

    fn get_mut(&mut self, tier: Tier) -> &mut T {
        match tier {
            Tier::Hot => &mut self.hot,
            Tier::Cool => &mut self.cool,
            Tier::Archive => &mut self.archive,
        }
    }
}

/// Per-tier I/O counters, in logical bytes (the bandwidth/billing unit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierIo {
    /// Successful object reads.
    pub read_ops: u64,
    /// Successful object writes.
    pub write_ops: u64,
    /// Object deletes (including idempotent no-ops).
    pub delete_ops: u64,
    /// Logical bytes read.
    pub read_bytes: u64,
    /// Logical bytes written.
    pub write_bytes: u64,
}

/// How to construct a pool (the CLI/server-config spelling).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolBuild {
    /// In-memory vdevs: fast, ephemeral, cannot survive a restart.
    Memory,
    /// File vdevs under `<dir>/hot`, `<dir>/cool`, `<dir>/archive`, with
    /// the migration journal at `<dir>/journal.log`.
    Dir(PathBuf),
}

impl PoolBuild {
    /// The journal path for this build, if durable.
    #[must_use]
    pub fn journal_path(&self) -> Option<PathBuf> {
        match self {
            PoolBuild::Memory => None,
            PoolBuild::Dir(dir) => Some(dir.join("journal.log")),
        }
    }
}

/// A tiered pool of vdevs with location tracking and fault injection.
pub struct StoragePool {
    vdevs: PerTier<Box<dyn Vdev>>,
    profiles: PerTier<VdevProfile>,
    locations: BTreeMap<u64, Tier>,
    io: PerTier<TierIo>,
    injector: Option<SharedInjector>,
    virtual_ms: u64,
}

impl std::fmt::Debug for StoragePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoragePool")
            .field("objects", &self.locations.len())
            .field("virtual_ms", &self.virtual_ms)
            .finish()
    }
}

impl StoragePool {
    /// An empty in-memory pool with the standard tier profiles.
    #[must_use]
    pub fn memory() -> StoragePool {
        StoragePool {
            vdevs: PerTier {
                hot: Box::new(MemoryVdev::new()) as Box<dyn Vdev>,
                cool: Box::new(MemoryVdev::new()),
                archive: Box::new(MemoryVdev::new()),
            },
            profiles: PerTier {
                hot: VdevProfile::standard(Tier::Hot),
                cool: VdevProfile::standard(Tier::Cool),
                archive: VdevProfile::standard(Tier::Archive),
            },
            locations: BTreeMap::new(),
            io: PerTier::default(),
            injector: None,
            virtual_ms: 0,
        }
    }

    /// Opens (creating as needed) a file-backed pool under `dir`,
    /// scanning existing objects into the location map. Objects found on
    /// more than one tier are left unlocated; journal recovery must
    /// resolve them before the pool is usable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Vdev`] if the tier directories cannot be created.
    pub fn open_dir(dir: &Path) -> Result<StoragePool, StoreError> {
        let mut pool = StoragePool::memory();
        pool.vdevs = PerTier {
            hot: Box::new(FileVdev::open(&dir.join("hot"), None)?) as Box<dyn Vdev>,
            cool: Box::new(FileVdev::open(&dir.join("cool"), None)?),
            archive: Box::new(FileVdev::open(&dir.join("archive"), None)?),
        };
        pool.locations = BTreeMap::new();
        for tier in Tier::ALL {
            for key in pool.vdevs.get(tier).keys() {
                match pool.locations.entry(key) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(tier);
                    }
                    std::collections::btree_map::Entry::Occupied(o) => {
                        // Duplicate across tiers: in-flight migration.
                        o.remove();
                    }
                }
            }
        }
        Ok(pool)
    }

    /// Builds a pool from its config spelling.
    ///
    /// # Errors
    ///
    /// See [`StoragePool::open_dir`].
    pub fn build(spec: &PoolBuild) -> Result<StoragePool, StoreError> {
        match spec {
            PoolBuild::Memory => Ok(StoragePool::memory()),
            PoolBuild::Dir(dir) => StoragePool::open_dir(dir),
        }
    }

    /// Replaces a tier's vdev (tests: capacity-bounded or pre-seeded
    /// devices). Clears nothing else; call before any I/O.
    pub fn set_vdev(&mut self, tier: Tier, vdev: Box<dyn Vdev>) {
        *self.vdevs.get_mut(tier) = vdev;
    }

    /// Attaches the seeded fault injector consulted by read/write paths.
    pub fn attach_injector(&mut self, injector: SharedInjector) {
        self.injector = Some(injector);
    }

    /// Consults a fault site on the shared injector, if one is attached.
    #[must_use]
    pub fn fires(&mut self, site: FaultSite) -> bool {
        match &self.injector {
            Some(inj) => inj.borrow_mut().fires(site),
            None => false,
        }
    }

    /// The tier an object resides on, if located.
    #[must_use]
    pub fn location(&self, key: u64) -> Option<Tier> {
        self.locations.get(&key).copied()
    }

    /// Number of located objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the pool holds no located objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Records an object's location (recovery and commit paths).
    pub fn set_location(&mut self, key: u64, tier: Tier) {
        self.locations.insert(key, tier);
    }

    /// Whether `key`'s object (possibly torn) is resident on `tier`.
    #[must_use]
    pub fn contains_at(&self, tier: Tier, key: u64) -> bool {
        self.vdevs.get(tier).contains(key)
    }

    /// Keys resident on more than one tier (unresolved migrations).
    #[must_use]
    pub fn duplicate_keys(&self) -> Vec<u64> {
        let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
        for tier in Tier::ALL {
            for key in self.vdevs.get(tier).keys() {
                *counts.entry(key).or_insert(0) += 1;
            }
        }
        counts.into_iter().filter(|&(_, n)| n > 1).map(|(k, _)| k).collect()
    }

    /// Initial placement: synthesizes and stores `key`'s object on `tier`
    /// if not already located. Bypasses fault injection (setup, not
    /// migration) but still counts I/O and virtual time.
    ///
    /// # Errors
    ///
    /// Propagates vdev failures (including real capacity exhaustion).
    pub fn put(&mut self, key: u64, tier: Tier, logical_bytes: u64) -> Result<(), StoreError> {
        if self.locations.contains_key(&key) {
            return Ok(());
        }
        if self.vdevs.get(tier).contains(key) {
            // Already on disk from a previous run; adopt it.
            self.locations.insert(key, tier);
            return Ok(());
        }
        let frame = frame_object(logical_bytes, &synth_payload(key, logical_bytes));
        self.vdevs.get_mut(tier).write(key, &frame)?;
        let ms = self.profiles.get(tier).transfer_ms(true, logical_bytes, 0);
        self.account_write(tier, logical_bytes, ms);
        self.locations.insert(key, tier);
        Ok(())
    }

    /// Reads and verifies `key`'s object from its located tier.
    ///
    /// # Errors
    ///
    /// [`StoreError::Inconsistent`] if unlocated, [`StoreError::Vdev`] on
    /// read failure (including injected), [`StoreError::Inconsistent`] on
    /// frame corruption.
    pub fn get(&mut self, key: u64) -> Result<ObjectFrame, StoreError> {
        let tier = self
            .location(key)
            .ok_or_else(|| StoreError::Inconsistent(format!("object {key:016x} unlocated")))?;
        if self.fires(FaultSite::VdevRead) {
            return Err(StoreError::Vdev(VdevError::Io("injected vdev read fault".to_owned())));
        }
        let bytes = self.vdevs.get_mut(tier).read(key).map_err(StoreError::Vdev)?;
        let frame = unframe_object(&bytes).map_err(StoreError::Inconsistent)?;
        let mut ms = self.profiles.get(tier).transfer_ms(false, frame.logical_bytes, 0);
        if self.fires(FaultSite::SlowVdev) {
            ms = ms.saturating_mul(SLOW_VDEV_FACTOR);
        }
        let io = self.io.get_mut(tier);
        io.read_ops += 1;
        io.read_bytes = io.read_bytes.saturating_add(frame.logical_bytes);
        self.virtual_ms = self.virtual_ms.saturating_add(ms);
        Ok(frame)
    }

    /// Reads an object's raw frame from a specific tier, consulting the
    /// `VdevRead` and `SlowVdev` fault sites and charging virtual time
    /// for `logical_bytes` at the tier's profile (optionally capped by
    /// `bw_cap_mib_s`). Returns the frame and the virtual ms charged.
    ///
    /// # Errors
    ///
    /// [`VdevError`] on failure (injected failures charge no time).
    pub fn read_frame(
        &mut self,
        tier: Tier,
        key: u64,
        logical_bytes: u64,
        bw_cap_mib_s: u64,
    ) -> Result<(Vec<u8>, u64), VdevError> {
        if self.fires(FaultSite::VdevRead) {
            return Err(VdevError::Io("injected vdev read fault".to_owned()));
        }
        let bytes = self.vdevs.get_mut(tier).read(key)?;
        let mut ms = self.profiles.get(tier).transfer_ms(false, logical_bytes, bw_cap_mib_s);
        if self.fires(FaultSite::SlowVdev) {
            ms = ms.saturating_mul(SLOW_VDEV_FACTOR);
        }
        let io = self.io.get_mut(tier);
        io.read_ops += 1;
        io.read_bytes = io.read_bytes.saturating_add(logical_bytes);
        self.virtual_ms = self.virtual_ms.saturating_add(ms);
        Ok((bytes, ms))
    }

    /// Writes an object's raw frame to a specific tier, consulting the
    /// `TierFull`, `VdevWrite`, and `SlowVdev` fault sites and charging
    /// virtual time as [`StoragePool::read_frame`] does.
    ///
    /// # Errors
    ///
    /// [`VdevError`] on failure (injected failures charge no time).
    pub fn write_frame(
        &mut self,
        tier: Tier,
        key: u64,
        frame: &[u8],
        logical_bytes: u64,
        bw_cap_mib_s: u64,
    ) -> Result<u64, VdevError> {
        if self.fires(FaultSite::TierFull) {
            return Err(VdevError::Full { needed: logical_bytes, free: 0 });
        }
        if self.fires(FaultSite::VdevWrite) {
            return Err(VdevError::Io("injected vdev write fault".to_owned()));
        }
        self.vdevs.get_mut(tier).write(key, frame)?;
        let mut ms = self.profiles.get(tier).transfer_ms(true, logical_bytes, bw_cap_mib_s);
        if self.fires(FaultSite::SlowVdev) {
            ms = ms.saturating_mul(SLOW_VDEV_FACTOR);
        }
        let io = self.io.get_mut(tier);
        io.write_ops += 1;
        io.write_bytes = io.write_bytes.saturating_add(logical_bytes);
        self.virtual_ms = self.virtual_ms.saturating_add(ms);
        Ok(ms)
    }

    /// Deletes an object's frame from a specific tier (idempotent, never
    /// fault-injected: deletes sit on the commit/rollback paths, which
    /// must converge).
    ///
    /// # Errors
    ///
    /// [`VdevError::Io`] on real I/O failure.
    pub fn delete_frame(&mut self, tier: Tier, key: u64) -> Result<(), VdevError> {
        self.vdevs.get_mut(tier).delete(key)?;
        self.io.get_mut(tier).delete_ops += 1;
        Ok(())
    }

    fn account_write(&mut self, tier: Tier, logical_bytes: u64, ms: u64) {
        let io = self.io.get_mut(tier);
        io.write_ops += 1;
        io.write_bytes = io.write_bytes.saturating_add(logical_bytes);
        self.virtual_ms = self.virtual_ms.saturating_add(ms);
    }

    /// This tier's I/O counters.
    #[must_use]
    pub fn io(&self, tier: Tier) -> TierIo {
        *self.io.get(tier)
    }

    /// All tiers' counters in [`Tier::ALL`] order.
    #[must_use]
    pub fn io_all(&self) -> [TierIo; TIER_COUNT] {
        [self.io(Tier::Hot), self.io(Tier::Cool), self.io(Tier::Archive)]
    }

    /// Total virtual milliseconds charged for pool I/O so far.
    #[must_use]
    pub fn virtual_ms(&self) -> u64 {
        self.virtual_ms
    }

    /// Keys resident on `tier`, ascending.
    #[must_use]
    pub fn keys_at(&self, tier: Tier) -> Vec<u64> {
        self.vdevs.get(tier).keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream::FaultPlan;

    #[test]
    fn put_get_round_trip_and_counters() {
        let mut pool = StoragePool::memory();
        pool.put(1, Tier::Hot, 1000).unwrap();
        pool.put(2, Tier::Archive, 2000).unwrap();
        assert_eq!(pool.location(1), Some(Tier::Hot));
        assert_eq!(pool.location(2), Some(Tier::Archive));
        assert_eq!(pool.len(), 2);
        let frame = pool.get(1).unwrap();
        assert_eq!(frame.logical_bytes, 1000);
        assert_eq!(frame.payload, synth_payload(1, 1000));
        assert_eq!(pool.io(Tier::Hot).write_bytes, 1000);
        assert_eq!(pool.io(Tier::Hot).read_bytes, 1000);
        assert_eq!(pool.io(Tier::Archive).write_ops, 1);
        assert!(pool.virtual_ms() > 0);
        // put is idempotent for located objects.
        pool.put(1, Tier::Cool, 1000).unwrap();
        assert_eq!(pool.location(1), Some(Tier::Hot));
    }

    #[test]
    fn injected_faults_fire_on_the_store_path() {
        let mut pool = StoragePool::memory();
        pool.put(5, Tier::Hot, 100).unwrap();
        let plan = FaultPlan { vdev_read_permille: 1000, ..FaultPlan::quiet(3) };
        pool.attach_injector(plan.injector());
        match pool.read_frame(Tier::Hot, 5, 100, 0) {
            Err(VdevError::Io(msg)) => assert!(msg.contains("injected")),
            other => panic!("expected injected read fault, got {other:?}"),
        }
        let plan = FaultPlan { tier_full_permille: 1000, ..FaultPlan::quiet(4) };
        pool.attach_injector(plan.injector());
        match pool.write_frame(Tier::Cool, 5, b"frame", 100, 0) {
            Err(VdevError::Full { .. }) => {}
            other => panic!("expected injected tier-full, got {other:?}"),
        }
    }

    #[test]
    fn slow_vdev_inflates_virtual_time_deterministically() {
        let base = {
            let mut pool = StoragePool::memory();
            pool.put(9, Tier::Archive, 50_000_000).unwrap();
            let before = pool.virtual_ms();
            pool.read_frame(Tier::Archive, 9, 50_000_000, 0).unwrap();
            pool.virtual_ms() - before
        };
        let slow = {
            let mut pool = StoragePool::memory();
            pool.put(9, Tier::Archive, 50_000_000).unwrap();
            let plan = FaultPlan { slow_vdev_permille: 1000, ..FaultPlan::quiet(8) };
            pool.attach_injector(plan.injector());
            let before = pool.virtual_ms();
            pool.read_frame(Tier::Archive, 9, 50_000_000, 0).unwrap();
            pool.virtual_ms() - before
        };
        assert_eq!(slow, base * SLOW_VDEV_FACTOR);
    }

    #[test]
    fn dir_pool_scans_and_adopts_existing_objects() {
        let dir = std::env::temp_dir().join(format!("minicost-pool-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut pool = StoragePool::open_dir(&dir).unwrap();
            pool.put(11, Tier::Cool, 4096).unwrap();
        }
        let pool = StoragePool::open_dir(&dir).unwrap();
        assert_eq!(pool.location(11), Some(Tier::Cool), "reopen must rediscover objects");
        assert!(pool.duplicate_keys().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_objects_are_unlocated_until_recovery() {
        let dir = std::env::temp_dir().join(format!("minicost-pool-dup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut pool = StoragePool::open_dir(&dir).unwrap();
            pool.put(7, Tier::Hot, 128).unwrap();
            // A second copy lands on cool (mid-migration crash state).
            let frame = frame_object(128, &synth_payload(7, 128));
            pool.write_frame(Tier::Cool, 7, &frame, 128, 0).unwrap();
        }
        let pool = StoragePool::open_dir(&dir).unwrap();
        assert_eq!(pool.location(7), None, "duplicates must stay unlocated");
        assert_eq!(pool.duplicate_keys(), vec![7]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
