//! Virtual devices: the per-tier storage backends and their performance
//! model.
//!
//! A [`Vdev`] stores opaque framed objects keyed by file id. Two backends:
//!
//! * [`MemoryVdev`] — a `BTreeMap`, for fast unit tests and benches.
//! * [`FileVdev`] — one file per object under a tier directory. Writes are
//!   *deliberately* non-atomic (plain create-and-write, no rename dance):
//!   a crash mid-copy leaves a torn object on disk, which is exactly the
//!   state the migration journal must recover from. Durability of the
//!   *commit* is the journal's job, not the vdev's.
//!
//! The [`VdevProfile`] prices transfers in virtual milliseconds —
//! `latency + logical_bytes / bandwidth` — which is what migration
//! throttling, timeouts, and the slow-vdev fault act on. Virtual time
//! never consults the wall clock, so every run is replayable.

use pricing::Tier;
use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

/// Why a vdev operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VdevError {
    /// Transient I/O failure (retryable; includes injected faults).
    Io(String),
    /// The object is not resident on this vdev.
    Missing(u64),
    /// The allocation would exceed the vdev's capacity (retryable under
    /// transient pressure; persistent fullness exhausts the retry budget
    /// and pins the file).
    Full {
        /// Bytes the allocation needed.
        needed: u64,
        /// Bytes the vdev had free.
        free: u64,
    },
}

impl std::fmt::Display for VdevError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VdevError::Io(msg) => write!(f, "io: {msg}"),
            VdevError::Missing(key) => write!(f, "missing object {key:016x}"),
            VdevError::Full { needed, free } => {
                write!(f, "tier full (needed {needed} bytes, free {free})")
            }
        }
    }
}

/// A per-tier storage device holding framed objects by key.
pub trait Vdev {
    /// Reads an object's full frame.
    ///
    /// # Errors
    ///
    /// [`VdevError::Missing`] if absent, [`VdevError::Io`] on failure.
    fn read(&mut self, key: u64) -> Result<Vec<u8>, VdevError>;

    /// Writes (or overwrites) an object's frame. Not atomic by contract.
    ///
    /// # Errors
    ///
    /// [`VdevError::Full`] past capacity, [`VdevError::Io`] on failure.
    fn write(&mut self, key: u64, frame: &[u8]) -> Result<(), VdevError>;

    /// Deletes an object; deleting an absent key is a no-op (idempotent,
    /// so journal replay can re-run cleanups).
    ///
    /// # Errors
    ///
    /// [`VdevError::Io`] on failure.
    fn delete(&mut self, key: u64) -> Result<(), VdevError>;

    /// Whether an object is resident (possibly torn).
    fn contains(&self, key: u64) -> bool;

    /// Every resident key, ascending (deterministic scan order).
    fn keys(&self) -> Vec<u64>;

    /// Physical bytes resident.
    fn used_bytes(&self) -> u64;

    /// Physical capacity, if bounded.
    fn capacity_bytes(&self) -> Option<u64>;
}

/// The virtual-time performance model of one tier's vdev.
///
/// All figures are model parameters, not measurements; they exist so that
/// throttling, timeouts, and latency-inflation faults have deterministic,
/// documented semantics (DESIGN.md §15).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VdevProfile {
    /// Fixed per-operation read latency, virtual ms.
    pub read_latency_ms: u64,
    /// Fixed per-operation write latency, virtual ms.
    pub write_latency_ms: u64,
    /// Sustained bandwidth in MiB per second of virtual time.
    pub mib_per_s: u64,
}

impl VdevProfile {
    /// The standard model for each tier: hot is fast, archive is slow.
    #[must_use]
    pub fn standard(tier: Tier) -> VdevProfile {
        match tier {
            Tier::Hot => VdevProfile { read_latency_ms: 1, write_latency_ms: 2, mib_per_s: 500 },
            Tier::Cool => VdevProfile { read_latency_ms: 5, write_latency_ms: 10, mib_per_s: 200 },
            Tier::Archive => {
                VdevProfile { read_latency_ms: 50, write_latency_ms: 100, mib_per_s: 50 }
            }
        }
    }

    /// Virtual ms to move `logical_bytes` at this profile's bandwidth,
    /// optionally capped by a migration throttle (`bw_cap_mib_s`, 0 =
    /// uncapped), plus the fixed latency for the given direction.
    #[must_use]
    pub fn transfer_ms(&self, write: bool, logical_bytes: u64, bw_cap_mib_s: u64) -> u64 {
        let latency = if write { self.write_latency_ms } else { self.read_latency_ms };
        let mut mib_s = self.mib_per_s.max(1);
        if bw_cap_mib_s > 0 {
            mib_s = mib_s.min(bw_cap_mib_s);
        }
        let bytes_per_ms = mib_s.saturating_mul(1024 * 1024).checked_div(1000).unwrap_or(1).max(1);
        let stream_ms = logical_bytes.checked_div(bytes_per_ms).unwrap_or(0);
        latency.saturating_add(stream_ms)
    }
}

/// An in-memory vdev (tests, benches, ephemeral soaks).
#[derive(Clone, Debug, Default)]
pub struct MemoryVdev {
    objects: BTreeMap<u64, Vec<u8>>,
    capacity: Option<u64>,
}

impl MemoryVdev {
    /// An unbounded in-memory vdev.
    #[must_use]
    pub fn new() -> MemoryVdev {
        MemoryVdev::default()
    }

    /// An in-memory vdev refusing writes past `capacity` physical bytes.
    #[must_use]
    pub fn with_capacity(capacity: u64) -> MemoryVdev {
        MemoryVdev { objects: BTreeMap::new(), capacity: Some(capacity) }
    }
}

impl Vdev for MemoryVdev {
    fn read(&mut self, key: u64) -> Result<Vec<u8>, VdevError> {
        self.objects.get(&key).cloned().ok_or(VdevError::Missing(key))
    }

    fn write(&mut self, key: u64, frame: &[u8]) -> Result<(), VdevError> {
        if let Some(cap) = self.capacity {
            let replaced = self.objects.get(&key).map_or(0, |o| o.len() as u64);
            let used = self.used_bytes().saturating_sub(replaced);
            let needed = frame.len() as u64;
            if used.saturating_add(needed) > cap {
                return Err(VdevError::Full { needed, free: cap.saturating_sub(used) });
            }
        }
        self.objects.insert(key, frame.to_vec());
        Ok(())
    }

    fn delete(&mut self, key: u64) -> Result<(), VdevError> {
        self.objects.remove(&key);
        Ok(())
    }

    fn contains(&self, key: u64) -> bool {
        self.objects.contains_key(&key)
    }

    fn keys(&self) -> Vec<u64> {
        self.objects.keys().copied().collect()
    }

    fn used_bytes(&self) -> u64 {
        self.objects.values().map(|o| o.len() as u64).sum()
    }

    fn capacity_bytes(&self) -> Option<u64> {
        self.capacity
    }
}

/// A directory-backed vdev: one `<key:016x>.obj` file per object.
#[derive(Debug)]
pub struct FileVdev {
    dir: PathBuf,
    capacity: Option<u64>,
}

impl FileVdev {
    /// Opens (creating if needed) the vdev directory.
    ///
    /// # Errors
    ///
    /// [`VdevError::Io`] if the directory cannot be created.
    pub fn open(dir: &Path, capacity: Option<u64>) -> Result<FileVdev, VdevError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| VdevError::Io(format!("{}: {e}", dir.display())))?;
        Ok(FileVdev { dir: dir.to_path_buf(), capacity })
    }

    /// The on-disk path of an object (stable; the torn-copy proptest
    /// truncates objects through it to simulate kills at arbitrary byte
    /// offsets).
    #[must_use]
    pub fn object_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.obj"))
    }

    fn scan(&self) -> Vec<(u64, u64)> {
        let mut found = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return found;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".obj")) else {
                continue;
            };
            let Ok(key) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            let len = entry.metadata().map_or(0, |m| m.len());
            found.push((key, len));
        }
        found.sort_unstable();
        found
    }
}

impl Vdev for FileVdev {
    fn read(&mut self, key: u64) -> Result<Vec<u8>, VdevError> {
        match std::fs::read(self.object_path(key)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == ErrorKind::NotFound => Err(VdevError::Missing(key)),
            Err(e) => Err(VdevError::Io(format!("read {key:016x}: {e}"))),
        }
    }

    fn write(&mut self, key: u64, frame: &[u8]) -> Result<(), VdevError> {
        if let Some(cap) = self.capacity {
            let replaced = std::fs::metadata(self.object_path(key)).map_or(0, |m| m.len());
            let used = self.used_bytes().saturating_sub(replaced);
            let needed = frame.len() as u64;
            if used.saturating_add(needed) > cap {
                return Err(VdevError::Full { needed, free: cap.saturating_sub(used) });
            }
        }
        // Plain write on purpose: object durability is the journal's
        // problem, and a non-atomic write is what makes crash-mid-copy a
        // real, testable state.
        std::fs::write(self.object_path(key), frame)
            .map_err(|e| VdevError::Io(format!("write {key:016x}: {e}")))
    }

    fn delete(&mut self, key: u64) -> Result<(), VdevError> {
        match std::fs::remove_file(self.object_path(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
            Err(e) => Err(VdevError::Io(format!("delete {key:016x}: {e}"))),
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.object_path(key).exists()
    }

    fn keys(&self) -> Vec<u64> {
        self.scan().into_iter().map(|(k, _)| k).collect()
    }

    fn used_bytes(&self) -> u64 {
        self.scan().into_iter().map(|(_, len)| len).sum()
    }

    fn capacity_bytes(&self) -> Option<u64> {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("minicost-vdev-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn exercise(vdev: &mut dyn Vdev) {
        assert!(!vdev.contains(7));
        assert_eq!(vdev.read(7), Err(VdevError::Missing(7)));
        vdev.write(7, b"hello").unwrap();
        vdev.write(3, b"worlds").unwrap();
        assert!(vdev.contains(7));
        assert_eq!(vdev.read(7).unwrap(), b"hello");
        assert_eq!(vdev.keys(), vec![3, 7]);
        assert_eq!(vdev.used_bytes(), 11);
        vdev.write(7, b"hi").unwrap();
        assert_eq!(vdev.used_bytes(), 8, "overwrite replaces, not appends");
        vdev.delete(7).unwrap();
        vdev.delete(7).unwrap(); // idempotent
        assert!(!vdev.contains(7));
        assert_eq!(vdev.keys(), vec![3]);
    }

    #[test]
    fn memory_vdev_basic_ops() {
        exercise(&mut MemoryVdev::new());
    }

    #[test]
    fn file_vdev_basic_ops() {
        let dir = scratch("basic");
        exercise(&mut FileVdev::open(&dir, None).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_refuses_overflow_but_allows_replacement() {
        let mut v = MemoryVdev::with_capacity(10);
        v.write(1, b"12345678").unwrap();
        match v.write(2, b"123") {
            Err(VdevError::Full { needed: 3, free: 2 }) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        // Replacing the resident object within capacity is fine.
        v.write(1, b"1234567890").unwrap();
        assert_eq!(v.used_bytes(), 10);
    }

    #[test]
    fn file_vdev_reopens_with_contents_visible() {
        let dir = scratch("reopen");
        {
            let mut v = FileVdev::open(&dir, None).unwrap();
            v.write(0xabc, b"persist me").unwrap();
        }
        let v = FileVdev::open(&dir, None).unwrap();
        assert_eq!(v.keys(), vec![0xabc]);
        assert_eq!(v.used_bytes(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transfer_model_is_monotone_and_capped() {
        let hot = VdevProfile::standard(Tier::Hot);
        let archive = VdevProfile::standard(Tier::Archive);
        let gb = 1_073_741_824u64;
        assert!(hot.transfer_ms(false, gb, 0) < archive.transfer_ms(false, gb, 0));
        assert!(hot.transfer_ms(true, gb, 0) >= hot.transfer_ms(true, gb / 2, 0));
        // A throttle below the device bandwidth slows the transfer; a
        // throttle above it is a no-op.
        assert!(hot.transfer_ms(true, gb, 10) > hot.transfer_ms(true, gb, 0));
        assert_eq!(hot.transfer_ms(true, gb, 100_000), hot.transfer_ms(true, gb, 0));
        // Latency floor holds even for empty transfers.
        assert_eq!(archive.transfer_ms(true, 0, 0), 100);
    }
}
