//! Graceful degradation for fleets larger than exact state allows.
//!
//! [`BoundedStats`] caps memory at `O(max_tracked * window + sketch)`
//! regardless of fleet size by splitting the fleet into two tiers:
//!
//! * **Tracked tier** — the `max_tracked` heaviest files (by lifetime
//!   request mass, per a deterministic [`SpaceSaving`] summary) carry full
//!   [`FileStats`] windows, so the files that dominate cost are decided on
//!   exact features.
//! * **Sketched tier** — everything else is answered from count-min
//!   sketches: one pair per closed day in the ring (recent-window
//!   channels), one lifetime pair (normalizing means), and one open-day
//!   pair (current-day counts). Estimates never underestimate, so the long
//!   tail reads as "at least this active" rather than silently cold.
//!
//! Membership is re-evaluated at each day close; a file promoted into the
//! tracked tier has its window backfilled from the day-ring sketches. Note
//! that billing in the serve loop is always exact — this type approximates
//! *decision features* only (ISSUE 4, bounded mode contract).

use crate::event::Event;
use crate::sketch::{CountMinSketch, SpaceSaving};
use crate::stats::FileStats;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Geometry and seeding for a [`BoundedStats`] instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundedConfig {
    /// Number of files tracked with exact windows.
    pub max_tracked: usize,
    /// Count-min sketch width (counters per row).
    pub cms_width: usize,
    /// Count-min sketch depth (independent rows).
    pub cms_depth: usize,
    /// Feature window in days (ring length).
    pub window: usize,
    /// Hash seed for every sketch.
    pub seed: u64,
}

impl BoundedConfig {
    /// A small default geometry: 64 tracked files, 1024×4 sketches.
    #[must_use]
    pub fn small(window: usize, seed: u64) -> BoundedConfig {
        BoundedConfig { max_tracked: 64, cms_width: 1024, cms_depth: 4, window, seed }
    }
}

/// One exactly-tracked heavy hitter.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct TrackedFile {
    id: u32,
    stats: FileStats,
}

/// Read/write count-min sketches for one closed day.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct DaySketch {
    reads: CountMinSketch,
    writes: CountMinSketch,
}

/// Bounded-memory fleet statistics: exact windows for the heavy hitters,
/// sketch estimates for the long tail. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundedStats {
    config: BoundedConfig,
    heavy: SpaceSaving,
    tracked: Vec<TrackedFile>,
    ring: VecDeque<DaySketch>,
    current: DaySketch,
    life_reads: CountMinSketch,
    life_writes: CountMinSketch,
    closed_days: u64,
}

impl BoundedStats {
    /// Fresh bounded statistics under `config` (window and `max_tracked`
    /// clamped to at least 1).
    #[must_use]
    pub fn new(config: BoundedConfig) -> BoundedStats {
        let config = BoundedConfig {
            max_tracked: config.max_tracked.max(1),
            window: config.window.max(1),
            ..config
        };
        let cms =
            |salt: u64| CountMinSketch::new(config.cms_width, config.cms_depth, config.seed ^ salt);
        BoundedStats {
            config,
            // Space-saving needs slack beyond the queried top-k: with
            // exactly k slots, every tail arrival evicts a genuine heavy
            // hitter and inherits its count. 4x is the usual ratio.
            heavy: SpaceSaving::new(config.max_tracked.saturating_mul(4)),
            tracked: Vec::new(),
            ring: VecDeque::new(),
            current: DaySketch { reads: cms(0x0D47), writes: cms(0x1D47) },
            life_reads: cms(0x2D47),
            life_writes: cms(0x3D47),
            closed_days: 0,
        }
    }

    /// The configuration this instance was built with.
    #[must_use]
    pub fn config(&self) -> &BoundedConfig {
        &self.config
    }

    /// Days closed so far.
    #[must_use]
    pub fn closed_days(&self) -> u64 {
        self.closed_days
    }

    /// Ids currently carried with exact windows, ascending.
    #[must_use]
    pub fn tracked_ids(&self) -> Vec<u32> {
        self.tracked.iter().map(|t| t.id).collect()
    }

    /// Whether `id` is in the exactly-tracked tier.
    #[must_use]
    pub fn is_tracked(&self, id: u32) -> bool {
        self.tracked.binary_search_by_key(&id, |t| t.id).is_ok()
    }

    /// Routes one event into the open day.
    pub fn ingest(&mut self, event: &Event) {
        let id = event.file.0;
        self.heavy.add(id, event.reads.saturating_add(event.writes));
        self.current.reads.add(u64::from(id), event.reads);
        self.current.writes.add(u64::from(id), event.writes);
        self.life_reads.add(u64::from(id), event.reads);
        self.life_writes.add(u64::from(id), event.writes);
        if let Some(t) = self
            .tracked
            .binary_search_by_key(&id, |t| t.id)
            .ok()
            .and_then(|p| self.tracked.get_mut(p))
        {
            t.stats.record(event.reads, event.writes);
        }
    }

    /// Closes the open day: rolls the day sketches into the ring, closes
    /// every tracked window, and re-evaluates tracked membership against
    /// the heavy-hitter summary (promotions backfill their window from the
    /// ring sketches; demoted files fall back to sketch answers).
    pub fn close_day(&mut self) {
        let mut fresh = self.current.clone();
        fresh.reads.clear();
        fresh.writes.clear();
        let day = std::mem::replace(&mut self.current, fresh);
        self.ring.push_back(day);
        while self.ring.len() > self.config.window {
            self.ring.pop_front();
        }
        for t in &mut self.tracked {
            t.stats.close_day(self.config.window);
        }
        self.closed_days += 1;
        self.retrack();
    }

    /// Aligns the tracked tier with the current heavy-hitter top set.
    fn retrack(&mut self) {
        let mut wanted: Vec<u32> =
            self.heavy.top(self.config.max_tracked).iter().map(|e| e.id).collect();
        wanted.sort_unstable();
        self.tracked.retain(|t| wanted.binary_search(&t.id).is_ok());
        for id in wanted {
            if self.tracked.binary_search_by_key(&id, |t| t.id).is_err() {
                let stats = self.backfill(id);
                let pos = match self.tracked.binary_search_by_key(&id, |t| t.id) {
                    Ok(p) | Err(p) => p,
                };
                self.tracked.insert(pos, TrackedFile { id, stats });
            }
        }
    }

    /// Reconstructs a promoted file's window from the day-ring sketches and
    /// its lifetime sums from the lifetime sketches.
    fn backfill(&self, id: u32) -> FileStats {
        let key = u64::from(id);
        let recent_reads: Vec<u64> = self.ring.iter().map(|d| d.reads.estimate(key)).collect();
        let recent_writes: Vec<u64> = self.ring.iter().map(|d| d.writes.estimate(key)).collect();
        FileStats::from_parts(
            self.config.window,
            recent_reads,
            recent_writes,
            self.closed_days,
            self.life_reads.estimate(key),
            self.life_writes.estimate(key),
        )
    }

    /// The last `<= window` closed days of reads for `id`, oldest first —
    /// exact if tracked, otherwise ring-sketch estimates.
    #[must_use]
    pub fn window_reads(&self, id: u32) -> Vec<u64> {
        if let Some(t) = self.tracked_entry(id) {
            return t.stats.recent_reads().to_vec();
        }
        self.ring.iter().map(|d| d.reads.estimate(u64::from(id))).collect()
    }

    /// The last `<= window` closed days of writes for `id`, oldest first.
    #[must_use]
    pub fn window_writes(&self, id: u32) -> Vec<u64> {
        if let Some(t) = self.tracked_entry(id) {
            return t.stats.recent_writes().to_vec();
        }
        self.ring.iter().map(|d| d.writes.estimate(u64::from(id))).collect()
    }

    /// Lifetime (read, write) totals for `id` — exact if tracked, otherwise
    /// count-min estimates (never under the truth).
    #[must_use]
    pub fn lifetime(&self, id: u32) -> (u64, u64) {
        if let Some(t) = self.tracked_entry(id) {
            return (t.stats.sum_reads(), t.stats.sum_writes());
        }
        (self.life_reads.estimate(u64::from(id)), self.life_writes.estimate(u64::from(id)))
    }

    /// Open-day (read, write) counts for `id` — exact if tracked, otherwise
    /// current-day sketch estimates.
    #[must_use]
    pub fn pending(&self, id: u32) -> (u64, u64) {
        if let Some(t) = self.tracked_entry(id) {
            return t.stats.pending();
        }
        (self.current.reads.estimate(u64::from(id)), self.current.writes.estimate(u64::from(id)))
    }

    /// The tracked-tier entry for `id`, if it currently holds a slot.
    fn tracked_entry(&self, id: u32) -> Option<&TrackedFile> {
        self.tracked.binary_search_by_key(&id, |t| t.id).ok().and_then(|p| self.tracked.get(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::FileId;

    fn ev(ix: u32, reads: u64, writes: u64) -> Event {
        Event { hour: 0, file: FileId(ix), reads, writes, bytes: 1 }
    }

    fn tiny() -> BoundedStats {
        BoundedStats::new(BoundedConfig {
            max_tracked: 2,
            cms_width: 256,
            cms_depth: 4,
            window: 3,
            seed: 99,
        })
    }

    #[test]
    fn heavy_files_get_exact_windows() {
        let mut b = tiny();
        for day in 0..4u64 {
            b.ingest(&ev(0, 100 + day, 10));
            b.ingest(&ev(1, 50, 5));
            for cold in 2..6 {
                b.ingest(&ev(cold, 1, 0));
            }
            b.close_day();
        }
        assert_eq!(b.tracked_ids(), vec![0, 1], "the two heavy ids win the tracked slots");
        assert!(b.is_tracked(0) && !b.is_tracked(5));
        // Tracked answers are exact.
        assert_eq!(b.window_reads(0), vec![101, 102, 103]);
        assert_eq!(b.lifetime(1), (200, 20));
        assert_eq!(b.pending(0), (0, 0));
    }

    #[test]
    fn sketched_tail_never_underestimates() {
        let mut b = tiny();
        for day in 0..3u64 {
            b.ingest(&ev(0, 1000, 0));
            b.ingest(&ev(1, 900, 0));
            b.ingest(&ev(7, 3 + day, 2));
            b.close_day();
        }
        assert!(!b.is_tracked(7));
        let win = b.window_reads(7);
        assert_eq!(win.len(), 3);
        for (got, want) in win.iter().zip([3u64, 4, 5]) {
            assert!(*got >= want, "sketch window {got} < true {want}");
        }
        let (lr, lw) = b.lifetime(7);
        assert!(lr >= 12 && lw >= 6);
    }

    #[test]
    fn ring_and_tracked_memory_stay_bounded() {
        let mut b = tiny();
        for day in 0..20u32 {
            for id in 0..50 {
                b.ingest(&ev(id, u64::from(day % 7 + id), 1));
            }
            b.close_day();
            assert!(b.ring.len() <= b.config().window);
            assert!(b.tracked.len() <= b.config().max_tracked);
        }
        assert_eq!(b.closed_days(), 20);
    }

    #[test]
    fn promotion_backfills_from_ring() {
        let mut b = tiny();
        // Two incumbents dominate; id 9 is quiet, then surges.
        for _ in 0..3 {
            b.ingest(&ev(0, 500, 0));
            b.ingest(&ev(1, 400, 0));
            b.ingest(&ev(9, 2, 1));
            b.close_day();
        }
        assert!(!b.is_tracked(9));
        for _ in 0..3 {
            b.ingest(&ev(9, 10_000, 0));
            b.ingest(&ev(0, 500, 0));
            b.close_day();
        }
        assert!(b.is_tracked(9), "surging file must be promoted");
        // Backfilled window exists and respects the no-underestimate bound
        // for the days still in the ring.
        let win = b.window_reads(9);
        assert!(!win.is_empty() && win.len() <= 3);
        assert!(win.last().copied().unwrap_or(0) >= 10_000);
    }

    #[test]
    fn open_day_pending_reads_through_sketch_and_exact() {
        let mut b = tiny();
        b.ingest(&ev(4, 7, 3));
        let (r, w) = b.pending(4);
        assert!(r >= 7 && w >= 3);
        b.close_day();
        assert!(b.is_tracked(4));
        b.ingest(&ev(4, 2, 2));
        assert_eq!(b.pending(4), (2, 2), "tracked pending is exact");
    }

    #[test]
    fn bounded_stats_serialize_round_trip() {
        let mut b = tiny();
        for day in 0..4u64 {
            b.ingest(&ev(0, 10 + day, 1));
            b.ingest(&ev(3, 2, 2));
            b.close_day();
        }
        b.ingest(&ev(0, 5, 0));
        let json = serde_json::to_string(&b).unwrap();
        let back: BoundedStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }
}
