//! Versioned, atomically-written snapshots of serving state.
//!
//! A [`Snapshot`] captures everything the online decision loop needs to
//! resume bit-identically after a crash: the fleet's current tiers, the
//! accrued cost ledgers, the online statistics (exact or bounded), and the
//! stream cursor. There is **no RNG cursor** to save — event expansion is
//! seeded statelessly per `(file, day)` (see [`crate::event`]), so
//! restarting the stream at `next_day` reproduces the exact event suffix.
//!
//! Writes are crash-safe in the classic way: serialize to a sibling
//! `*.tmp` file, sync, then `rename` over the target — a reader never
//! observes a half-written snapshot. Loads validate [`SNAPSHOT_VERSION`]
//! before trusting any field (DESIGN.md §10).

use crate::bounded::BoundedStats;
use crate::stats::ExactStats;
use pricing::{CostLedger, Money, Tier, TIER_COUNT};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Current snapshot schema version. Bump on any incompatible change to
/// [`Snapshot`]; loads of other versions are rejected rather than
/// misinterpreted.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The complete serialized serving state at a decision-epoch boundary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version; must equal [`SNAPSHOT_VERSION`] to load.
    pub version: u32,
    /// Name of the policy that produced the decisions (sanity-checked on
    /// restore so a snapshot is never resumed under a different policy).
    pub policy_name: String,
    /// Stream seed the event expansion is keyed on.
    pub seed: u64,
    /// First day not yet ingested; the restored stream starts here.
    pub next_day: usize,
    /// Decision epochs completed so far.
    pub epoch: u64,
    /// Decision cadence in days.
    pub decide_every: usize,
    /// Feature window in days.
    pub window: usize,
    /// Tier every file started in.
    pub initial_tier: Tier,
    /// Current tier per file, indexed by file id.
    pub tiers: Vec<Tier>,
    /// Fleet-wide accrued cost ledger.
    pub ledger: CostLedger,
    /// Accrued cost per file, indexed by file id.
    pub per_file: Vec<Money>,
    /// Per-day tier occupancy counts.
    pub occupancy: Vec<[usize; TIER_COUNT]>,
    /// Total tier transitions applied so far.
    pub tier_changes: u64,
    /// Wall-clock milliseconds spent in each decision epoch.
    pub decision_millis: Vec<f64>,
    /// Exact online statistics (present in exact mode).
    #[serde(default)]
    pub exact: Option<ExactStats>,
    /// Bounded online statistics (present in bounded mode).
    #[serde(default)]
    pub bounded: Option<BoundedStats>,
}

/// Why a snapshot failed to save or load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem error (message carries the OS detail).
    Io(String),
    /// The file was readable but not a valid snapshot document.
    Parse(String),
    /// The file is a snapshot from a different schema version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot io error: {msg}"),
            SnapshotError::Parse(msg) => write!(f, "snapshot parse error: {msg}"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} incompatible with expected {expected}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl Snapshot {
    /// Serializes and writes this snapshot atomically: the bytes land in a
    /// sibling `<name>.tmp` first and are `rename`d over `path` only after
    /// a successful sync, so `path` always holds a complete snapshot.
    pub fn save_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let json = serde_json::to_string(self).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| SnapshotError::Io(format!("bad snapshot path {}", path.display())))?;
        let tmp = path.with_file_name(format!("{file_name}.tmp"));
        {
            let mut f =
                std::fs::File::create(&tmp).map_err(|e| SnapshotError::Io(e.to_string()))?;
            f.write_all(json.as_bytes()).map_err(|e| SnapshotError::Io(e.to_string()))?;
            f.sync_all().map_err(|e| SnapshotError::Io(e.to_string()))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    /// Loads and validates a snapshot written by [`Snapshot::save_atomic`].
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
        let json = std::fs::read_to_string(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let snap: Snapshot =
            serde_json::from_str(&json).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: snap.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ExactStats;
    use pricing::CostBreakdown;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("minicost-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Snapshot {
        let mut ledger = CostLedger::new();
        ledger.accrue(CostBreakdown::default());
        Snapshot {
            version: SNAPSHOT_VERSION,
            policy_name: "greedy".to_string(),
            seed: 42,
            next_day: 6,
            epoch: 2,
            decide_every: 3,
            window: 7,
            initial_tier: Tier::Hot,
            tiers: vec![Tier::Hot, Tier::Archive],
            ledger,
            per_file: vec![Money::from_micros(10), Money::from_micros(0)],
            occupancy: vec![[2, 0, 0]; 6],
            tier_changes: 1,
            decision_millis: vec![0.5, 0.25],
            exact: Some(ExactStats::new(7, 2)),
            bounded: None,
        }
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let path = scratch("round-trip.json");
        let snap = sample();
        snap.save_atomic(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        // The temp sibling must not linger after a successful save.
        assert!(!path.with_file_name("round-trip.json.tmp").exists());
    }

    #[test]
    fn save_overwrites_previous_snapshot_atomically() {
        let path = scratch("overwrite.json");
        let mut snap = sample();
        snap.save_atomic(&path).unwrap();
        snap.next_day = 9;
        snap.epoch = 3;
        snap.save_atomic(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap().next_day, 9);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let path = scratch("versioned.json");
        let snap = sample();
        snap.save_atomic(&path).unwrap();
        let doctored = std::fs::read_to_string(&path)
            .unwrap()
            .replace(&format!("\"version\":{SNAPSHOT_VERSION}"), "\"version\":999");
        std::fs::write(&path, doctored).unwrap();
        match Snapshot::load(&path) {
            Err(SnapshotError::VersionMismatch { found, expected }) => {
                assert_eq!((found, expected), (999, SNAPSHOT_VERSION));
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_and_corrupt_files_error_cleanly() {
        assert!(matches!(
            Snapshot::load(&scratch("does-not-exist.json")),
            Err(SnapshotError::Io(_))
        ));
        let path = scratch("corrupt.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(Snapshot::load(&path), Err(SnapshotError::Parse(_))));
        let err = SnapshotError::Parse("x".into());
        assert!(!err.to_string().is_empty());
    }
}
