//! Versioned, checksummed, atomically-written snapshots of serving state.
//!
//! A [`Snapshot`] captures everything the online decision loop needs to
//! resume bit-identically after a crash: the fleet's current tiers, the
//! accrued cost ledgers, the online statistics (exact or bounded), and the
//! stream cursor. There is **no RNG cursor** to save — event expansion is
//! seeded statelessly per `(file, day)` (see [`crate::event`]), so
//! restarting the stream at `next_day` reproduces the exact event suffix.
//!
//! # On-disk format (v2)
//!
//! Since [`SNAPSHOT_VERSION`] 2 a snapshot file is a one-line header
//! followed by the JSON payload:
//!
//! ```text
//! minicost-snapshot v2 fnv1a64:<16 hex digits>\n
//! {"version":2,...}
//! ```
//!
//! The header checksum is FNV-1a over the **exact payload bytes**, so any
//! single-byte corruption — a bit flip, a torn write that truncated the
//! payload, an editor that "fixed" a field — is detected at load and
//! surfaced as [`SnapshotError::Corrupt`] rather than silently resuming
//! from poisoned state. FNV-1a's per-byte step `h ↦ (h ⊕ b) · p` is
//! injective in `h` for fixed `b` (odd multiplier mod 2⁶⁴), so a
//! single-byte substitution *always* changes the digest — detection is
//! deterministic, not probabilistic. Legacy v1 files (bare JSON, no
//! header) still load for backward compatibility; they simply get no
//! checksum validation.
//!
//! Writes are crash-safe in the classic way: serialize to a sibling
//! `*.tmp` file, fsync (failures surface as the distinct
//! [`SnapshotError::Sync`]), then `rename` over the target — a reader
//! never observes a half-written snapshot through the real filesystem.
//! All I/O goes through the [`StorageBackend`] trait so the chaos harness
//! ([`crate::fault`]) can inject torn writes and transient errors
//! underneath an unchanged save/load contract (DESIGN.md §11).

use crate::bounded::BoundedStats;
use crate::stats::ExactStats;
use pricing::{CostLedger, Money, Tier, TIER_COUNT};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Current snapshot schema version. Bump on any incompatible change to
/// [`Snapshot`] or the file framing; loads of other versions are rejected
/// rather than misinterpreted. Version 1 (bare JSON, no checksum header)
/// remains loadable.
pub const SNAPSHOT_VERSION: u32 = 2;

/// First token of the v2 file header.
const HEADER_MAGIC: &str = "minicost-snapshot";

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice — the snapshot payload digest.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The complete serialized serving state at a decision-epoch boundary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version; must equal [`SNAPSHOT_VERSION`] (or the legacy `1`)
    /// to load.
    pub version: u32,
    /// Name of the policy that produced the decisions (sanity-checked on
    /// restore so a snapshot is never resumed under a different policy).
    pub policy_name: String,
    /// Stream seed the event expansion is keyed on.
    pub seed: u64,
    /// First day not yet ingested; the restored stream starts here.
    pub next_day: usize,
    /// Decision epochs completed so far.
    pub epoch: u64,
    /// Decision cadence in days.
    pub decide_every: usize,
    /// Feature window in days.
    pub window: usize,
    /// Tier every file started in.
    pub initial_tier: Tier,
    /// Current tier per file, indexed by file id.
    pub tiers: Vec<Tier>,
    /// Fleet-wide accrued cost ledger.
    pub ledger: CostLedger,
    /// Accrued cost per file, indexed by file id.
    pub per_file: Vec<Money>,
    /// Per-day tier occupancy counts.
    pub occupancy: Vec<[usize; TIER_COUNT]>,
    /// Total tier transitions applied so far.
    pub tier_changes: u64,
    /// Logical bytes billed as tier-change traffic so far. Cross-checked
    /// at end of run against the store journal's committed migration bytes
    /// when a tiered object store is attached; absent in older snapshots
    /// (defaults to 0).
    #[serde(default)]
    pub billed_change_bytes: u64,
    /// Wall-clock milliseconds spent in each decision epoch.
    pub decision_millis: Vec<f64>,
    /// Exact online statistics (present in exact mode).
    #[serde(default)]
    pub exact: Option<ExactStats>,
    /// Bounded online statistics (present in bounded mode).
    #[serde(default)]
    pub bounded: Option<BoundedStats>,
}

/// Why a snapshot failed to save or load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem error (message carries the OS detail).
    Io(String),
    /// The temp file could not be fsynced/flushed before the rename — the
    /// bytes may not be durable, so the write must not be trusted.
    Sync(String),
    /// The file was readable but not a valid snapshot document.
    Parse(String),
    /// The file framed as a checksummed snapshot but the payload digest
    /// (or the header itself) does not check out — corruption, a torn
    /// write, or tampering.
    Corrupt(String),
    /// The file is a snapshot from a different schema version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl SnapshotError {
    /// Whether retrying the same operation can plausibly succeed.
    ///
    /// Transient I/O and fsync failures are retryable; parse errors,
    /// checksum corruption, and version mismatches are properties of the
    /// bytes themselves and never clear on retry.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            SnapshotError::Io(_) | SnapshotError::Sync(_) => true,
            SnapshotError::Parse(_)
            | SnapshotError::Corrupt(_)
            | SnapshotError::VersionMismatch { .. } => false,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot io error: {msg}"),
            SnapshotError::Sync(msg) => write!(f, "snapshot sync error: {msg}"),
            SnapshotError::Parse(msg) => write!(f, "snapshot parse error: {msg}"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} incompatible with expected {expected}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Minimal storage abstraction the checkpoint codec writes through.
///
/// The production implementation is [`FsBackend`]; the chaos harness wraps
/// any backend in [`crate::fault::FaultyBackend`] to inject I/O errors,
/// torn writes, and bit flips underneath an unchanged caller.
pub trait StorageBackend {
    /// Reads the entire file at `path`.
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, SnapshotError>;

    /// Writes `bytes` to `path` atomically (tmp + fsync + rename): after a
    /// successful return the file holds exactly `bytes`; after an error the
    /// previous contents (if any) are still intact.
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<(), SnapshotError>;

    /// Renames `from` over `to` (used by checkpoint rotation).
    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), SnapshotError>;

    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// The real-filesystem [`StorageBackend`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FsBackend;

impl StorageBackend for FsBackend {
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, SnapshotError> {
        std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| SnapshotError::Io(format!("bad snapshot path {}", path.display())))?;
        let tmp = path.with_file_name(format!("{file_name}.tmp"));
        {
            let mut f =
                std::fs::File::create(&tmp).map_err(|e| SnapshotError::Io(e.to_string()))?;
            f.write_all(bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
            // Flush to stable storage *before* the rename: a rename of an
            // unsynced file can survive a crash as a torn write, which is
            // exactly the corruption the v2 checksum exists to catch. The
            // failure is surfaced distinctly so callers can tell "disk said
            // no" (retryable) from "document is garbage" (not).
            f.sync_all().map_err(|e| SnapshotError::Sync(e.to_string()))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), SnapshotError> {
        std::fs::rename(from, to).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The path of rotation slot `slot` for checkpoint `path`: slot 0 is
/// `path` itself, slot `n` is `path` with `.n` appended
/// (`checkpoint.json.1`, `checkpoint.json.2`, ...).
#[must_use]
pub fn rotated_path(path: &Path, slot: usize) -> PathBuf {
    if slot == 0 {
        return path.to_path_buf();
    }
    let mut os = path.as_os_str().to_owned();
    os.push(format!(".{slot}"));
    PathBuf::from(os)
}

/// Restore candidates in newest-first order: `path`, `path.1`, ...,
/// `path.keep`.
#[must_use]
pub fn rotation_candidates(path: &Path, keep: usize) -> Vec<PathBuf> {
    (0..=keep).map(|slot| rotated_path(path, slot)).collect()
}

/// Shifts existing checkpoints one rotation slot down (`path.1` → `path.2`,
/// `path` → `path.1`, the oldest slot falling off) so a subsequent
/// [`Snapshot::save_with`] of `path` keeps `keep` predecessors on disk.
/// With `keep == 0` this is a no-op and saves simply overwrite.
pub fn rotate(
    backend: &mut dyn StorageBackend,
    path: &Path,
    keep: usize,
) -> Result<(), SnapshotError> {
    for slot in (0..keep).rev() {
        let from = rotated_path(path, slot);
        if backend.exists(&from) {
            backend.rename(&from, &rotated_path(path, slot + 1))?;
        }
    }
    Ok(())
}

impl Snapshot {
    /// Serializes this snapshot into the v2 framed byte format: checksum
    /// header line + JSON payload.
    pub fn to_checked_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let json = serde_json::to_string(self).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        let digest = fnv1a64(json.as_bytes());
        let mut out =
            format!("{HEADER_MAGIC} v{SNAPSHOT_VERSION} fnv1a64:{digest:016x}\n").into_bytes();
        out.extend_from_slice(json.as_bytes());
        Ok(out)
    }

    /// Parses and validates snapshot bytes written by
    /// [`Snapshot::to_checked_bytes`] — or a legacy v1 bare-JSON document.
    ///
    /// Every validation failure is an error, never a best-effort value:
    /// header malformed / digest mismatch ⇒ [`SnapshotError::Corrupt`],
    /// invalid JSON ⇒ [`SnapshotError::Parse`], wrong schema version ⇒
    /// [`SnapshotError::VersionMismatch`].
    pub fn from_checked_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.starts_with(HEADER_MAGIC.as_bytes()) {
            let newline = bytes
                .iter()
                .position(|&b| b == b'\n')
                .ok_or_else(|| SnapshotError::Corrupt("header line not terminated".to_owned()))?;
            let header = std::str::from_utf8(&bytes[..newline])
                .map_err(|e| SnapshotError::Corrupt(format!("header not utf-8: {e}")))?;
            let payload = &bytes[newline + 1..];
            let mut fields = header.split(' ');
            let (magic, version, digest) = (fields.next(), fields.next(), fields.next());
            if magic != Some(HEADER_MAGIC) || fields.next().is_some() {
                return Err(SnapshotError::Corrupt(format!("malformed header {header:?}")));
            }
            match version {
                Some(v) if v == format!("v{SNAPSHOT_VERSION}") => {}
                Some(other) => {
                    let found = other.strip_prefix('v').and_then(|n| n.parse().ok()).unwrap_or(0);
                    return Err(SnapshotError::VersionMismatch {
                        found,
                        expected: SNAPSHOT_VERSION,
                    });
                }
                None => return Err(SnapshotError::Corrupt("header missing version".to_owned())),
            }
            let stated = digest
                .and_then(|d| d.strip_prefix("fnv1a64:"))
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .ok_or_else(|| SnapshotError::Corrupt("header digest unreadable".to_owned()))?;
            let actual = fnv1a64(payload);
            if stated != actual {
                return Err(SnapshotError::Corrupt(format!(
                    "payload digest {actual:016x} != header {stated:016x}"
                )));
            }
            let json = std::str::from_utf8(payload)
                .map_err(|e| SnapshotError::Parse(format!("payload not utf-8: {e}")))?;
            let snap: Snapshot =
                serde_json::from_str(json).map_err(|e| SnapshotError::Parse(e.to_string()))?;
            if snap.version != SNAPSHOT_VERSION {
                return Err(SnapshotError::VersionMismatch {
                    found: snap.version,
                    expected: SNAPSHOT_VERSION,
                });
            }
            Ok(snap)
        } else {
            // Legacy v1: bare JSON, no checksum to validate.
            let json = std::str::from_utf8(bytes)
                .map_err(|e| SnapshotError::Parse(format!("not utf-8: {e}")))?;
            let snap: Snapshot =
                serde_json::from_str(json).map_err(|e| SnapshotError::Parse(e.to_string()))?;
            if snap.version != 1 {
                return Err(SnapshotError::VersionMismatch {
                    found: snap.version,
                    expected: SNAPSHOT_VERSION,
                });
            }
            Ok(snap)
        }
    }

    /// Serializes and writes this snapshot through `backend` atomically.
    pub fn save_with(
        &self,
        backend: &mut dyn StorageBackend,
        path: &Path,
    ) -> Result<(), SnapshotError> {
        backend.write_atomic(path, &self.to_checked_bytes()?)
    }

    /// Loads and validates a snapshot through `backend`.
    pub fn load_with(
        backend: &mut dyn StorageBackend,
        path: &Path,
    ) -> Result<Snapshot, SnapshotError> {
        Snapshot::from_checked_bytes(&backend.read(path)?)
    }

    /// [`Snapshot::save_with`] on the real filesystem.
    pub fn save_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        self.save_with(&mut FsBackend, path)
    }

    /// [`Snapshot::load_with`] on the real filesystem.
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
        Snapshot::load_with(&mut FsBackend, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ExactStats;
    use pricing::CostBreakdown;
    use proptest::prelude::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("minicost-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Snapshot {
        let mut ledger = CostLedger::new();
        ledger.accrue(CostBreakdown::default());
        Snapshot {
            version: SNAPSHOT_VERSION,
            policy_name: "greedy".to_string(),
            seed: 42,
            next_day: 6,
            epoch: 2,
            decide_every: 3,
            window: 7,
            initial_tier: Tier::Hot,
            tiers: vec![Tier::Hot, Tier::Archive],
            ledger,
            per_file: vec![Money::from_micros(10), Money::from_micros(0)],
            occupancy: vec![[2, 0, 0]; 6],
            tier_changes: 1,
            billed_change_bytes: 0,
            decision_millis: vec![0.5, 0.25],
            exact: Some(ExactStats::new(7, 2)),
            bounded: None,
        }
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let path = scratch("round-trip.json");
        let snap = sample();
        snap.save_atomic(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        // The temp sibling must not linger after a successful save.
        assert!(!path.with_file_name("round-trip.json.tmp").exists());
    }

    #[test]
    fn save_overwrites_previous_snapshot_atomically() {
        let path = scratch("overwrite.json");
        let mut snap = sample();
        snap.save_atomic(&path).unwrap();
        snap.next_day = 9;
        snap.epoch = 3;
        snap.save_atomic(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap().next_day, 9);
    }

    #[test]
    fn doctored_bytes_fail_the_checksum() {
        let path = scratch("doctored.json");
        let snap = sample();
        snap.save_atomic(&path).unwrap();
        // In-place editing of any payload field breaks the header digest.
        let doctored = std::fs::read_to_string(&path)
            .unwrap()
            .replace(&format!("\"version\":{SNAPSHOT_VERSION}"), "\"version\":999");
        std::fs::write(&path, doctored).unwrap();
        assert!(matches!(Snapshot::load(&path), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn alien_versions_are_rejected_as_mismatch() {
        // A bare-JSON document (legacy framing) from some future schema.
        let mut snap = sample();
        snap.version = 999;
        let json = serde_json::to_string(&snap).unwrap();
        match Snapshot::from_checked_bytes(json.as_bytes()) {
            Err(SnapshotError::VersionMismatch { found, expected }) => {
                assert_eq!((found, expected), (999, SNAPSHOT_VERSION));
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        // A framed document whose header claims a future version.
        let framed = b"minicost-snapshot v9 fnv1a64:0000000000000000\n{}";
        match Snapshot::from_checked_bytes(framed) {
            Err(SnapshotError::VersionMismatch { found, expected }) => {
                assert_eq!((found, expected), (9, SNAPSHOT_VERSION));
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v1_snapshots_still_load() {
        let mut snap = sample();
        snap.version = 1;
        let json = serde_json::to_string(&snap).unwrap();
        let back = Snapshot::from_checked_bytes(json.as_bytes()).unwrap();
        assert_eq!(back, snap);
        // And through the filesystem path, as a real pre-upgrade file would.
        let path = scratch("legacy-v1.json");
        std::fs::write(&path, json).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), snap);
    }

    #[test]
    fn missing_and_corrupt_files_error_cleanly() {
        assert!(matches!(
            Snapshot::load(&scratch("does-not-exist.json")),
            Err(SnapshotError::Io(_))
        ));
        let path = scratch("corrupt.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(Snapshot::load(&path), Err(SnapshotError::Parse(_))));
        for err in [
            SnapshotError::Parse("x".into()),
            SnapshotError::Sync("x".into()),
            SnapshotError::Corrupt("x".into()),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn transient_classification_is_stable() {
        assert!(SnapshotError::Io("x".into()).is_transient());
        assert!(SnapshotError::Sync("x".into()).is_transient());
        assert!(!SnapshotError::Parse("x".into()).is_transient());
        assert!(!SnapshotError::Corrupt("x".into()).is_transient());
        assert!(!SnapshotError::VersionMismatch { found: 1, expected: 2 }.is_transient());
    }

    #[test]
    fn rotation_shifts_slots_and_candidates_order_newest_first() {
        let base = scratch("rotate.json");
        let mut backend = FsBackend;
        for (generation, day) in [(0usize, 3usize), (1, 6), (2, 9)] {
            let _ = generation;
            rotate(&mut backend, &base, 2).unwrap();
            let mut snap = sample();
            snap.next_day = day;
            snap.save_with(&mut backend, &base).unwrap();
        }
        let candidates = rotation_candidates(&base, 2);
        assert_eq!(candidates.len(), 3);
        let days: Vec<usize> =
            candidates.iter().map(|p| Snapshot::load(p).unwrap().next_day).collect();
        assert_eq!(days, vec![9, 6, 3], "newest first, then rotated predecessors");
        // A fourth generation pushes day-3 off the end of the rotation.
        rotate(&mut backend, &base, 2).unwrap();
        let mut snap = sample();
        snap.next_day = 12;
        snap.save_with(&mut backend, &base).unwrap();
        let days: Vec<usize> = rotation_candidates(&base, 2)
            .iter()
            .map(|p| Snapshot::load(p).unwrap().next_day)
            .collect();
        assert_eq!(days, vec![12, 9, 6]);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    proptest! {
        /// Any single-byte substitution anywhere in a framed snapshot —
        /// header, digest, or payload — must be detected at load: the codec
        /// returns an error, never a silently different snapshot.
        #[test]
        fn any_single_byte_flip_is_detected(
            position_seed in 0u64..u64::MAX,
            xor in 1u8..=255u8,
        ) {
            let bytes = sample().to_checked_bytes().unwrap();
            let ix = (position_seed % bytes.len() as u64) as usize;
            let mut flipped = bytes.clone();
            flipped[ix] ^= xor;
            prop_assert!(
                Snapshot::from_checked_bytes(&flipped).is_err(),
                "flip at byte {ix} (xor {xor:#04x}) must not load"
            );
        }

        /// Any strict prefix (a torn/truncated write) must be detected.
        #[test]
        fn any_truncation_is_detected(cut_seed in 0u64..u64::MAX) {
            let bytes = sample().to_checked_bytes().unwrap();
            let cut = (cut_seed % bytes.len() as u64) as usize;
            prop_assert!(
                Snapshot::from_checked_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not load"
            );
        }

        /// Clean round-trips always succeed regardless of cursor values —
        /// the checksum is over exact bytes, so there is no float-printing
        /// or re-serialization fragility to worry about.
        #[test]
        fn clean_round_trip_is_total(
            next_day in 0usize..10_000,
            epoch in 0u64..1_000_000,
            millis in proptest::collection::vec(0.0f64..1e6, 0..20),
        ) {
            let mut snap = sample();
            snap.next_day = next_day;
            snap.epoch = epoch;
            snap.decision_millis = millis;
            let bytes = snap.to_checked_bytes().unwrap();
            prop_assert_eq!(Snapshot::from_checked_bytes(&bytes).unwrap(), snap);
        }
    }
}
