//! Streaming request events.
//!
//! [`EventStream`] adapts a daily-resolution trace into the hourly request
//! stream a live ingestion tier would observe: for each day it splits every
//! file's daily read/write counts across 24 hours under a diurnal profile
//! (total-conserving, Poisson-jittered — the same apportionment as
//! [`tracegen::HourSplits`]) and emits one [`Event`] per active file-hour
//! in time order. Only one day of splits is ever resident, and the
//! expansion is seeded **statelessly per (file, day)**, so a restarted
//! consumer can resume at any day boundary and observe bit-identical
//! events — the property the checkpoint/restore contract of DESIGN.md §10
//! rests on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tracegen::{DiurnalProfile, FileId, Trace, HOURS};

/// Bytes per GB used when stamping [`Event::bytes`] from a file's
/// gigabyte-denominated catalog size.
const BYTES_PER_GB: f64 = 1e9;

/// Domain-separation constant for read-count hour splits.
const READ_DOMAIN: u64 = 0x5245_4144_5245_4144; // "READREAD"

/// Domain-separation constant for write-count hour splits.
const WRITE_DOMAIN: u64 = 0x5752_4954_5752_4954; // "WRITWRIT"

/// One observed file-hour of request activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Global hour index: `day * 24 + hour_of_day`.
    pub hour: u64,
    /// The file the requests hit.
    pub file: FileId,
    /// Read operations observed this hour.
    pub reads: u64,
    /// Write operations observed this hour.
    pub writes: u64,
    /// The file's size in bytes (catalog metadata carried on every event so
    /// a stateless consumer can learn sizes from the stream alone).
    pub bytes: u64,
}

impl Event {
    /// The day this event belongs to.
    #[must_use]
    pub fn day(&self) -> usize {
        (self.hour / HOURS as u64) as usize
    }
}

/// The per-(file, day) RNG seed for hour apportionment: a stateless mix of
/// the stream seed, the file id, the day, and a read/write domain tag.
fn split_seed(seed: u64, id: FileId, day: usize, domain: u64) -> u64 {
    crate::mix64(seed ^ crate::mix64(u64::from(id.0).wrapping_add(domain)) ^ (day as u64) << 1)
}

/// One file's hour splits for the day currently being emitted.
#[derive(Clone, Debug)]
struct FileDaySplit {
    ix: usize,
    bytes: u64,
    reads: [u64; HOURS],
    writes: [u64; HOURS],
}

/// A seeded, time-ordered iterator of [`Event`]s over a trace.
///
/// Events are ordered by `hour`, ties broken by ascending [`FileId`];
/// file-hours with zero activity are skipped. Memory held is one day of
/// splits for the files active that day — never the full fleet matrix.
#[derive(Debug)]
pub struct EventStream<'a> {
    trace: &'a Trace,
    profile: DiurnalProfile,
    seed: u64,
    day: usize,
    hour: usize,
    cursor: usize,
    splits: Vec<FileDaySplit>,
}

impl<'a> EventStream<'a> {
    /// Starts a stream over `trace` from day 0 under `profile`, seeded by
    /// `seed`.
    #[must_use]
    pub fn new(trace: &'a Trace, profile: DiurnalProfile, seed: u64) -> EventStream<'a> {
        EventStream::starting_at(trace, profile, seed, 0)
    }

    /// Starts a stream at day `day` (used to resume after a checkpoint
    /// restore). Because splits are seeded per (file, day), the events from
    /// `day` onward are bit-identical to a stream that ran from day 0.
    #[must_use]
    pub fn starting_at(
        trace: &'a Trace,
        profile: DiurnalProfile,
        seed: u64,
        day: usize,
    ) -> EventStream<'a> {
        let mut stream =
            EventStream { trace, profile, seed, day, hour: 0, cursor: 0, splits: Vec::new() };
        stream.fill_day();
        stream
    }

    /// The day the next emitted event will belong to (saturates at the
    /// horizon once the stream is exhausted).
    #[must_use]
    pub fn current_day(&self) -> usize {
        self.day
    }

    /// Computes the hour splits for every file active on `self.day`.
    fn fill_day(&mut self) {
        self.splits.clear();
        self.cursor = 0;
        self.hour = 0;
        if self.day >= self.trace.days {
            return;
        }
        for (ix, file) in self.trace.files.iter().enumerate() {
            let day_reads = file.reads.get(self.day).copied().unwrap_or(0);
            let day_writes = file.writes.get(self.day).copied().unwrap_or(0);
            if day_reads == 0 && day_writes == 0 {
                continue;
            }
            let mut read_rng =
                StdRng::seed_from_u64(split_seed(self.seed, file.id, self.day, READ_DOMAIN));
            let mut write_rng =
                StdRng::seed_from_u64(split_seed(self.seed, file.id, self.day, WRITE_DOMAIN));
            self.splits.push(FileDaySplit {
                ix,
                bytes: (file.size_gb * BYTES_PER_GB).max(0.0) as u64,
                reads: self.profile.split_day(day_reads, Some(&mut read_rng)),
                writes: self.profile.split_day(day_writes, Some(&mut write_rng)),
            });
        }
    }
}

impl Iterator for EventStream<'_> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            if self.day >= self.trace.days {
                return None;
            }
            while self.hour < HOURS {
                while self.cursor < self.splits.len() {
                    let split = &self.splits[self.cursor];
                    let (reads, writes) = (split.reads[self.hour], split.writes[self.hour]);
                    self.cursor += 1;
                    if reads == 0 && writes == 0 {
                        continue;
                    }
                    return Some(Event {
                        hour: (self.day * HOURS + self.hour) as u64,
                        file: self.trace.files[split.ix].id,
                        reads,
                        writes,
                        bytes: split.bytes,
                    });
                }
                self.hour += 1;
                self.cursor = 0;
            }
            self.day += 1;
            self.fill_day();
        }
    }
}

/// Order-sensitive FNV-1a digest of a slice of events — the per-day
/// control total a [`DayBatch`] carries so consumers can detect delivery
/// anomalies (duplicated/dropped/reordered/amplified events) without
/// access to ground truth.
#[must_use]
pub fn digest_events(events: &[Event]) -> u64 {
    let mut bytes = Vec::with_capacity(events.len() * 36);
    for e in events {
        bytes.extend_from_slice(&e.hour.to_le_bytes());
        bytes.extend_from_slice(&e.file.0.to_le_bytes());
        bytes.extend_from_slice(&e.reads.to_le_bytes());
        bytes.extend_from_slice(&e.writes.to_le_bytes());
        bytes.extend_from_slice(&e.bytes.to_le_bytes());
    }
    crate::checkpoint::fnv1a64(&bytes)
}

/// One day's worth of events as a delivery unit, with a digest computed at
/// the source over the events *in canonical order* (ascending hour, ties
/// by file id — the order [`EventStream`] emits).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DayBatch {
    /// The day every event in `events` belongs to.
    pub day: usize,
    /// The day's events. A quiet day is an empty (but still delivered)
    /// batch, so consumers can distinguish "no traffic" from "no delivery".
    pub events: Vec<Event>,
    /// [`digest_events`] over the canonical-order events.
    pub digest: u64,
}

impl DayBatch {
    /// Builds a batch from canonical-order events, stamping the digest.
    #[must_use]
    pub fn sealed(day: usize, events: Vec<Event>) -> DayBatch {
        let digest = digest_events(&events);
        DayBatch { day, events, digest }
    }

    /// Whether the delivered event bytes still match the sealed digest.
    #[must_use]
    pub fn verifies(&self) -> bool {
        digest_events(&self.events) == self.digest
    }
}

/// A day-batched event delivery channel.
///
/// [`EventSource::next_batch`] models the live delivery path — the one the
/// chaos harness ([`crate::fault::FaultySource`]) corrupts. `refetch`
/// models read-repair from the durable log: it re-materializes one day's
/// canonical batch and is exempt from delivery faults, which is what makes
/// every stream anomaly recoverable (DESIGN.md §11).
pub trait EventSource {
    /// The next day's batch in horizon order, or `None` past the horizon.
    fn next_batch(&mut self) -> Option<DayBatch>;

    /// Re-reads `day`'s canonical batch from durable storage, or `None` if
    /// `day` is past the horizon.
    fn refetch(&mut self, day: usize) -> Option<DayBatch>;
}

/// The clean [`EventSource`] over a trace: batches are collected from a
/// seeded [`EventStream`], so `next_batch` from day `d` and `refetch(d)`
/// return bit-identical batches (stateless per-`(file, day)` seeding).
#[derive(Debug)]
pub struct TraceSource<'a> {
    trace: &'a Trace,
    profile: DiurnalProfile,
    seed: u64,
    stream: std::iter::Peekable<EventStream<'a>>,
    next_day: usize,
}

impl<'a> TraceSource<'a> {
    /// A source over `trace` starting at `start_day`.
    #[must_use]
    pub fn new(
        trace: &'a Trace,
        profile: DiurnalProfile,
        seed: u64,
        start_day: usize,
    ) -> TraceSource<'a> {
        TraceSource {
            trace,
            profile: profile.clone(),
            seed,
            stream: EventStream::starting_at(trace, profile, seed, start_day).peekable(),
            next_day: start_day,
        }
    }
}

impl EventSource for TraceSource<'_> {
    fn next_batch(&mut self) -> Option<DayBatch> {
        if self.next_day >= self.trace.days {
            return None;
        }
        let day = self.next_day;
        let mut events = Vec::new();
        while self.stream.peek().is_some_and(|e| e.day() == day) {
            if let Some(event) = self.stream.next() {
                events.push(event);
            }
        }
        self.next_day += 1;
        Some(DayBatch::sealed(day, events))
    }

    fn refetch(&mut self, day: usize) -> Option<DayBatch> {
        if day >= self.trace.days {
            return None;
        }
        let events = EventStream::starting_at(self.trace, self.profile.clone(), self.seed, day)
            .take_while(|e| e.day() == day)
            .collect();
        Some(DayBatch::sealed(day, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tracegen::TraceConfig;

    fn trace() -> Trace {
        Trace::generate(&TraceConfig::small(12, 9, 41))
    }

    #[test]
    fn events_conserve_daily_totals_exactly() {
        let t = trace();
        let mut reads: BTreeMap<(usize, u32), u64> = BTreeMap::new();
        let mut writes: BTreeMap<(usize, u32), u64> = BTreeMap::new();
        for ev in EventStream::new(&t, DiurnalProfile::web_default(), 7) {
            *reads.entry((ev.day(), ev.file.0)).or_insert(0) += ev.reads;
            *writes.entry((ev.day(), ev.file.0)).or_insert(0) += ev.writes;
        }
        for file in &t.files {
            for day in 0..t.days {
                let key = (day, file.id.0);
                assert_eq!(reads.get(&key).copied().unwrap_or(0), file.reads[day]);
                assert_eq!(writes.get(&key).copied().unwrap_or(0), file.writes[day]);
            }
        }
    }

    #[test]
    fn events_are_time_ordered_with_id_tiebreak() {
        let t = trace();
        let events: Vec<Event> = EventStream::new(&t, DiurnalProfile::web_default(), 3).collect();
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(
                pair[0].hour < pair[1].hour
                    || (pair[0].hour == pair[1].hour && pair[0].file < pair[1].file),
                "{:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
        // Every event carries some activity and a size.
        assert!(events.iter().all(|e| e.reads + e.writes > 0));
        assert!(events.iter().all(|e| e.bytes > 0));
    }

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let t = trace();
        let p = DiurnalProfile::web_default;
        let a: Vec<Event> = EventStream::new(&t, p(), 9).collect();
        let b: Vec<Event> = EventStream::new(&t, p(), 9).collect();
        let c: Vec<Event> = EventStream::new(&t, p(), 10).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "seed must shuffle the hourly apportionment");
    }

    #[test]
    fn starting_mid_horizon_matches_the_suffix() {
        let t = trace();
        let p = DiurnalProfile::web_default;
        let full: Vec<Event> = EventStream::new(&t, p(), 5).collect();
        let resume_day = 4;
        let resumed: Vec<Event> = EventStream::starting_at(&t, p(), 5, resume_day).collect();
        let suffix: Vec<Event> = full.into_iter().filter(|e| e.day() >= resume_day).collect();
        assert_eq!(resumed, suffix, "restart at a day boundary must be bit-identical");
    }

    #[test]
    fn empty_and_exhausted_streams_terminate() {
        let empty = Trace { days: 0, files: vec![] };
        assert_eq!(EventStream::new(&empty, DiurnalProfile::flat(), 1).count(), 0);
        let t = trace();
        let past_end = EventStream::starting_at(&t, DiurnalProfile::flat(), 1, t.days + 3);
        assert_eq!(past_end.count(), 0);
    }

    #[test]
    fn trace_source_batches_cover_the_stream_exactly() {
        let t = trace();
        let p = DiurnalProfile::web_default;
        let mut source = TraceSource::new(&t, p(), 5, 0);
        let mut batched = Vec::new();
        let mut days_seen = 0;
        while let Some(batch) = source.next_batch() {
            assert_eq!(batch.day, days_seen, "batches arrive in horizon order");
            assert!(batch.verifies(), "sealed batches self-verify");
            batched.extend(batch.events);
            days_seen += 1;
        }
        assert_eq!(days_seen, t.days);
        let flat: Vec<Event> = EventStream::new(&t, p(), 5).collect();
        assert_eq!(batched, flat, "batching must not reorder or drop events");
    }

    #[test]
    fn refetch_reproduces_delivered_batches_bit_identically() {
        let t = trace();
        let p = DiurnalProfile::web_default;
        let mut source = TraceSource::new(&t, p(), 9, 0);
        let delivered: Vec<DayBatch> = std::iter::from_fn(|| source.next_batch()).collect();
        for batch in &delivered {
            let again = source.refetch(batch.day).expect("within horizon");
            assert_eq!(&again, batch, "day {} refetch", batch.day);
        }
        assert!(source.refetch(t.days).is_none(), "past the horizon");
    }

    #[test]
    fn digest_is_sensitive_to_every_anomaly_kind() {
        let t = trace();
        let mut source = TraceSource::new(&t, DiurnalProfile::web_default(), 3, 0);
        let batch = std::iter::from_fn(|| source.next_batch())
            .find(|b| b.events.len() >= 2)
            .expect("an active day");
        // Reorder.
        let mut reordered = batch.clone();
        reordered.events.reverse();
        assert!(!reordered.verifies());
        // Drop.
        let mut dropped = batch.clone();
        dropped.events.pop();
        assert!(!dropped.verifies());
        // Duplicate.
        let mut duplicated = batch.clone();
        let first = duplicated.events[0];
        duplicated.events.push(first);
        assert!(!duplicated.verifies());
        // Burst amplification.
        let mut burst = batch.clone();
        for e in &mut burst.events {
            e.reads = e.reads.saturating_mul(7);
            e.writes = e.writes.saturating_mul(7);
        }
        assert!(!burst.verifies());
    }
}
