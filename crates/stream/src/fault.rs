//! Seeded, deterministic fault injection for the serving path.
//!
//! A [`FaultPlan`] is a small, serializable description of *which* fault
//! sites may fire and *how often*. Whether a particular consultation of a
//! site actually fires is a pure splitmix64 function of
//! `(plan seed, site tag, consultation index)` — no wall clock, no global
//! RNG — so an entire chaos run is replayable from the plan alone, and the
//! supervisor's incident log is bit-identical across reruns (the property
//! `tests/chaos_serve.rs` pins).
//!
//! Two injectable wrappers live here:
//!
//! * [`FaultyBackend`] wraps any [`StorageBackend`] and corrupts the
//!   checkpoint path: transient I/O errors on read/write, *torn writes*
//!   (the write "succeeds" but only a prefix lands — a lying fsync), and
//!   single-byte *bit flips* in otherwise complete snapshots.
//! * [`FaultySource`] wraps any [`EventSource`] and corrupts delivery:
//!   duplicated days, dropped days, out-of-order events within a day, and
//!   burst amplification of request counts. Read-repair (`refetch`) is
//!   deliberately exempt — it models re-reading the durable log, which is
//!   what makes every delivery anomaly recoverable.
//!
//! Recoverability is budgeted, not assumed: [`FaultPlan::max_faults`]
//! caps the *total* number of injected faults, so any plan with a finite
//! budget below the supervisor's retry allowance is provably recoverable —
//! the headline invariant (DESIGN.md §11) that the post-recovery ledger is
//! bit-identical to the fault-free run.

use crate::checkpoint::{SnapshotError, StorageBackend};
use crate::event::{DayBatch, EventSource};
use crate::mix64;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

/// The named places a [`FaultPlan`] can inject a fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Checkpoint write fails with a transient I/O error (retryable).
    SaveIo,
    /// Checkpoint write "succeeds" but only a prefix of the bytes lands.
    TornWrite,
    /// Checkpoint write lands complete but with one byte flipped.
    BitFlip,
    /// Checkpoint read fails with a transient I/O error (retryable).
    LoadIo,
    /// A policy decision step fails.
    PolicyStep,
    /// An already-delivered day is delivered again.
    DuplicateDay,
    /// A day's batch is dropped from the delivery stream.
    DropDay,
    /// A day's events arrive out of order.
    Reorder,
    /// A day's request counts arrive amplified (duplicated upstream).
    Burst,
    /// A vdev object read fails with a transient I/O error (retryable).
    VdevRead,
    /// A vdev object write fails with a transient I/O error (retryable).
    VdevWrite,
    /// A vdev transfer runs at inflated latency (can trip the migration
    /// timeout; the transfer itself still completes).
    SlowVdev,
    /// A vdev allocation is refused as if the tier were full (retryable;
    /// models transient capacity pressure).
    TierFull,
    /// The process "crashes" between a migration's copy and its commit
    /// record — the torn state the journal must roll back on restart.
    CrashCopy,
}

/// Every site, in a fixed order (indexes match the injector's counters).
pub const FAULT_SITES: [FaultSite; 14] = [
    FaultSite::SaveIo,
    FaultSite::TornWrite,
    FaultSite::BitFlip,
    FaultSite::LoadIo,
    FaultSite::PolicyStep,
    FaultSite::DuplicateDay,
    FaultSite::DropDay,
    FaultSite::Reorder,
    FaultSite::Burst,
    FaultSite::VdevRead,
    FaultSite::VdevWrite,
    FaultSite::SlowVdev,
    FaultSite::TierFull,
    FaultSite::CrashCopy,
];

impl FaultSite {
    /// Stable index into per-site counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultSite::SaveIo => 0,
            FaultSite::TornWrite => 1,
            FaultSite::BitFlip => 2,
            FaultSite::LoadIo => 3,
            FaultSite::PolicyStep => 4,
            FaultSite::DuplicateDay => 5,
            FaultSite::DropDay => 6,
            FaultSite::Reorder => 7,
            FaultSite::Burst => 8,
            FaultSite::VdevRead => 9,
            FaultSite::VdevWrite => 10,
            FaultSite::SlowVdev => 11,
            FaultSite::TierFull => 12,
            FaultSite::CrashCopy => 13,
        }
    }

    /// Domain-separation tag mixed into the fire/no-fire hash.
    #[must_use]
    fn tag(self) -> u64 {
        // Arbitrary fixed odd constants; changing any silently reshuffles
        // every chaos run, so treat them as frozen.
        const TAGS: [u64; 14] = [
            0x5341_5645_494f_0001,
            0x544f_524e_5752_0003,
            0x4249_5446_4c49_0005,
            0x4c4f_4144_494f_0007,
            0x504f_4c49_4359_0009,
            0x4455_5044_4159_000b,
            0x4452_4f50_4441_000d,
            0x5245_4f52_4445_000f,
            0x4255_5253_5421_0011,
            0x5644_4556_5244_0013,
            0x5644_4556_5752_0015,
            0x534c_4f57_5644_0017,
            0x5449_4552_4655_0019,
            0x4352_4153_4843_001b,
        ];
        TAGS[self.index()]
    }

    /// Human-readable site name (used in incident logs and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::SaveIo => "save-io",
            FaultSite::TornWrite => "torn-write",
            FaultSite::BitFlip => "bit-flip",
            FaultSite::LoadIo => "load-io",
            FaultSite::PolicyStep => "policy-step",
            FaultSite::DuplicateDay => "duplicate-day",
            FaultSite::DropDay => "drop-day",
            FaultSite::Reorder => "reorder",
            FaultSite::Burst => "burst",
            FaultSite::VdevRead => "vdev-read",
            FaultSite::VdevWrite => "vdev-write",
            FaultSite::SlowVdev => "slow-vdev",
            FaultSite::TierFull => "tier-full",
            FaultSite::CrashCopy => "crash-copy",
        }
    }
}

/// A seeded, serializable, replayable fault schedule.
///
/// Each `*_permille` field is the probability (in parts per thousand) that
/// the corresponding [`FaultSite`] fires on one consultation. All zeros is
/// a quiet plan; [`FaultPlan::chaos`] is the standard mixed plan the CLI's
/// `--chaos-seed` shorthand expands to.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed every fire/no-fire decision derives from.
    pub seed: u64,
    /// Transient checkpoint-write failures.
    #[serde(default)]
    pub save_io_permille: u32,
    /// Torn (prefix-only) checkpoint writes.
    #[serde(default)]
    pub torn_write_permille: u32,
    /// Single-byte corruption of written checkpoints.
    #[serde(default)]
    pub bit_flip_permille: u32,
    /// Transient checkpoint-read failures.
    #[serde(default)]
    pub load_io_permille: u32,
    /// Policy decision-step failures.
    #[serde(default)]
    pub policy_step_permille: u32,
    /// Duplicated-day deliveries.
    #[serde(default)]
    pub duplicate_day_permille: u32,
    /// Dropped-day deliveries.
    #[serde(default)]
    pub drop_day_permille: u32,
    /// Out-of-order deliveries within a day.
    #[serde(default)]
    pub reorder_permille: u32,
    /// Burst-amplified deliveries.
    #[serde(default)]
    pub burst_permille: u32,
    /// Transient vdev object-read failures (store path).
    #[serde(default)]
    pub vdev_read_permille: u32,
    /// Transient vdev object-write failures (store path).
    #[serde(default)]
    pub vdev_write_permille: u32,
    /// Latency-inflated vdev transfers (store path).
    #[serde(default)]
    pub slow_vdev_permille: u32,
    /// Transient tier-full refusals on vdev allocation (store path).
    #[serde(default)]
    pub tier_full_permille: u32,
    /// Simulated crashes between a migration's copy and commit (store
    /// path; recoverable only across a restart).
    #[serde(default)]
    pub crash_copy_permille: u32,
    /// Hard cap on total injected faults across all sites; 0 means
    /// unlimited. A finite cap below the supervisor's retry budget makes
    /// the whole plan provably recoverable.
    #[serde(default)]
    pub max_faults: u32,
}

impl FaultPlan {
    /// A plan that never fires (the supervisor's default).
    #[must_use]
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            save_io_permille: 0,
            torn_write_permille: 0,
            bit_flip_permille: 0,
            load_io_permille: 0,
            policy_step_permille: 0,
            duplicate_day_permille: 0,
            drop_day_permille: 0,
            reorder_permille: 0,
            burst_permille: 0,
            vdev_read_permille: 0,
            vdev_write_permille: 0,
            slow_vdev_permille: 0,
            tier_full_permille: 0,
            crash_copy_permille: 0,
            max_faults: 0,
        }
    }

    /// The standard mixed chaos plan behind `--chaos-seed`: every site
    /// armed at a moderate rate, with a finite budget so the plan stays
    /// recoverable under the default supervisor retry allowance.
    #[must_use]
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            save_io_permille: 150,
            torn_write_permille: 120,
            bit_flip_permille: 120,
            load_io_permille: 150,
            policy_step_permille: 100,
            duplicate_day_permille: 120,
            drop_day_permille: 120,
            reorder_permille: 150,
            burst_permille: 120,
            vdev_read_permille: 0,
            vdev_write_permille: 0,
            slow_vdev_permille: 0,
            tier_full_permille: 0,
            crash_copy_permille: 0,
            max_faults: 6,
        }
    }

    /// The store-path chaos plan behind `--chaos-seed` when a store is
    /// attached: the checkpoint/delivery sites of [`FaultPlan::chaos`] plus
    /// every retryable vdev site, still under a finite budget below the
    /// migration retry allowance. `CrashCopy` stays disarmed — a simulated
    /// crash is recoverable only across a restart, so it is armed
    /// explicitly (see `store_crash`) rather than mixed into soak plans.
    #[must_use]
    pub fn store_chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            vdev_read_permille: 150,
            vdev_write_permille: 150,
            slow_vdev_permille: 120,
            tier_full_permille: 100,
            ..FaultPlan::chaos(seed)
        }
    }

    /// A plan that fires exactly one crash between copy and commit (first
    /// consultation, rate 1000‰, budget 1) and nothing else: the
    /// deterministic kill switch the chaos drills restart from.
    #[must_use]
    pub fn store_crash(seed: u64) -> FaultPlan {
        FaultPlan { crash_copy_permille: 1000, max_faults: 1, ..FaultPlan::quiet(seed) }
    }

    /// The firing rate for `site`, in parts per thousand.
    #[must_use]
    pub fn permille(&self, site: FaultSite) -> u32 {
        match site {
            FaultSite::SaveIo => self.save_io_permille,
            FaultSite::TornWrite => self.torn_write_permille,
            FaultSite::BitFlip => self.bit_flip_permille,
            FaultSite::LoadIo => self.load_io_permille,
            FaultSite::PolicyStep => self.policy_step_permille,
            FaultSite::DuplicateDay => self.duplicate_day_permille,
            FaultSite::DropDay => self.drop_day_permille,
            FaultSite::Reorder => self.reorder_permille,
            FaultSite::Burst => self.burst_permille,
            FaultSite::VdevRead => self.vdev_read_permille,
            FaultSite::VdevWrite => self.vdev_write_permille,
            FaultSite::SlowVdev => self.slow_vdev_permille,
            FaultSite::TierFull => self.tier_full_permille,
            FaultSite::CrashCopy => self.crash_copy_permille,
        }
    }

    /// Builds the shared runtime injector for this plan.
    #[must_use]
    pub fn injector(&self) -> SharedInjector {
        Rc::new(RefCell::new(FaultInjector::new(self.clone())))
    }

    /// Parses a plan from its JSON spelling (omitted rates default to 0).
    ///
    /// # Errors
    ///
    /// Returns the parse failure as a message.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        serde_json::from_str(text).map_err(|e| format!("fault plan: {e}"))
    }

    /// Serializes the plan to JSON (the `--fault-plan` file format).
    ///
    /// # Errors
    ///
    /// Returns the serialization failure as a message.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| format!("fault plan: {e}"))
    }

    /// Reads and parses a plan file.
    ///
    /// # Errors
    ///
    /// Returns the I/O or parse failure as a message.
    pub fn load(path: &Path) -> Result<FaultPlan, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        FaultPlan::from_json(&text)
    }
}

/// Runtime state of one chaos run: per-site consultation counters plus the
/// spent fault budget. Deterministic: the `n`-th consultation of a site
/// fires iff `mix64(seed ⊕ tag ⊕ mix64(n)) mod 1000 < permille`.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    consults: [u64; FAULT_SITES.len()],
    injected: [u64; FAULT_SITES.len()],
    total_injected: u64,
}

impl FaultInjector {
    /// A fresh injector for `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            consults: [0; FAULT_SITES.len()],
            injected: [0; FAULT_SITES.len()],
            total_injected: 0,
        }
    }

    /// Consults `site`: returns whether a fault fires here, advancing the
    /// site's deterministic consultation counter either way.
    pub fn fires(&mut self, site: FaultSite) -> bool {
        let ix = site.index();
        let n = self.consults[ix];
        self.consults[ix] += 1;
        let rate = u64::from(self.plan.permille(site));
        if rate == 0 {
            return false;
        }
        if self.plan.max_faults > 0 && self.total_injected >= u64::from(self.plan.max_faults) {
            return false;
        }
        let roll = mix64(self.plan.seed ^ site.tag() ^ mix64(n)) % 1000;
        let fire = roll < rate;
        if fire {
            self.injected[ix] += 1;
            self.total_injected += 1;
        }
        fire
    }

    /// A deterministic nonce for shaping the `site`'s current fault (e.g.
    /// which byte to flip); varies per injection of that site.
    #[must_use]
    pub fn nonce(&self, site: FaultSite) -> u64 {
        mix64(self.plan.seed ^ site.tag().rotate_left(17) ^ self.injected[site.index()])
    }

    /// Total faults injected so far, across all sites.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.total_injected
    }

    /// Faults injected at one site so far.
    #[must_use]
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.injected[site.index()]
    }

    /// The plan this injector replays.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

/// The injector handle shared by every faulty wrapper in one run. Serving
/// is single-threaded, so plain `Rc<RefCell<…>>` suffices and keeps the
/// consultation order — and therefore the replay — deterministic.
pub type SharedInjector = Rc<RefCell<FaultInjector>>;

/// A [`StorageBackend`] wrapper that injects checkpoint-path faults.
#[derive(Debug)]
pub struct FaultyBackend<B: StorageBackend> {
    inner: B,
    injector: SharedInjector,
}

impl<B: StorageBackend> FaultyBackend<B> {
    /// Wraps `inner`, drawing faults from `injector`.
    pub fn new(inner: B, injector: SharedInjector) -> FaultyBackend<B> {
        FaultyBackend { inner, injector }
    }
}

impl<B: StorageBackend> StorageBackend for FaultyBackend<B> {
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, SnapshotError> {
        if self.injector.borrow_mut().fires(FaultSite::LoadIo) {
            return Err(SnapshotError::Io("injected transient read failure".to_owned()));
        }
        self.inner.read(path)
    }

    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
        let (save_io, torn, flip) = {
            let mut inj = self.injector.borrow_mut();
            (
                inj.fires(FaultSite::SaveIo),
                inj.fires(FaultSite::TornWrite),
                inj.fires(FaultSite::BitFlip),
            )
        };
        if save_io {
            return Err(SnapshotError::Io("injected transient write failure".to_owned()));
        }
        if torn && !bytes.is_empty() {
            // The write reports success but only a prefix lands — the
            // torn-write/lying-fsync failure mode the v2 checksum catches
            // at the next restore.
            let nonce = self.injector.borrow().nonce(FaultSite::TornWrite);
            let keep = 1 + (nonce % (bytes.len() as u64)) as usize;
            return self.inner.write_atomic(path, &bytes[..keep.min(bytes.len() - 1)]);
        }
        if flip && !bytes.is_empty() {
            let nonce = self.injector.borrow().nonce(FaultSite::BitFlip);
            let ix = (nonce % (bytes.len() as u64)) as usize;
            let mut corrupted = bytes.to_vec();
            // Any nonzero xor works; 0x20 keeps most bytes printable so the
            // corruption survives text-mode copies in CI logs.
            corrupted[ix] ^= 0x20;
            return self.inner.write_atomic(path, &corrupted);
        }
        self.inner.write_atomic(path, bytes)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), SnapshotError> {
        self.inner.rename(from, to)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// An [`EventSource`] wrapper that injects delivery anomalies. Digests are
/// passed through untouched, so every corruption is detectable downstream;
/// `refetch` (read-repair) is exempt by design.
#[derive(Debug)]
pub struct FaultySource<S: EventSource> {
    inner: S,
    injector: SharedInjector,
    /// A batch held back for duplicate delivery on the next pull.
    replay: Option<DayBatch>,
}

impl<S: EventSource> FaultySource<S> {
    /// Wraps `inner`, drawing faults from `injector`.
    pub fn new(inner: S, injector: SharedInjector) -> FaultySource<S> {
        FaultySource { inner, injector, replay: None }
    }
}

impl<S: EventSource> EventSource for FaultySource<S> {
    fn next_batch(&mut self) -> Option<DayBatch> {
        if let Some(dup) = self.replay.take() {
            return Some(dup);
        }
        let mut batch = self.inner.next_batch()?;
        let (dup, drop_day, reorder, burst) = {
            let mut inj = self.injector.borrow_mut();
            (
                inj.fires(FaultSite::DuplicateDay),
                inj.fires(FaultSite::DropDay),
                inj.fires(FaultSite::Reorder),
                inj.fires(FaultSite::Burst),
            )
        };
        if drop_day {
            // This day's delivery vanishes; the consumer sees the next day
            // (or the end of the stream) and must read-repair the gap.
            batch = self.inner.next_batch()?;
        }
        if dup {
            self.replay = Some(batch.clone());
        }
        if reorder && batch.events.len() > 1 {
            batch.events.reverse();
        }
        if burst {
            for e in &mut batch.events {
                e.reads = e.reads.saturating_mul(7);
                e.writes = e.writes.saturating_mul(7);
            }
        }
        Some(batch)
    }

    fn refetch(&mut self, day: usize) -> Option<DayBatch> {
        self.inner.refetch(day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::FsBackend;
    use crate::event::TraceSource;
    use std::path::PathBuf;
    use tracegen::{DiurnalProfile, Trace, TraceConfig};

    fn trace() -> Trace {
        Trace::generate(&TraceConfig::small(10, 8, 31))
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("minicost-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::chaos(42);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // Omitted rate fields default to zero (forward-compatible plans).
        let sparse: FaultPlan = serde_json::from_str("{\"seed\":7}").unwrap();
        assert_eq!(sparse, FaultPlan::quiet(7));
    }

    #[test]
    fn injector_is_deterministic_and_seed_sensitive() {
        let fire_pattern = |seed: u64| -> Vec<bool> {
            let mut inj =
                FaultInjector::new(FaultPlan { save_io_permille: 300, ..FaultPlan::quiet(seed) });
            (0..200).map(|_| inj.fires(FaultSite::SaveIo)).collect()
        };
        assert_eq!(fire_pattern(1), fire_pattern(1), "same seed, same schedule");
        assert_ne!(fire_pattern(1), fire_pattern(2), "different seed, different schedule");
        let fired = fire_pattern(1).iter().filter(|&&f| f).count();
        assert!(fired > 20 && fired < 120, "300‰ over 200 consults fired {fired} times");
    }

    #[test]
    fn budget_caps_total_injections() {
        let plan = FaultPlan { save_io_permille: 1000, max_faults: 3, ..FaultPlan::quiet(9) };
        let mut inj = FaultInjector::new(plan);
        let fired = (0..100).filter(|_| inj.fires(FaultSite::SaveIo)).count();
        assert_eq!(fired, 3, "budget of 3 must stop the 100%-rate site");
        assert_eq!(inj.total_injected(), 3);
        assert_eq!(inj.injected_at(FaultSite::SaveIo), 3);
    }

    #[test]
    fn store_plans_arm_the_right_sites() {
        let soak = FaultPlan::store_chaos(21);
        for site in
            [FaultSite::VdevRead, FaultSite::VdevWrite, FaultSite::SlowVdev, FaultSite::TierFull]
        {
            assert!(soak.permille(site) > 0, "{} must be armed in store_chaos", site.name());
        }
        assert_eq!(soak.permille(FaultSite::CrashCopy), 0, "soak plans never self-crash");
        assert_eq!(soak.max_faults, FaultPlan::chaos(21).max_faults);

        // The crash plan fires exactly once, at the first consultation.
        let mut inj = FaultInjector::new(FaultPlan::store_crash(4));
        assert!(inj.fires(FaultSite::CrashCopy));
        let again = (0..50).filter(|_| inj.fires(FaultSite::CrashCopy)).count();
        assert_eq!(again, 0, "budget 1 caps the crash plan");
        for site in FAULT_SITES {
            if site != FaultSite::CrashCopy {
                assert!(!inj.fires(site), "{} fired under store_crash", site.name());
            }
        }
    }

    #[test]
    fn quiet_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::quiet(5));
        for site in FAULT_SITES {
            for _ in 0..50 {
                assert!(!inj.fires(site), "{} fired under a quiet plan", site.name());
            }
        }
    }

    #[test]
    fn faulty_backend_torn_write_is_caught_by_checksum() {
        use crate::checkpoint::{Snapshot, StorageBackend};
        let plan = FaultPlan { torn_write_permille: 1000, ..FaultPlan::quiet(3) };
        let mut backend = FaultyBackend::new(FsBackend, plan.injector());
        let path = scratch("torn.json");
        let bytes = b"minicost-snapshot v2 fnv1a64:0000000000000000\n{}".to_vec();
        backend.write_atomic(&path, &bytes).unwrap();
        let landed = std::fs::read(&path).unwrap();
        assert!(landed.len() < bytes.len(), "torn write must truncate");
        assert!(Snapshot::load(&path).is_err(), "truncated snapshot must not load");
    }

    #[test]
    fn faulty_backend_bit_flip_changes_exactly_one_byte() {
        use crate::checkpoint::StorageBackend;
        let plan = FaultPlan { bit_flip_permille: 1000, ..FaultPlan::quiet(11) };
        let mut backend = FaultyBackend::new(FsBackend, plan.injector());
        let path = scratch("flip.json");
        let bytes: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        backend.write_atomic(&path, &bytes).unwrap();
        let landed = std::fs::read(&path).unwrap();
        assert_eq!(landed.len(), bytes.len());
        let diffs = landed.iter().zip(&bytes).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1, "exactly one byte must differ");
    }

    /// Ground-truth batches for the test trace.
    fn truth(t: &Trace) -> Vec<DayBatch> {
        let mut clean = TraceSource::new(t, DiurnalProfile::web_default(), 5, 0);
        std::iter::from_fn(|| clean.next_batch()).collect()
    }

    fn faulty(t: &Trace, plan: FaultPlan) -> FaultySource<TraceSource<'_>> {
        FaultySource::new(TraceSource::new(t, DiurnalProfile::web_default(), 5, 0), plan.injector())
    }

    #[test]
    fn duplicate_day_redelivers_the_same_batch() {
        let t = trace();
        let plan = FaultPlan { duplicate_day_permille: 1000, max_faults: 1, ..FaultPlan::quiet(3) };
        let mut source = faulty(&t, plan);
        let first = source.next_batch().unwrap();
        let second = source.next_batch().unwrap();
        assert_eq!(first, second, "the duplicated batch is delivered twice");
        assert_eq!(source.next_batch().unwrap().day, first.day + 1, "then delivery resumes");
    }

    #[test]
    fn drop_day_skips_a_delivery() {
        let t = trace();
        let plan = FaultPlan { drop_day_permille: 1000, max_faults: 1, ..FaultPlan::quiet(3) };
        let mut source = faulty(&t, plan);
        assert_eq!(source.next_batch().unwrap().day, 1, "day 0 vanished from delivery");
        // Read-repair recovers the dropped day from durable ground truth.
        assert_eq!(source.refetch(0).unwrap(), truth(&t)[0]);
    }

    #[test]
    fn reorder_breaks_the_digest_and_refetch_repairs() {
        let t = trace();
        let ground = truth(&t);
        let plan = FaultPlan { reorder_permille: 1000, ..FaultPlan::quiet(3) };
        let mut source = faulty(&t, plan);
        let mut saw_corruption = false;
        while let Some(b) = source.next_batch() {
            if b.events.len() > 1 {
                assert!(!b.verifies(), "day {} should fail its digest", b.day);
                saw_corruption = true;
            }
            assert_eq!(&source.refetch(b.day).unwrap(), &ground[b.day]);
        }
        assert!(saw_corruption, "a multi-event day must have been reordered");
    }

    #[test]
    fn burst_breaks_the_digest_and_refetch_repairs() {
        let t = trace();
        let ground = truth(&t);
        let plan = FaultPlan { burst_permille: 1000, ..FaultPlan::quiet(3) };
        let mut source = faulty(&t, plan);
        let mut saw_corruption = false;
        while let Some(b) = source.next_batch() {
            if b.events.iter().any(|e| e.reads > 0 || e.writes > 0) {
                assert!(!b.verifies(), "day {} should fail its digest", b.day);
                saw_corruption = true;
            }
            assert_eq!(&source.refetch(b.day).unwrap(), &ground[b.day]);
        }
        assert!(saw_corruption, "an active day must have been amplified");
    }
}
