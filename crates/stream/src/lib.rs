//! Online ingestion and serving substrate for MiniCost.
//!
//! The batch pipeline (`minicost-core`) pre-materializes the full
//! file × day request matrix and replays it in one shot. A production
//! deployment of the paper's system instead *observes* requests as a
//! stream and decides tiers online from the statistics it has accumulated
//! so far (§5.1: "Everyday, the trained agent runs one time for all data
//! files"). This crate provides the stream-side building blocks:
//!
//! * [`event`] — seeded, time-ordered `(hour, file, reads, writes, bytes)`
//!   request events derived lazily from a trace, one day resident at a
//!   time, never the whole matrix.
//! * [`stats`] — exact per-file sliding-window counters with strictly
//!   bounded memory: `O(window)` per tracked file, independent of the
//!   horizon.
//! * [`sketch`] — a count-min sketch and a space-saving heavy-hitter
//!   summary, the sublinear fallbacks for fleets larger than RAM-resident
//!   exact state.
//! * [`bounded`] — the combined degradation path: exact windows for the
//!   heavy hitters, sketch estimates for the long tail.
//! * [`checkpoint`] — a versioned, FNV-checksummed snapshot of the whole
//!   serving state (statistics, ledgers, cursors) written atomically
//!   through a [`checkpoint::StorageBackend`], with rotation helpers, so a
//!   killed server restarts bit-identically (DESIGN.md §10) and a corrupt
//!   snapshot is detected rather than resumed (DESIGN.md §11).
//! * [`fault`] — the seeded, deterministic chaos layer: a serializable
//!   [`fault::FaultPlan`] drives injectable wrappers that corrupt the
//!   checkpoint path ([`fault::FaultyBackend`]) and the event delivery
//!   path ([`fault::FaultySource`]), replayably.
//!
//! The decision loop that drives a `Policy` from these statistics lives in
//! `minicost-core` (`serve` module); this crate deliberately depends only
//! on `minicost-trace` and `minicost-pricing` so the dependency graph
//! stays acyclic.

#![warn(missing_docs)]
// Library code must surface failures as values (L2 no-panic-in-libs); tests
// may unwrap freely.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Tests assert bit-exact float reproducibility on purpose.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod bounded;
pub mod checkpoint;
pub mod event;
pub mod fault;
pub mod sketch;
pub mod stats;

pub use bounded::{BoundedConfig, BoundedStats};
pub use checkpoint::{
    fnv1a64, rotate, rotated_path, rotation_candidates, FsBackend, Snapshot, SnapshotError,
    StorageBackend, SNAPSHOT_VERSION,
};
pub use event::{digest_events, DayBatch, Event, EventSource, EventStream, TraceSource};
pub use fault::{
    FaultInjector, FaultPlan, FaultSite, FaultyBackend, FaultySource, SharedInjector, FAULT_SITES,
};
pub use sketch::{CountMinSketch, SpaceSaving, SpaceSavingEntry};
pub use stats::{ExactStats, FileStats};

/// A splitmix64-style finalizer: the stable 64-bit mixer every seeded hash
/// in this crate derives from, so nothing depends on the process-seeded
/// std hasher.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::mix64;

    #[test]
    fn mix64_is_stable_and_spreading() {
        // Fixed regression anchors: these values must never change, or every
        // sketch cell assignment (and thus every bounded-mode decision)
        // silently shifts.
        assert_eq!(mix64(0), 0);
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        let distinct: std::collections::BTreeSet<u64> = (0..1000u64).map(mix64).collect();
        assert_eq!(distinct.len(), 1000, "mixer must be injective on small inputs");
    }
}
