//! Sublinear frequency summaries for fleets too large for exact state.
//!
//! Two classic streaming structures back the bounded-memory mode:
//!
//! * [`CountMinSketch`] — a `depth × width` grid of saturating counters.
//!   Point queries never *under*-estimate; the overestimate is bounded by
//!   colliding mass, shrinking as `width` grows (Cormode & Muthukrishnan).
//! * [`SpaceSaving`] — the top-`k` heavy-hitter summary (Metwally et al.):
//!   at most `capacity` tracked ids, each with an exact-or-overestimated
//!   count and the overestimation bound it inherited at admission.
//!
//! Both are deterministic: hashing derives from [`crate::mix64`] with an
//! explicit seed, never from the process-randomized std hasher, and
//! eviction ties break on ascending id. That keeps bounded-mode decisions
//! reproducible across runs and across checkpoint restores.

use crate::mix64;
use serde::{Deserialize, Serialize};

/// A count-min sketch over `u64` keys with saturating counters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    seed: u64,
    rows: Vec<u64>,
}

impl CountMinSketch {
    /// A sketch with `depth` rows of `width` counters (both clamped to at
    /// least 1), hashed under `seed`.
    #[must_use]
    pub fn new(width: usize, depth: usize, seed: u64) -> CountMinSketch {
        let width = width.max(1);
        let depth = depth.max(1);
        CountMinSketch { width, depth, seed, rows: vec![0; width * depth] }
    }

    /// Counters per row.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of independent hash rows.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The flat cell index of `key` in `row`.
    fn cell(&self, row: usize, key: u64) -> usize {
        let h = mix64(key ^ mix64(self.seed.wrapping_add(row as u64 + 1)));
        // xtask-allow(panic-reachability): width clamped to at least 1 in new()
        row * self.width + (h % self.width as u64) as usize
    }

    /// Adds `count` to `key` in every row (saturating).
    pub fn add(&mut self, key: u64, count: u64) {
        for row in 0..self.depth {
            let ix = self.cell(row, key);
            if let Some(counter) = self.rows.get_mut(ix) {
                *counter = counter.saturating_add(count);
            }
        }
    }

    /// The point estimate for `key`: minimum over rows. Never less than the
    /// true count added for `key` (absent counter saturation).
    #[must_use]
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.rows.get(self.cell(row, key)).copied().unwrap_or(u64::MAX))
            .fold(u64::MAX, u64::min)
    }

    /// Zeroes every counter, keeping the geometry and seed.
    pub fn clear(&mut self) {
        for cell in &mut self.rows {
            *cell = 0;
        }
    }
}

/// One tracked heavy hitter in a [`SpaceSaving`] summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceSavingEntry {
    /// The tracked key.
    pub id: u32,
    /// Estimated count: true count plus at most [`Self::overestimate`].
    pub count: u64,
    /// Upper bound on how much [`Self::count`] overestimates, inherited
    /// from the entry evicted at admission time (0 for keys tracked since
    /// their first occurrence).
    pub overestimate: u64,
}

/// A deterministic space-saving heavy-hitter summary over `u32` keys.
///
/// Entries are kept sorted by ascending id; eviction picks the minimum
/// count, breaking ties on the smallest id, so the summary's evolution is
/// a pure function of the update sequence.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<SpaceSavingEntry>,
}

impl SpaceSaving {
    /// A summary tracking at most `capacity` keys (clamped to at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> SpaceSaving {
        SpaceSaving { capacity: capacity.max(1), entries: Vec::new() }
    }

    /// Maximum number of tracked keys.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently tracked keys, ascending by id.
    #[must_use]
    pub fn entries(&self) -> &[SpaceSavingEntry] {
        &self.entries
    }

    /// Adds `count` occurrences of `id`, evicting the current minimum if
    /// the summary is full and `id` is untracked.
    pub fn add(&mut self, id: u32, count: u64) {
        match self.entries.binary_search_by_key(&id, |e| e.id) {
            Ok(pos) => {
                if let Some(e) = self.entries.get_mut(pos) {
                    e.count = e.count.saturating_add(count);
                }
            }
            Err(pos) if self.entries.len() < self.capacity => {
                self.entries.insert(pos, SpaceSavingEntry { id, count, overestimate: 0 });
            }
            Err(_) => {
                // min_by_key keeps the first minimum, and entries are sorted
                // by ascending id, so ties evict the smallest id.
                let Some((min_pos, floor)) = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, e)| e.count)
                    .map(|(i, e)| (i, e.count))
                else {
                    return; // full implies non-empty (capacity >= 1)
                };
                self.entries.remove(min_pos);
                let ins = match self.entries.binary_search_by_key(&id, |e| e.id) {
                    Ok(pos) | Err(pos) => pos,
                };
                self.entries.insert(
                    ins,
                    SpaceSavingEntry {
                        id,
                        count: floor.saturating_add(count),
                        overestimate: floor,
                    },
                );
            }
        }
    }

    /// The tracked estimate for `id`, if currently tracked.
    #[must_use]
    pub fn get(&self, id: u32) -> Option<SpaceSavingEntry> {
        self.entries
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .and_then(|pos| self.entries.get(pos))
            .copied()
    }

    /// The `k` heaviest tracked entries, descending by count, ties broken
    /// by ascending id.
    #[must_use]
    pub fn top(&self, k: usize) -> Vec<SpaceSavingEntry> {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| b.count.cmp(&a.count).then(a.id.cmp(&b.id)));
        sorted.truncate(k);
        sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn cms_never_underestimates() {
        let mut cms = CountMinSketch::new(64, 4, 11);
        let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
        for i in 0..500u64 {
            let key = i % 37;
            let count = 1 + i % 5;
            cms.add(key, count);
            *truth.entry(key).or_insert(0) += count;
        }
        for (&key, &count) in &truth {
            assert!(cms.estimate(key) >= count, "key {key}: {} < {count}", cms.estimate(key));
        }
        assert_eq!(cms.estimate(999_999), 0, "wide sketch, untouched key should read 0");
    }

    #[test]
    fn cms_clear_resets_counts_only() {
        let mut cms = CountMinSketch::new(8, 2, 1);
        cms.add(3, 10);
        assert!(cms.estimate(3) >= 10);
        cms.clear();
        assert_eq!(cms.estimate(3), 0);
        assert_eq!((cms.width(), cms.depth()), (8, 2));
    }

    #[test]
    fn cms_is_seed_deterministic() {
        let mut a = CountMinSketch::new(32, 3, 7);
        let mut b = CountMinSketch::new(32, 3, 7);
        for i in 0..100 {
            a.add(i, i + 1);
            b.add(i, i + 1);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn space_saving_tracks_heavy_hitters_exactly_when_under_capacity() {
        let mut ss = SpaceSaving::new(4);
        ss.add(7, 10);
        ss.add(3, 5);
        ss.add(7, 1);
        let e = ss.get(7).unwrap();
        assert_eq!((e.count, e.overestimate), (11, 0));
        assert_eq!(ss.top(1)[0].id, 7);
    }

    #[test]
    fn space_saving_eviction_inherits_floor_and_bounds_error() {
        let mut ss = SpaceSaving::new(2);
        ss.add(1, 10);
        ss.add(2, 3);
        ss.add(5, 1); // evicts id 2 (min count 3): count = 3 + 1, overestimate = 3
        assert!(ss.get(2).is_none());
        let e = ss.get(5).unwrap();
        assert_eq!((e.count, e.overestimate), (4, 3));
        // True count of 5 is 1; count - overestimate <= true <= count.
        assert!(e.count - e.overestimate <= 1 && 1 <= e.count);
    }

    #[test]
    fn space_saving_eviction_tie_breaks_on_smallest_id() {
        let mut ss = SpaceSaving::new(2);
        ss.add(4, 2);
        ss.add(9, 2);
        ss.add(1, 1); // tie at count 2; id 4 (smallest) is evicted
        assert!(ss.get(4).is_none());
        assert!(ss.get(9).is_some());
        assert_eq!(ss.get(1).unwrap().overestimate, 2);
    }

    #[test]
    fn space_saving_entries_stay_id_sorted_and_top_orders_by_count() {
        let mut ss = SpaceSaving::new(8);
        for (id, n) in [(9u32, 2u64), (1, 7), (5, 7), (3, 1)] {
            ss.add(id, n);
        }
        let ids: Vec<u32> = ss.entries().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
        let top: Vec<u32> = ss.top(3).iter().map(|e| e.id).collect();
        assert_eq!(top, vec![1, 5, 9], "count desc, id asc on ties");
    }

    #[test]
    fn sketches_serialize_round_trip() {
        let mut cms = CountMinSketch::new(16, 3, 5);
        cms.add(12, 34);
        let cms2: CountMinSketch =
            serde_json::from_str(&serde_json::to_string(&cms).unwrap()).unwrap();
        assert_eq!(cms2, cms);

        let mut ss = SpaceSaving::new(3);
        ss.add(8, 2);
        ss.add(1, 9);
        let ss2: SpaceSaving = serde_json::from_str(&serde_json::to_string(&ss).unwrap()).unwrap();
        assert_eq!(ss2, ss);
    }

    proptest! {
        /// The count-min invariant: estimates never fall below the true
        /// count, and never exceed the total mass inserted into the sketch
        /// (each cell only ever accumulates a subset of the stream).
        #[test]
        fn cms_overestimation_is_bounded(
            updates in proptest::collection::vec((0u64..50, 1u64..20), 1..200),
            width in 4usize..128,
            depth in 1usize..5,
            seed in 0u64..u64::MAX,
        ) {
            let mut cms = CountMinSketch::new(width, depth, seed);
            let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
            let mut total = 0u64;
            for &(key, count) in &updates {
                cms.add(key, count);
                *truth.entry(key).or_insert(0) += count;
                total += count;
            }
            for (&key, &count) in &truth {
                let est = cms.estimate(key);
                prop_assert!(est >= count);
                prop_assert!(est <= total);
            }
        }

        /// The space-saving invariant: for every tracked id,
        /// `count - overestimate <= true count <= count`, and the summary
        /// never exceeds its capacity.
        #[test]
        fn space_saving_error_bounds_hold(
            updates in proptest::collection::vec((0u32..30, 1u64..10), 1..150),
            capacity in 1usize..12,
        ) {
            let mut ss = SpaceSaving::new(capacity);
            let mut truth: BTreeMap<u32, u64> = BTreeMap::new();
            for &(id, count) in &updates {
                ss.add(id, count);
                *truth.entry(id).or_insert(0) += count;
            }
            prop_assert!(ss.entries().len() <= capacity);
            for e in ss.entries() {
                let true_count = truth.get(&e.id).copied().unwrap_or(0);
                prop_assert!(e.count >= true_count);
                prop_assert!(e.count - e.overestimate <= true_count);
            }
        }
    }
}
