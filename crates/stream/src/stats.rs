//! Exact bounded-memory per-file statistics.
//!
//! [`FileStats`] keeps, per file, everything the feature encoder and the
//! greedy baseline need to reproduce their batch-mode decisions
//! bit-for-bit — in `O(window)` memory regardless of how many days have
//! streamed past:
//!
//! * a ring of the last `window` **closed** days of read/write counts
//!   (the feature encoder's history channels read only these);
//! * exact running sums and the closed-day count (the encoder's
//!   normalizing mean is `sum / days`, which needs no per-day history);
//! * the **pending** counts of the still-open day (the greedy baseline
//!   decides on the current day's true frequencies).
//!
//! [`ExactStats`] is the dense fleet-wide collection used when every file
//! fits in memory — the mode under which the streaming path's ledgers are
//! bit-identical to the batch engine (DESIGN.md §10).

use crate::event::Event;
use serde::{Deserialize, Serialize};

/// Sliding-window statistics for one file. See the module docs for the
/// exact contents and the equivalence argument.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileStats {
    recent_reads: Vec<u64>,
    recent_writes: Vec<u64>,
    closed_days: u64,
    sum_reads: u64,
    sum_writes: u64,
    pending_reads: u64,
    pending_writes: u64,
}

impl FileStats {
    /// Fresh statistics with nothing observed.
    #[must_use]
    pub fn new() -> FileStats {
        FileStats::default()
    }

    /// Reconstructs statistics from recovered history — used by the
    /// bounded-memory tier when a file is promoted into exact tracking and
    /// its recent window is backfilled from sketch estimates. The rings are
    /// truncated to their last `window` entries and the open day starts
    /// empty.
    #[must_use]
    pub fn from_parts(
        window: usize,
        mut recent_reads: Vec<u64>,
        mut recent_writes: Vec<u64>,
        closed_days: u64,
        sum_reads: u64,
        sum_writes: u64,
    ) -> FileStats {
        let keep = |ring: &mut Vec<u64>| {
            if ring.len() > window {
                ring.drain(..ring.len() - window);
            }
        };
        keep(&mut recent_reads);
        keep(&mut recent_writes);
        FileStats {
            recent_reads,
            recent_writes,
            closed_days,
            sum_reads,
            sum_writes,
            pending_reads: 0,
            pending_writes: 0,
        }
    }

    /// Adds request counts to the still-open day.
    pub fn record(&mut self, reads: u64, writes: u64) {
        self.pending_reads = self.pending_reads.saturating_add(reads);
        self.pending_writes = self.pending_writes.saturating_add(writes);
    }

    /// Closes the open day: folds the pending counts into the ring (bounded
    /// by `window`) and the running sums, then starts a fresh open day.
    pub fn close_day(&mut self, window: usize) {
        self.recent_reads.push(self.pending_reads);
        self.recent_writes.push(self.pending_writes);
        if self.recent_reads.len() > window {
            self.recent_reads.remove(0);
            self.recent_writes.remove(0);
        }
        self.sum_reads = self.sum_reads.saturating_add(self.pending_reads);
        self.sum_writes = self.sum_writes.saturating_add(self.pending_writes);
        self.closed_days += 1;
        self.pending_reads = 0;
        self.pending_writes = 0;
    }

    /// The last `<= window` closed days of reads, oldest first.
    #[must_use]
    pub fn recent_reads(&self) -> &[u64] {
        &self.recent_reads
    }

    /// The last `<= window` closed days of writes, oldest first.
    #[must_use]
    pub fn recent_writes(&self) -> &[u64] {
        &self.recent_writes
    }

    /// Number of closed days observed.
    #[must_use]
    pub fn closed_days(&self) -> u64 {
        self.closed_days
    }

    /// Exact total reads over all closed days.
    #[must_use]
    pub fn sum_reads(&self) -> u64 {
        self.sum_reads
    }

    /// Exact total writes over all closed days.
    #[must_use]
    pub fn sum_writes(&self) -> u64 {
        self.sum_writes
    }

    /// Read/write counts of the still-open day.
    #[must_use]
    pub fn pending(&self) -> (u64, u64) {
        (self.pending_reads, self.pending_writes)
    }
}

/// Dense exact statistics for a whole fleet, indexed by
/// [`tracegen::FileId::index`]. Memory is `O(fleet * window)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactStats {
    window: usize,
    files: Vec<FileStats>,
    closed_days: u64,
}

impl ExactStats {
    /// Fresh statistics for a fleet of `fleet` files with a `window`-day
    /// feature ring (window is clamped to at least 1).
    #[must_use]
    pub fn new(window: usize, fleet: usize) -> ExactStats {
        ExactStats { window: window.max(1), files: vec![FileStats::new(); fleet], closed_days: 0 }
    }

    /// The ring window length in days.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of files tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` when no files are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Days closed so far (the streaming clock).
    #[must_use]
    pub fn closed_days(&self) -> u64 {
        self.closed_days
    }

    /// Routes one event to its file's open-day counters. Events for ids
    /// beyond the registered fleet are ignored (a stream/catalog mismatch
    /// is a caller bug, but must not corrupt neighbouring ledgers).
    pub fn ingest(&mut self, event: &Event) {
        if let Some(stats) = self.files.get_mut(event.file.index()) {
            stats.record(event.reads, event.writes);
        }
    }

    /// Closes the open day for every file.
    pub fn close_day(&mut self) {
        for stats in &mut self.files {
            stats.close_day(self.window);
        }
        self.closed_days += 1;
    }

    /// The statistics of file `ix`, if registered.
    #[must_use]
    pub fn file(&self, ix: usize) -> Option<&FileStats> {
        self.files.get(ix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::FileId;

    fn ev(ix: u32, reads: u64, writes: u64) -> Event {
        Event { hour: 0, file: FileId(ix), reads, writes, bytes: 1 }
    }

    #[test]
    fn ring_is_bounded_and_chronological() {
        let mut s = FileStats::new();
        for day in 0..10u64 {
            s.record(day, 2 * day);
            s.close_day(3);
        }
        assert_eq!(s.recent_reads(), &[7, 8, 9]);
        assert_eq!(s.recent_writes(), &[14, 16, 18]);
        assert_eq!(s.closed_days(), 10);
        assert_eq!(s.sum_reads(), 45);
        assert_eq!(s.sum_writes(), 90);
        assert_eq!(s.pending(), (0, 0));
    }

    #[test]
    fn pending_accumulates_until_close() {
        let mut s = FileStats::new();
        s.record(5, 1);
        s.record(3, 0);
        assert_eq!(s.pending(), (8, 1));
        assert_eq!(s.closed_days(), 0);
        s.close_day(7);
        assert_eq!(s.pending(), (0, 0));
        assert_eq!(s.recent_reads(), &[8]);
    }

    #[test]
    fn fleet_routes_events_by_id() {
        let mut fleet = ExactStats::new(4, 3);
        fleet.ingest(&ev(0, 10, 0));
        fleet.ingest(&ev(2, 1, 5));
        fleet.ingest(&ev(0, 2, 1));
        fleet.close_day();
        assert_eq!(fleet.file(0).unwrap().recent_reads(), &[12]);
        assert_eq!(fleet.file(1).unwrap().recent_reads(), &[0]);
        assert_eq!(fleet.file(2).unwrap().recent_writes(), &[5]);
        assert_eq!(fleet.closed_days(), 1);
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
    }

    #[test]
    fn out_of_catalog_events_are_ignored() {
        let mut fleet = ExactStats::new(2, 1);
        fleet.ingest(&ev(9, 100, 100));
        fleet.close_day();
        assert_eq!(fleet.file(0).unwrap().sum_reads(), 0);
        assert!(fleet.file(9).is_none());
    }

    #[test]
    fn window_clamps_to_one() {
        let fleet = ExactStats::new(0, 1);
        assert_eq!(fleet.window(), 1);
    }

    #[test]
    fn stats_serialize_round_trip() {
        let mut fleet = ExactStats::new(3, 2);
        fleet.ingest(&ev(1, 4, 2));
        fleet.close_day();
        fleet.ingest(&ev(0, 7, 0));
        let json = serde_json::to_string(&fleet).unwrap();
        let back: ExactStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fleet, "pending counts must survive the round trip too");
    }
}
