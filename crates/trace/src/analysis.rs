//! Trace analysis: the paper's §3.1 request-frequency variability study.
//!
//! Provides the normalized standard-deviation (CV) bucketing behind Figs. 2,
//! 3, 4, and 8 of the paper, plus summary helpers the experiment harness
//! prints.

use crate::file::FileSeries;
use crate::workload::Trace;
use serde::{Deserialize, Serialize};

/// Number of CV buckets in the paper's figures.
pub const CV_BUCKET_COUNT: usize = 5;

/// Bucket edges from the paper: `[0, 0.1), [0.1, 0.3), [0.3, 0.5),
/// [0.5, 0.8), [0.8, inf)`.
pub const CV_BUCKET_EDGES: [f64; 4] = [0.1, 0.3, 0.5, 0.8];

/// Human-readable bucket labels matching the paper's x-axes.
pub const CV_BUCKET_LABELS: [&str; CV_BUCKET_COUNT] =
    ["0-0.1", "0.1-0.3", "0.3-0.5", "0.5-0.8", ">0.8"];

/// A CV bucket index (`0..CV_BUCKET_COUNT`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CvBucket(pub usize);

impl CvBucket {
    /// The bucket containing `cv`.
    #[must_use]
    pub fn of(cv: f64) -> CvBucket {
        let ix = CV_BUCKET_EDGES.iter().take_while(|&&edge| cv >= edge).count();
        CvBucket(ix)
    }

    /// The bucket of a file's daily-read CV.
    #[must_use]
    pub fn of_file(file: &FileSeries) -> CvBucket {
        CvBucket::of(file.reads_cv())
    }

    /// The paper's label for this bucket.
    #[must_use]
    pub fn label(self) -> &'static str {
        CV_BUCKET_LABELS[self.0]
    }

    /// All buckets in order.
    pub fn all() -> impl Iterator<Item = CvBucket> {
        (0..CV_BUCKET_COUNT).map(CvBucket)
    }
}

/// Histogram of files per CV bucket — the paper's Fig. 2.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketHistogram {
    /// File counts per bucket.
    pub counts: [usize; CV_BUCKET_COUNT],
}

impl BucketHistogram {
    /// Fraction of files in each bucket.
    #[must_use]
    pub fn fractions(&self) -> [f64; CV_BUCKET_COUNT] {
        let total: usize = self.counts.iter().sum();
        let mut out = [0.0; CV_BUCKET_COUNT];
        if total > 0 {
            for (o, &c) in out.iter_mut().zip(self.counts.iter()) {
                *o = c as f64 / total as f64;
            }
        }
        out
    }
}

/// Computes the Fig. 2 histogram for a trace.
#[must_use]
pub fn bucket_histogram(trace: &Trace) -> BucketHistogram {
    let mut counts = [0usize; CV_BUCKET_COUNT];
    for file in &trace.files {
        counts[CvBucket::of_file(file).0] += 1;
    }
    BucketHistogram { counts }
}

/// Groups file indices by CV bucket (used by the per-bucket cost and
/// prediction-error figures, Figs. 3, 4, 8).
#[must_use]
pub fn bucket_members(trace: &Trace) -> [Vec<usize>; CV_BUCKET_COUNT] {
    let mut members: [Vec<usize>; CV_BUCKET_COUNT] = Default::default();
    for (ix, file) in trace.files.iter().enumerate() {
        members[CvBucket::of_file(file).0].push(ix);
    }
    members
}

/// Percentile of a sample (nearest-rank; `q` in `[0, 1]`).
///
/// Returns `None` for empty samples. Sorts a copy; fine for the analysis
/// path, which runs once per experiment.
#[must_use]
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank])
}

/// Summary statistics of per-file mean daily reads, for harness reporting.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of files.
    pub files: usize,
    /// Days in the trace.
    pub days: usize,
    /// Mean of per-file mean daily reads.
    pub mean_daily_reads: f64,
    /// Maximum per-file mean daily reads.
    pub peak_daily_reads: f64,
    /// Mean file size in GB.
    pub mean_size_gb: f64,
}

/// Computes a [`TraceSummary`].
#[must_use]
pub fn summarize(trace: &Trace) -> TraceSummary {
    let n = trace.files.len().max(1) as f64;
    let means: Vec<f64> = trace.files.iter().map(FileSeries::mean_reads).collect();
    TraceSummary {
        files: trace.files.len(),
        days: trace.days,
        mean_daily_reads: means.iter().sum::<f64>() / n,
        peak_daily_reads: means.iter().copied().fold(0.0, f64::max),
        mean_size_gb: trace.files.iter().map(|f| f.size_gb).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileId;
    use proptest::prelude::*;

    fn file(reads: Vec<u64>) -> FileSeries {
        let writes = vec![0; reads.len()];
        FileSeries { id: FileId(0), size_gb: 0.1, reads, writes }
    }

    #[test]
    fn bucket_of_respects_edges() {
        assert_eq!(CvBucket::of(0.0), CvBucket(0));
        assert_eq!(CvBucket::of(0.0999), CvBucket(0));
        assert_eq!(CvBucket::of(0.1), CvBucket(1));
        assert_eq!(CvBucket::of(0.29), CvBucket(1));
        assert_eq!(CvBucket::of(0.3), CvBucket(2));
        assert_eq!(CvBucket::of(0.5), CvBucket(3));
        assert_eq!(CvBucket::of(0.8), CvBucket(4));
        assert_eq!(CvBucket::of(12.0), CvBucket(4));
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = CvBucket::all().map(CvBucket::label).collect();
        assert_eq!(labels, vec!["0-0.1", "0.1-0.3", "0.3-0.5", "0.5-0.8", ">0.8"]);
    }

    #[test]
    fn histogram_counts_and_fractions() {
        let trace = Trace {
            days: 4,
            files: vec![
                file(vec![10, 10, 10, 10]), // cv 0 -> bucket 0
                file(vec![1, 100, 1, 100]), // high cv -> bucket 4
            ],
        };
        let hist = bucket_histogram(&trace);
        assert_eq!(hist.counts[0], 1);
        assert_eq!(hist.counts[4], 1);
        let fr = hist.fractions();
        assert_eq!(fr[0], 0.5);
        assert_eq!(fr[4], 0.5);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let hist = BucketHistogram { counts: [0; CV_BUCKET_COUNT] };
        assert_eq!(hist.fractions(), [0.0; CV_BUCKET_COUNT]);
    }

    #[test]
    fn bucket_members_partition_files() {
        let trace = Trace {
            days: 4,
            files: vec![
                file(vec![10, 10, 10, 10]),
                file(vec![1, 100, 1, 100]),
                file(vec![8, 12, 9, 11]),
            ],
        };
        let members = bucket_members(&trace);
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        assert!(members[0].contains(&0));
        assert!(members[4].contains(&1));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 0.5), Some(3.0));
        assert_eq!(percentile(&v, 1.0), Some(5.0));
        assert_eq!(percentile(&[], 0.5), None);
        // Out-of-range q clamps.
        assert_eq!(percentile(&v, 2.0), Some(5.0));
    }

    #[test]
    fn summary_over_trivial_trace() {
        let trace = Trace { days: 2, files: vec![file(vec![2, 4]), file(vec![0, 0])] };
        let s = summarize(&trace);
        assert_eq!(s.files, 2);
        assert_eq!(s.days, 2);
        assert_eq!(s.mean_daily_reads, 1.5);
        assert_eq!(s.peak_daily_reads, 3.0);
        assert!((s.mean_size_gb - 0.1).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn every_cv_lands_in_exactly_one_bucket(cv in 0.0f64..10.0) {
            let bucket = CvBucket::of(cv);
            prop_assert!(bucket.0 < CV_BUCKET_COUNT);
            // Edge consistency: bucket index equals count of edges <= cv.
            let expected = CV_BUCKET_EDGES.iter().filter(|&&e| cv >= e).count();
            prop_assert_eq!(bucket.0, expected);
        }

        #[test]
        fn percentile_is_monotone_in_q(
            v in proptest::collection::vec(0.0f64..100.0, 1..50),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(percentile(&v, lo).unwrap() <= percentile(&v, hi).unwrap());
        }

        #[test]
        fn histogram_total_equals_file_count(n in 0usize..30) {
            let files: Vec<FileSeries> = (0..n)
                .map(|i| file(vec![i as u64, 2 * i as u64 + 1, i as u64]))
                .collect();
            let trace = Trace { days: 3, files };
            let hist = bucket_histogram(&trace);
            prop_assert_eq!(hist.counts.iter().sum::<usize>(), n);
        }
    }
}
