//! Co-request (concurrent request) modelling for the §5.2 aggregation
//! enhancement.
//!
//! The paper observes that files linked from the same web page are often
//! requested together, and aggregates such groups when the concurrent
//! request volume justifies the extra replica storage (Eqs. 13–16). The
//! original trace has no page-link structure, so this module synthesizes
//! "pages": groups of files whose members share a daily concurrent-request
//! count proportional to the least-requested member (a request that hits
//! all members at once cannot exceed any member's own request count).

use crate::file::FileId;
use crate::workload::Trace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Domain-separation constant for the co-request RNG stream.
const COREQ_SEED_DOMAIN: u64 = 0xC0_C0_C0_C0_C0_C0_C0_C0;

/// A group of files requested concurrently (one synthetic "web page").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoRequestGroup {
    /// Member files (distinct).
    pub members: Vec<FileId>,
    /// Daily concurrent request counts `r_dc(t)` — requests that hit *all*
    /// members together.
    pub concurrent: Vec<u64>,
}

impl CoRequestGroup {
    /// Mean concurrent requests per day over days `range`.
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn mean_concurrent(&self, range: std::ops::Range<usize>) -> f64 {
        let window = &self.concurrent[range];
        if window.is_empty() {
            return 0.0;
        }
        window.iter().sum::<u64>() as f64 / window.len() as f64
    }
}

/// Configuration for synthesizing co-request structure over a trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoRequestModel {
    /// Number of groups (synthetic pages).
    pub groups: usize,
    /// Inclusive group-size range; the paper aggregates 2..n files.
    pub min_size: usize,
    /// Inclusive upper bound on group size.
    pub max_size: usize,
    /// Fraction of the least-requested member's daily reads that arrive as
    /// concurrent group requests, drawn per-group from `[0, level]`.
    pub level: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoRequestModel {
    fn default() -> Self {
        CoRequestModel { groups: 200, min_size: 2, max_size: 5, level: 0.8, seed: 7 }
    }
}

impl CoRequestModel {
    /// Synthesizes co-request groups over `trace`.
    ///
    /// Groups draw disjoint member sets while files remain; if the trace is
    /// too small for the requested number of disjoint groups, fewer groups
    /// are returned. Panics if `min_size < 2` or `min_size > max_size`.
    #[must_use]
    pub fn generate(&self, trace: &Trace) -> Vec<CoRequestGroup> {
        assert!(self.min_size >= 2, "a co-request group needs at least 2 members");
        assert!(self.min_size <= self.max_size, "min_size must be <= max_size");
        let mut rng = StdRng::seed_from_u64(self.seed ^ COREQ_SEED_DOMAIN);
        // Assets of one page share the page's popularity, so group files of
        // similar traffic: sort by mean reads, then shuffle within small
        // popularity windows to avoid deterministic pairings. Grouping
        // uniformly at random would make the quietest member dominate the
        // joint request count and no group would ever clear Eq. 15.
        let mut pool: Vec<usize> = (0..trace.files.len()).collect();
        pool.sort_by(|&a, &b| trace.files[b].mean_reads().total_cmp(&trace.files[a].mean_reads()));
        let window = (self.max_size * 4).max(8);
        let mut start = 0;
        while start < pool.len() {
            let end = (start + window).min(pool.len());
            pool[start..end].shuffle(&mut rng);
            start = end;
        }
        pool.reverse(); // drain() takes from the back: most popular first

        let mut groups = Vec::with_capacity(self.groups);
        for _ in 0..self.groups {
            let size = rng.random_range(self.min_size..=self.max_size);
            if pool.len() < size {
                break;
            }
            let members: Vec<FileId> =
                pool.drain(pool.len() - size..).map(FileId::from_index).collect();
            let share: f64 = rng.random_range(0.0..self.level.max(f64::MIN_POSITIVE));
            let concurrent = (0..trace.days)
                .map(|day| {
                    let min_reads =
                        members.iter().map(|id| trace.file(*id).reads[day]).min().unwrap_or(0);
                    (min_reads as f64 * share).floor() as u64
                })
                .collect();
            groups.push(CoRequestGroup { members, concurrent });
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;

    fn trace() -> Trace {
        Trace::generate(&TraceConfig::small(100, 14, 42))
    }

    #[test]
    fn groups_have_disjoint_members() {
        let t = trace();
        let model = CoRequestModel { groups: 20, ..CoRequestModel::default() };
        let groups = model.generate(&t);
        assert_eq!(groups.len(), 20);
        let mut seen = std::collections::BTreeSet::new();
        for g in &groups {
            for m in &g.members {
                assert!(seen.insert(*m), "file {m} appears in two groups");
            }
        }
    }

    #[test]
    fn concurrent_never_exceeds_any_member() {
        let t = trace();
        let groups = CoRequestModel::default().generate(&t);
        for g in &groups {
            for day in 0..t.days {
                for m in &g.members {
                    assert!(
                        g.concurrent[day] <= t.file(*m).reads[day],
                        "concurrent {} > member reads {}",
                        g.concurrent[day],
                        t.file(*m).reads[day]
                    );
                }
            }
        }
    }

    #[test]
    fn group_sizes_respect_bounds() {
        let t = trace();
        let model = CoRequestModel { min_size: 3, max_size: 4, groups: 10, ..Default::default() };
        for g in model.generate(&t) {
            assert!(g.members.len() >= 3 && g.members.len() <= 4);
        }
    }

    #[test]
    fn small_trace_yields_fewer_groups() {
        let t = Trace::generate(&TraceConfig::small(5, 7, 1));
        let model = CoRequestModel { groups: 10, min_size: 2, max_size: 2, ..Default::default() };
        let groups = model.generate(&t);
        assert!(groups.len() <= 2, "only 5 files -> at most 2 disjoint pairs");
    }

    #[test]
    fn generation_is_deterministic() {
        let t = trace();
        let model = CoRequestModel::default();
        assert_eq!(model.generate(&t), model.generate(&t));
    }

    #[test]
    fn mean_concurrent_over_window() {
        let g =
            CoRequestGroup { members: vec![FileId(0), FileId(1)], concurrent: vec![2, 4, 6, 8] };
        assert_eq!(g.mean_concurrent(0..4), 5.0);
        assert_eq!(g.mean_concurrent(1..3), 5.0);
        assert_eq!(g.mean_concurrent(2..2), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn singleton_groups_rejected() {
        let t = trace();
        let _ = CoRequestModel { min_size: 1, ..Default::default() }.generate(&t);
    }
}
