//! Trace generator configuration.

use serde::{Deserialize, Serialize};

/// The paper's Fig. 2 bucket mix: fraction of files whose normalized daily
/// request-frequency standard deviation falls in
/// `[0, 0.1), [0.1, 0.3), [0.3, 0.5), [0.5, 0.8), [0.8, inf)`.
pub const PAPER_BUCKET_MIX: [f64; 5] = [0.8175, 0.0993, 0.0539, 0.023, 0.0063];

/// CV sampling range for each bucket: files assigned to a bucket draw their
/// target CV uniformly from this range. The top bucket is open-ended in the
/// paper; 1.6 caps it at a level that still produces order-of-magnitude
/// bursts over a two-month trace.
pub const BUCKET_CV_RANGES: [(f64, f64); 5] =
    [(0.02, 0.095), (0.105, 0.295), (0.305, 0.495), (0.505, 0.795), (0.82, 1.6)];

/// Configuration of the synthetic trace generator.
///
/// Defaults reproduce the paper's setup at a laptop-friendly scale: the full
/// experiment scale (4M files) is a matter of raising `files`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of data files.
    pub files: usize,
    /// Number of trace days. The paper collected ~63 days (Jul 15–Sep 15)
    /// and uses 7-day decision periods.
    pub days: usize,
    /// RNG seed; every draw in the generator derives from it.
    pub seed: u64,
    /// Fraction of files per CV bucket (must sum to ~1). Defaults to the
    /// paper's Fig. 2 mix.
    pub bucket_mix: [f64; 5],
    /// Mean file size in MB; sizes are Poisson-distributed per §3.1.
    pub mean_size_mb: f64,
    /// Ceiling on per-file mean daily reads (the most viral page).
    pub peak_daily_reads: f64,
    /// Floor on per-file mean daily reads (dormant pages).
    pub min_daily_reads: f64,
    /// Median of the per-file mean daily read rate. Popularity follows a
    /// log-normal law (what a uniformly subsampled Zipf population looks
    /// like): most files see little traffic, a heavy tail sees a lot.
    pub median_daily_reads: f64,
    /// Standard deviation of log10(mean daily reads) around the median.
    pub popularity_sigma: f64,
    /// Per-bucket multiplier on the popularity median. Bursty pages are the
    /// trending/viral ones and carry more traffic — the paper's Fig. 8
    /// (per-bucket cost rising with variability) only holds when
    /// variability correlates with traffic.
    pub bucket_popularity_boost: [f64; 5],
    /// Weekly seasonality amplitude share: fraction of a file's variability
    /// budget carried by the deterministic 7-day cycle (the rest is noise).
    pub seasonal_share: f64,
    /// Write operations as a fraction of reads (web workloads are
    /// read-dominated).
    pub write_ratio: f64,
    /// When `true`, daily counts are Poisson-sampled around their expected
    /// value (extra shot noise); when `false` (default) they are rounded,
    /// keeping realized CVs tightly calibrated to the bucket targets.
    pub poisson_counts: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            files: 20_000,
            days: 63,
            seed: 20200817, // the paper's ICPP presentation date
            bucket_mix: PAPER_BUCKET_MIX,
            mean_size_mb: 100.0,
            peak_daily_reads: 50_000.0,
            min_daily_reads: 0.2,
            median_daily_reads: 10.0,
            popularity_sigma: 1.2,
            bucket_popularity_boost: [1.0, 1.5, 2.5, 4.0, 1.0],
            seasonal_share: 0.5,
            write_ratio: 0.02,
            poisson_counts: false,
        }
    }
}

impl TraceConfig {
    /// A small configuration for unit tests and doc examples.
    #[must_use]
    pub fn small(files: usize, days: usize, seed: u64) -> Self {
        TraceConfig { files, days, seed, ..TraceConfig::default() }
    }

    /// Validates invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.files == 0 {
            return Err("files must be > 0".into());
        }
        if self.days == 0 {
            return Err("days must be > 0".into());
        }
        let mix_sum: f64 = self.bucket_mix.iter().sum();
        if (mix_sum - 1.0).abs() > 0.01 {
            return Err(format!("bucket_mix must sum to 1.0 (got {mix_sum})"));
        }
        if self.bucket_mix.iter().any(|&p| p < 0.0) {
            return Err("bucket_mix entries must be non-negative".into());
        }
        if self.mean_size_mb <= 0.0 {
            return Err("mean_size_mb must be positive".into());
        }
        if self.peak_daily_reads < self.min_daily_reads {
            return Err("peak_daily_reads must be >= min_daily_reads".into());
        }
        if !(0.0..=1.0).contains(&self.seasonal_share) {
            return Err("seasonal_share must be in [0, 1]".into());
        }
        if self.write_ratio < 0.0 {
            return Err("write_ratio must be non-negative".into());
        }
        if self.median_daily_reads <= 0.0 {
            return Err("median_daily_reads must be positive".into());
        }
        if self.popularity_sigma < 0.0 {
            return Err("popularity_sigma must be non-negative".into());
        }
        if self.bucket_popularity_boost.iter().any(|&b| b <= 0.0) {
            return Err("bucket_popularity_boost entries must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_mix() {
        let cfg = TraceConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.bucket_mix, PAPER_BUCKET_MIX);
        let sum: f64 = PAPER_BUCKET_MIX.iter().sum();
        assert!((sum - 1.0).abs() < 0.01, "paper mix sums to {sum}");
    }

    #[test]
    fn bucket_ranges_nest_inside_bucket_edges() {
        let edges = [0.0, 0.1, 0.3, 0.5, 0.8, f64::INFINITY];
        for (i, &(lo, hi)) in BUCKET_CV_RANGES.iter().enumerate() {
            assert!(lo > edges[i], "bucket {i} low {lo} vs edge {}", edges[i]);
            assert!(hi < edges[i + 1], "bucket {i} high {hi}");
            assert!(lo < hi);
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let base = TraceConfig::default();
        assert!(TraceConfig { files: 0, ..base.clone() }.validate().is_err());
        assert!(TraceConfig { days: 0, ..base.clone() }.validate().is_err());
        assert!(TraceConfig { bucket_mix: [0.5, 0.0, 0.0, 0.0, 0.0], ..base.clone() }
            .validate()
            .is_err());
        assert!(TraceConfig { mean_size_mb: 0.0, ..base.clone() }.validate().is_err());
        assert!(TraceConfig { seasonal_share: 1.5, ..base.clone() }.validate().is_err());
        assert!(TraceConfig { write_ratio: -0.1, ..base.clone() }.validate().is_err());
        assert!(TraceConfig { peak_daily_reads: 0.1, min_daily_reads: 1.0, ..base }
            .validate()
            .is_err());
    }

    #[test]
    fn small_builder_overrides_scale_only() {
        let cfg = TraceConfig::small(10, 7, 1);
        assert_eq!(cfg.files, 10);
        assert_eq!(cfg.days, 7);
        assert_eq!(cfg.seed, 1);
        assert_eq!(cfg.bucket_mix, PAPER_BUCKET_MIX);
    }
}
