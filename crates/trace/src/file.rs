//! Per-file identities and request-frequency series.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a data file within a trace (dense, `0..trace.files.len()`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FileId(pub u32);

impl FileId {
    /// The dense index as `usize`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// A `FileId` from a dense `usize` index, saturating at `u32::MAX`.
    ///
    /// Saturation policy: traces are bounded well below `u32::MAX` files
    /// (the paper's corpus is ~4M); an index at or past the boundary maps
    /// to `u32::MAX` rather than silently wrapping, so a pathological
    /// caller aliases at one sentinel id instead of colliding low ids.
    #[must_use]
    pub fn from_index(index: usize) -> FileId {
        FileId(u32::try_from(index).unwrap_or(u32::MAX))
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// One file's metadata and daily request-frequency series.
///
/// This is the observable state the paper's agent monitors (§4.2.1):
/// read frequencies `F_r`, write frequencies `F_w`, and size `D`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FileSeries {
    /// The file's identity.
    pub id: FileId,
    /// File size in GB (constant over the trace, per the paper's §3.1).
    /// xtask-unit: GB
    pub size_gb: f64,
    /// Daily read request counts, one per trace day.
    /// xtask-unit: ops
    pub reads: Vec<u64>,
    /// Daily write request counts, one per trace day.
    /// xtask-unit: ops
    pub writes: Vec<u64>,
}

impl FileSeries {
    /// Number of days in the series.
    #[must_use]
    pub fn days(&self) -> usize {
        self.reads.len()
    }

    /// Mean daily read frequency.
    #[must_use]
    pub fn mean_reads(&self) -> f64 {
        if self.reads.is_empty() {
            return 0.0;
        }
        self.reads.iter().sum::<u64>() as f64 / self.reads.len() as f64
    }

    /// Sample standard deviation of daily reads (Eq. 1 of the paper:
    /// `T - 1` denominator).
    #[must_use]
    pub fn reads_std(&self) -> f64 {
        let n = self.reads.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_reads();
        let ss: f64 = self.reads.iter().map(|&r| (r as f64 - mean).powi(2)).sum();
        (ss / (n as f64 - 1.0)).sqrt()
    }

    /// Normalized standard deviation (coefficient of variation) of daily
    /// reads: `std / mean`, the quantity bucketized by Fig. 2 of the paper.
    ///
    /// Zero-mean series have zero variability by definition.
    #[must_use]
    pub fn reads_cv(&self) -> f64 {
        let mean = self.mean_reads();
        if mean == 0.0 {
            0.0
        } else {
            self.reads_std() / mean
        }
    }

    /// Read/write pair for one day, clamped to the series length.
    ///
    /// Panics if `day` is out of range.
    #[must_use]
    pub fn day(&self, day: usize) -> (u64, u64) {
        (self.reads[day], self.writes[day])
    }

    /// A sub-series covering days `range` (used for train/eval windows).
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn window(&self, range: std::ops::Range<usize>) -> FileSeries {
        FileSeries {
            id: self.id,
            size_gb: self.size_gb,
            reads: self.reads[range.clone()].to_vec(),
            writes: self.writes[range].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(reads: Vec<u64>) -> FileSeries {
        let writes = vec![0; reads.len()];
        FileSeries { id: FileId(0), size_gb: 0.1, reads, writes }
    }

    #[test]
    fn mean_and_std_match_eq1() {
        let s = series(vec![2, 4, 6]);
        assert_eq!(s.mean_reads(), 4.0);
        // Sample std with T-1 denominator: sqrt(((2-4)^2+(0)^2+(2)^2)/2) = 2.
        assert_eq!(s.reads_std(), 2.0);
        assert_eq!(s.reads_cv(), 0.5);
    }

    #[test]
    fn constant_series_has_zero_cv() {
        let s = series(vec![5, 5, 5, 5]);
        assert_eq!(s.reads_std(), 0.0);
        assert_eq!(s.reads_cv(), 0.0);
    }

    #[test]
    fn empty_and_singleton_series_are_degenerate() {
        assert_eq!(series(vec![]).mean_reads(), 0.0);
        assert_eq!(series(vec![]).reads_std(), 0.0);
        assert_eq!(series(vec![7]).reads_std(), 0.0);
    }

    #[test]
    fn zero_mean_series_has_zero_cv() {
        let s = series(vec![0, 0, 0]);
        assert_eq!(s.reads_cv(), 0.0);
    }

    #[test]
    fn window_slices_both_series() {
        let mut s = series(vec![1, 2, 3, 4, 5]);
        s.writes = vec![10, 20, 30, 40, 50];
        let w = s.window(1..4);
        assert_eq!(w.reads, vec![2, 3, 4]);
        assert_eq!(w.writes, vec![20, 30, 40]);
        assert_eq!(w.days(), 3);
        assert_eq!(w.id, s.id);
    }

    #[test]
    fn day_accessor_pairs_reads_and_writes() {
        let mut s = series(vec![1, 2]);
        s.writes = vec![9, 8];
        assert_eq!(s.day(0), (1, 9));
        assert_eq!(s.day(1), (2, 8));
    }

    #[test]
    fn display_format() {
        assert_eq!(FileId(42).to_string(), "file#42");
        assert_eq!(FileId(42).index(), 42);
    }

    #[test]
    fn from_index_saturates_at_u32_boundary() {
        assert_eq!(FileId::from_index(0), FileId(0));
        assert_eq!(FileId::from_index(42), FileId(42));
        assert_eq!(FileId::from_index(u32::MAX as usize), FileId(u32::MAX));
        // Past the boundary: saturate to the sentinel, never wrap to low ids.
        assert_eq!(FileId::from_index(u32::MAX as usize + 1), FileId(u32::MAX));
        assert_eq!(FileId::from_index(usize::MAX), FileId(u32::MAX));
    }
}
