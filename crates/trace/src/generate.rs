//! The synthetic trace generator.
//!
//! Per-file model:
//!
//! ```text
//! reads_i(t) = round( base_i * factor_i(t) )
//! factor_i(t) = unit-mean log-normal( z_i(t), cv_i )
//! z_i(t) = w * season(t, phase_i) + sqrt(1 - w^2) * g_i(t)
//! ```
//!
//! * `base_i` — mean daily reads, Zipf-distributed across files between the
//!   configured floor and peak.
//! * `cv_i` — target coefficient of variation, drawn uniformly inside the
//!   file's assigned Fig. 2 bucket range.
//! * `season` — a unit-variance 7-day sinusoid (the paper cites weekly
//!   request cycles, §3.1) with a per-file phase.
//! * `g_i(t)` — i.i.d. standard normal noise; `w^2` is the configured
//!   seasonal share of the variability budget.
//!
//! The log-normal kernel keeps factors positive and unit-mean, so the
//! realized per-file CV lands close to `cv_i` and the realized bucket
//! histogram reproduces the paper's Fig. 2 mix.

use crate::config::{TraceConfig, BUCKET_CV_RANGES};
use crate::file::{FileId, FileSeries};
use crate::sampling;
use crate::workload::Trace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Weekly period in days (§3.1: "the cycle time of the request frequencies
/// for each data file is around one week").
const WEEK: f64 = 7.0;

/// Viral-event model for the `>0.8` bucket: these are the paper's
/// "non-stationary" files — pages that rest at modest traffic and then
/// spike by an order of magnitude when an external event hits (the cost
/// behaviour Fig. 3 attributes the largest per-file savings to). A plain
/// log-normal factor cannot produce that shape: its tail at CV ≈ 1.6 only
/// reaches ~7x the mean.
mod viral {
    /// Probability an event starts on a quiet day.
    pub const START_PROB: f64 = 0.03;
    /// Event duration range in days (inclusive).
    pub const DURATION: std::ops::RangeInclusive<usize> = 2..=4;
    /// Event traffic multiplier range (log-uniform). Viral events on
    /// otherwise-quiet pages reach several orders of magnitude (a dormant
    /// article hitting the news), which is where tier switching pays the
    /// most (Fig. 3's right-most bar).
    pub const FACTOR: (f64, f64) = (50.0, 2000.0);
    /// Residual day-to-day CV between events.
    pub const REST_CV: f64 = 0.3;
    /// Resting traffic band: viral pages idle at modest-but-nonzero
    /// traffic, then spike orders of magnitude above it.
    pub const REST_BAND: (f64, f64) = (3.0, 40.0);
}

/// Generates a trace from `config`. Panics on invalid configuration.
#[must_use]
pub fn generate(config: &TraceConfig) -> Trace {
    if let Err(e) = config.validate() {
        // Documented contract: callers must validate their config first.
        panic!("invalid TraceConfig: {e}"); // xtask-allow(no-panic-in-libs): documented fail-fast contract
    }
    let mut rng = StdRng::seed_from_u64(config.seed);

    let buckets = assign_buckets(config.files, &config.bucket_mix, &mut rng);

    let mut files = Vec::with_capacity(config.files);
    for i in 0..config.files {
        // Log-normal popularity: log10(base) ~ N(log10(median), sigma^2),
        // clipped to the configured floor/ceiling. This reproduces the full
        // traffic dynamic range of a subsampled page-view crawl at any
        // sample size (a finite Zipf rank list would compress the tail).
        let z = sampling::standard_normal(&mut rng);
        let median = config.median_daily_reads * config.bucket_popularity_boost[buckets[i]];
        let log10_base = median.log10() + config.popularity_sigma * z;
        let base = 10f64.powf(log10_base).clamp(config.min_daily_reads, config.peak_daily_reads);

        let (cv_lo, cv_hi) = BUCKET_CV_RANGES[buckets[i]];
        let target_cv = rng.random_range(cv_lo..cv_hi);

        // Integer rounding of daily counts adds ~Uniform(-0.5, 0.5) noise,
        // i.e. a CV contribution of sqrt(1/12)/base. Quiet files assigned
        // to a low-CV bucket could not express their target through integer
        // counts, so (a) bucket-0 files below the floor become constant
        // series (CV exactly 0, still bucket 0), and (b) files in higher
        // buckets get their traffic floor raised until the target is
        // expressible — bursty pages being the better-trafficked ones is
        // consistent with the underlying page-view data.
        const ROUNDING_SD: f64 = 0.288_675_134_594_812_9; // sqrt(1/12)
        let (base, constant_series) = if buckets[i] == 0 {
            (base, ROUNDING_SD / base > target_cv)
        } else {
            (base.max(2.0 * ROUNDING_SD / target_cv), false)
        };

        let phase: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let w = config.seasonal_share.sqrt();
        let noise_w = (1.0 - config.seasonal_share).sqrt();
        // Intrinsic CV after budgeting for the rounding contribution.
        let cv = (target_cv * target_cv - (ROUNDING_SD / base).powi(2)).max(0.0).sqrt();

        let viral_file = buckets[i] == 4;
        let base =
            if viral_file { base.clamp(viral::REST_BAND.0, viral::REST_BAND.1) } else { base };
        let mut event_days_left = 0usize;
        let mut event_factor = 1.0f64;
        let mut reads = Vec::with_capacity(config.days);
        let mut writes = Vec::with_capacity(config.days);
        for t in 0..config.days {
            let expected = if constant_series {
                base
            } else if viral_file {
                // Event process: rest at `base` with mild noise, spike by
                // 15-60x for a few days when an event fires. Realized CV
                // lands well above 0.8 (the bucket is open-ended).
                if event_days_left == 0 && rng.random::<f64>() < viral::START_PROB {
                    event_days_left = rng.random_range(viral::DURATION);
                    let (lo, hi) = viral::FACTOR;
                    event_factor = lo * (hi / lo).powf(rng.random::<f64>());
                }
                let factor = if event_days_left > 0 {
                    event_days_left -= 1;
                    event_factor
                } else {
                    sampling::unit_mean_lognormal(&mut rng, viral::REST_CV)
                };
                base * factor
            } else {
                let season = std::f64::consts::SQRT_2
                    * (std::f64::consts::TAU * t as f64 / WEEK + phase).sin();
                let z = w * season + noise_w * sampling::standard_normal(&mut rng);
                base * sampling::lognormal_factor_from_z(z, cv)
            };
            let r = if config.poisson_counts {
                sampling::poisson(&mut rng, expected)
            } else {
                expected.round() as u64
            };
            reads.push(r);
            writes.push((r as f64 * config.write_ratio).round() as u64);
        }

        let size_mb = sampling::poisson(&mut rng, config.mean_size_mb).max(1);
        files.push(FileSeries {
            id: FileId::from_index(i),
            size_gb: size_mb as f64 / 1024.0,
            reads,
            writes,
        });
    }

    Trace { days: config.days, files }
}

/// Assigns each file a CV bucket so that bucket counts match `mix` exactly
/// (largest-remainder apportionment), then shuffles the assignment.
fn assign_buckets(files: usize, mix: &[f64; 5], rng: &mut StdRng) -> Vec<usize> {
    let mut counts = [0usize; 5];
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(5);
    let mut assigned = 0usize;
    for (b, &p) in mix.iter().enumerate() {
        let exact = p * files as f64;
        counts[b] = exact.floor() as usize;
        assigned += counts[b];
        remainders.push((b, exact - exact.floor()));
    }
    // Distribute leftovers to the buckets with the largest remainders.
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut leftover = files - assigned;
    for (b, _) in remainders {
        if leftover == 0 {
            break;
        }
        counts[b] += 1;
        leftover -= 1;
    }
    let mut assignment = Vec::with_capacity(files);
    for (b, &c) in counts.iter().enumerate() {
        assignment.extend(std::iter::repeat_n(b, c));
    }
    assignment.shuffle(rng);
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceConfig::small(200, 21, 11);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TraceConfig::small(50, 14, 1));
        let b = generate(&TraceConfig::small(50, 14, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = TraceConfig::small(37, 9, 3);
        let t = generate(&cfg);
        assert_eq!(t.files.len(), 37);
        assert_eq!(t.days, 9);
        for (i, f) in t.files.iter().enumerate() {
            assert_eq!(f.id.index(), i);
            assert_eq!(f.reads.len(), 9);
            assert_eq!(f.writes.len(), 9);
            assert!(f.size_gb > 0.0);
        }
    }

    #[test]
    fn sizes_average_near_configured_mean() {
        let cfg = TraceConfig::small(3000, 2, 4);
        let t = generate(&cfg);
        let mean_mb =
            t.files.iter().map(|f| f.size_gb * 1024.0).sum::<f64>() / t.files.len() as f64;
        assert!((mean_mb - cfg.mean_size_mb).abs() < 2.0, "mean size {mean_mb} MB");
    }

    #[test]
    fn writes_follow_write_ratio() {
        let cfg = TraceConfig::small(300, 14, 5);
        let t = generate(&cfg);
        let reads: u64 = t.total_reads();
        let writes: u64 = t.files.iter().map(|f| f.writes.iter().sum::<u64>()).sum();
        let ratio = writes as f64 / reads as f64;
        // Rounding to integers biases small counts; allow slack.
        assert!((ratio - cfg.write_ratio).abs() < cfg.write_ratio, "write ratio {ratio}");
    }

    #[test]
    fn bucket_histogram_matches_paper_mix() {
        // The headline calibration claim: realized CV buckets reproduce
        // Fig. 2 within a few percentage points.
        let cfg = TraceConfig::small(4000, 63, 6);
        let t = generate(&cfg);
        let hist = analysis::bucket_histogram(&t);
        let fractions = hist.fractions();
        for (b, (&got, &want)) in fractions.iter().zip(cfg.bucket_mix.iter()).enumerate() {
            assert!((got - want).abs() < 0.04, "bucket {b}: got {got:.4}, paper {want:.4}");
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let cfg = TraceConfig::small(1000, 7, 7);
        let t = generate(&cfg);
        let mut means: Vec<f64> = t.files.iter().map(|f| f.mean_reads()).collect();
        means.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Top file dominates the median file by a wide margin under Zipf.
        assert!(means[0] > 20.0 * means[500], "top {} median {}", means[0], means[500]);
    }

    #[test]
    fn poisson_counts_mode_still_produces_valid_series() {
        let cfg = TraceConfig { poisson_counts: true, ..TraceConfig::small(100, 14, 8) };
        let t = generate(&cfg);
        assert_eq!(t.files.len(), 100);
        assert!(t.total_reads() > 0);
    }

    #[test]
    fn bucket_assignment_counts_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let mix = [0.5, 0.2, 0.15, 0.1, 0.05];
        let assignment = assign_buckets(1000, &mix, &mut rng);
        let mut counts = [0usize; 5];
        for b in assignment {
            counts[b] += 1;
        }
        assert_eq!(counts, [500, 200, 150, 100, 50]);
    }

    #[test]
    fn bucket_assignment_handles_remainders() {
        let mut rng = StdRng::seed_from_u64(2);
        let mix = [0.8175, 0.0993, 0.0539, 0.023, 0.0063];
        let assignment = assign_buckets(997, &mix, &mut rng);
        assert_eq!(assignment.len(), 997);
        let mut counts = [0usize; 5];
        for b in assignment {
            counts[b] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 997);
        // Every bucket got at least its floor.
        for (b, &c) in counts.iter().enumerate() {
            assert!(c >= (mix[b] * 997.0).floor() as usize, "bucket {b} count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid TraceConfig")]
    fn invalid_config_panics() {
        let _ = generate(&TraceConfig { files: 0, ..TraceConfig::default() });
    }
}
