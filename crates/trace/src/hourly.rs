//! Hourly resolution.
//!
//! The paper's source trace is *hourly* page views, re-binned to daily
//! counts because "the payment made to CSP is calculated by days" (§6.1).
//! This module provides that last mile: expanding a daily series into
//! hourly counts under a diurnal profile (for workloads that need
//! sub-day structure, e.g. latency-aware extensions), and re-binning
//! hourly data back to days (for ingesting real hourly dumps through
//! [`crate::io`]).

use crate::file::FileSeries;
use crate::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hours per day.
pub const HOURS: usize = 24;

/// A normalized diurnal profile: fraction of a day's requests per hour.
#[derive(Clone, Debug, PartialEq)]
pub struct DiurnalProfile {
    weights: [f64; HOURS],
}

impl DiurnalProfile {
    /// Builds a profile from relative hourly weights (normalized
    /// internally). Panics if any weight is negative or all are zero.
    #[must_use]
    pub fn new(raw: [f64; HOURS]) -> DiurnalProfile {
        assert!(raw.iter().all(|&w| w >= 0.0), "weights must be non-negative");
        let total: f64 = raw.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut weights = raw;
        for w in &mut weights {
            *w /= total;
        }
        DiurnalProfile { weights }
    }

    /// Flat profile: every hour carries 1/24 of the day.
    #[must_use]
    pub fn flat() -> DiurnalProfile {
        DiurnalProfile { weights: [1.0 / HOURS as f64; HOURS] }
    }

    /// A web-traffic-like profile: a broad daytime plateau peaking in the
    /// evening, a deep night trough (single-sinusoid approximation of
    /// published Wikipedia load curves).
    #[must_use]
    pub fn web_default() -> DiurnalProfile {
        let mut raw = [0.0; HOURS];
        for (hour, w) in raw.iter_mut().enumerate() {
            // Peak at 20:00, trough at 08:00 shifted-phase sinusoid.
            let phase = std::f64::consts::TAU * (hour as f64 - 20.0) / HOURS as f64;
            *w = 1.0 + 0.75 * phase.cos();
        }
        DiurnalProfile::new(raw)
    }

    /// Fraction of daily traffic in hour `h`.
    #[must_use]
    pub fn weight(&self, hour: usize) -> f64 {
        self.weights[hour]
    }

    /// Splits `total` daily requests into 24 hourly counts that sum exactly
    /// to `total` (largest-remainder apportionment of the expected values,
    /// with optional Poisson jitter from `rng`).
    ///
    /// Allocation-free: both scratch tables are fixed-size arrays, so the
    /// per-day hot loop of [`HourSplits`] / [`HourlySeries::expand`] never
    /// touches the heap. Ties in the largest-remainder pass break toward
    /// the earlier hour, matching the former stable-sort behaviour exactly.
    #[must_use]
    pub fn split_day(&self, total: u64, jitter: Option<&mut StdRng>) -> [u64; HOURS] {
        let mut out = [0u64; HOURS];
        if total == 0 {
            return out;
        }
        // Expected per-hour counts (optionally jittered), then scale back
        // to the exact total via largest remainders.
        let mut expected = [0.0f64; HOURS];
        for (e, &w) in expected.iter_mut().zip(&self.weights) {
            *e = w * total as f64;
        }
        if let Some(rng) = jitter {
            for e in &mut expected {
                *e = sampling::poisson(rng, *e) as f64;
            }
            let sum: f64 = expected.iter().sum();
            if sum > 0.0 {
                let scale = total as f64 / sum;
                for e in &mut expected {
                    *e *= scale;
                }
            } else {
                for (e, &w) in expected.iter_mut().zip(&self.weights) {
                    *e = w * total as f64;
                }
            }
        }
        let mut assigned = 0u64;
        let mut remainders = [(0usize, 0.0f64); HOURS];
        for (h, &e) in expected.iter().enumerate() {
            let floor = e.floor() as u64;
            out[h] = floor;
            assigned += floor;
            remainders[h] = (h, e - e.floor());
        }
        remainders.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut leftover = total - assigned;
        for (h, _) in remainders {
            if leftover == 0 {
                break;
            }
            out[h] += 1;
            leftover -= 1;
        }
        out
    }
}

/// A lazy per-day hour-split iterator over one file's daily read series.
///
/// Yields the same `[u64; HOURS]` rows [`HourlySeries::expand`] would
/// materialize — identical seeded RNG stream, identical apportionment —
/// but one day at a time, so a streaming consumer never holds the full
/// `days x 24` matrix resident.
#[derive(Debug)]
pub struct HourSplits<'a> {
    daily: std::slice::Iter<'a, u64>,
    profile: &'a DiurnalProfile,
    rng: StdRng,
}

impl<'a> HourSplits<'a> {
    /// Starts a lazy expansion of `file`'s daily reads under `profile`,
    /// seeded per file exactly as [`HourlySeries::expand`] is.
    #[must_use]
    pub fn new(file: &'a FileSeries, profile: &'a DiurnalProfile, seed: u64) -> HourSplits<'a> {
        HourSplits {
            daily: file.reads.iter(),
            profile,
            rng: StdRng::seed_from_u64(seed ^ u64::from(file.id.0) << 16),
        }
    }
}

impl Iterator for HourSplits<'_> {
    type Item = [u64; HOURS];

    fn next(&mut self) -> Option<[u64; HOURS]> {
        let &daily = self.daily.next()?;
        Some(self.profile.split_day(daily, Some(&mut self.rng)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.daily.size_hint()
    }
}

/// A file's hourly read counts (`days x 24`, row-major by day).
#[derive(Clone, Debug, PartialEq)]
pub struct HourlySeries {
    /// Hourly read counts, `day * 24 + hour` indexed.
    pub reads: Vec<u64>,
}

impl HourlySeries {
    /// Expands a daily series under `profile`, seeded per file so the
    /// expansion is deterministic. Materializes the rows of [`HourSplits`];
    /// streaming consumers should iterate [`HourSplits`] directly instead.
    #[must_use]
    pub fn expand(file: &FileSeries, profile: &DiurnalProfile, seed: u64) -> HourlySeries {
        let mut reads = Vec::with_capacity(file.days() * HOURS);
        for day in HourSplits::new(file, profile, seed) {
            reads.extend(day);
        }
        HourlySeries { reads }
    }

    /// Number of whole days covered.
    #[must_use]
    pub fn days(&self) -> usize {
        self.reads.len() / HOURS
    }

    /// Re-bins to daily counts — the paper's §6.1 preprocessing step.
    #[must_use]
    pub fn rebin_daily(&self) -> Vec<u64> {
        self.reads.chunks(HOURS).map(|day| day.iter().sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;
    use crate::workload::Trace;

    #[test]
    fn profiles_are_normalized() {
        for profile in [DiurnalProfile::flat(), DiurnalProfile::web_default()] {
            let total: f64 = (0..HOURS).map(|h| profile.weight(h)).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn web_profile_peaks_in_the_evening() {
        let p = DiurnalProfile::web_default();
        assert!(p.weight(20) > p.weight(8), "evening must out-weigh morning trough");
    }

    #[test]
    fn split_day_conserves_the_total_exactly() {
        let p = DiurnalProfile::web_default();
        for &total in &[0u64, 1, 23, 24, 1000, 999_983] {
            let hours = p.split_day(total, None);
            assert_eq!(hours.iter().sum::<u64>(), total, "total {total}");
        }
        // With jitter too.
        let mut rng = StdRng::seed_from_u64(1);
        let hours = p.split_day(5000, Some(&mut rng));
        assert_eq!(hours.iter().sum::<u64>(), 5000);
    }

    #[test]
    fn expand_then_rebin_is_identity() {
        let trace = Trace::generate(&TraceConfig::small(10, 7, 31));
        let profile = DiurnalProfile::web_default();
        for file in &trace.files {
            let hourly = HourlySeries::expand(file, &profile, 9);
            assert_eq!(hourly.days(), file.days());
            assert_eq!(hourly.rebin_daily(), file.reads, "file {}", file.id);
        }
    }

    #[test]
    fn expansion_is_deterministic_per_seed() {
        let trace = Trace::generate(&TraceConfig::small(3, 5, 32));
        let p = DiurnalProfile::web_default();
        let a = HourlySeries::expand(&trace.files[0], &p, 7);
        let b = HourlySeries::expand(&trace.files[0], &p, 7);
        assert_eq!(a, b);
        let c = HourlySeries::expand(&trace.files[0], &p, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn lazy_hour_splits_match_expand_exactly() {
        let trace = Trace::generate(&TraceConfig::small(6, 9, 13));
        let profile = DiurnalProfile::web_default();
        for file in &trace.files {
            let eager = HourlySeries::expand(file, &profile, 21);
            let lazy: Vec<u64> =
                HourSplits::new(file, &profile, 21).flat_map(|day| day.into_iter()).collect();
            assert_eq!(lazy, eager.reads, "file {}", file.id);
        }
    }

    #[test]
    fn hour_splits_reports_remaining_days() {
        let trace = Trace::generate(&TraceConfig::small(1, 5, 2));
        let profile = DiurnalProfile::flat();
        let mut it = HourSplits::new(&trace.files[0], &profile, 0);
        assert_eq!(it.size_hint(), (5, Some(5)));
        let _ = it.next();
        assert_eq!(it.size_hint(), (4, Some(4)));
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn split_day_ties_break_toward_earlier_hours() {
        // A flat profile with a non-multiple total leaves equal remainders
        // everywhere; the leftover units must land on the earliest hours.
        let p = DiurnalProfile::flat();
        let hours = p.split_day(25, None);
        assert_eq!(hours[0], 2);
        assert!(hours[1..].iter().all(|&h| h == 1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let mut raw = [1.0; HOURS];
        raw[3] = -0.1;
        let _ = DiurnalProfile::new(raw);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn zero_profile_rejected() {
        let _ = DiurnalProfile::new([0.0; HOURS]);
    }
}
