//! Trace import/export.
//!
//! The synthetic generator stands in for the paper's Wikipedia pagecounts
//! dump, but a downstream user with access to a real trace (pagecounts,
//! CDN logs, object-store access logs) should be able to drive every
//! experiment with it. This module defines a minimal CSV interchange
//! format, one row per file:
//!
//! ```text
//! id,size_gb,reads_day0;reads_day1;...,writes_day0;writes_day1;...
//! ```
//!
//! plus JSON round-tripping helpers (the whole [`Trace`] is `serde`).

use crate::file::{FileId, FileSeries};
use crate::workload::Trace;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Writes `trace` as interchange CSV.
///
/// # Errors
/// Propagates I/O errors from the writer as [`TraceIoError::Io`].
pub fn write_csv<W: Write>(trace: &Trace, writer: W) -> Result<(), TraceIoError> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "id,size_gb,reads,writes")?;
    for file in &trace.files {
        let reads: Vec<String> = file.reads.iter().map(u64::to_string).collect();
        let writes: Vec<String> = file.writes.iter().map(u64::to_string).collect();
        writeln!(out, "{},{},{},{}", file.id.0, file.size_gb, reads.join(";"), writes.join(";"))?;
    }
    out.flush()?;
    Ok(())
}

/// Errors from trace import/export ([`read_csv`], [`write_csv`],
/// [`read_json`], [`write_json`]).
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed CSV row, with its 1-based line number and a description.
    Parse(usize, String),
    /// Malformed JSON, with a description.
    Json(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io error: {e}"),
            TraceIoError::Parse(line, msg) => write!(f, "trace line {line}: {msg}"),
            TraceIoError::Json(msg) => write!(f, "trace json error: {msg}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Reads a trace from interchange CSV (as written by [`write_csv`]).
///
/// Files are re-identified densely in row order; all series must share one
/// day count.
///
/// # Errors
/// Returns [`TraceIoError`] on I/O failure or any malformed row.
pub fn read_csv<R: Read>(reader: R) -> Result<Trace, TraceIoError> {
    let input = BufReader::new(reader);
    let mut files = Vec::new();
    let mut days: Option<usize> = None;
    for (ix, line) in input.lines().enumerate() {
        let line = line?;
        if ix == 0 {
            if line.trim() != "id,size_gb,reads,writes" {
                return Err(TraceIoError::Parse(1, format!("bad header {line:?}")));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let row = ix + 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(TraceIoError::Parse(
                row,
                format!("expected 4 fields, got {}", fields.len()),
            ));
        }
        let size_gb: f64 =
            fields[1].parse().map_err(|e| TraceIoError::Parse(row, format!("size_gb: {e}")))?;
        if !size_gb.is_finite() || size_gb < 0.0 {
            return Err(TraceIoError::Parse(row, format!("size_gb out of range: {size_gb}")));
        }
        let parse_series = |field: &str, name: &str| -> Result<Vec<u64>, TraceIoError> {
            if field.is_empty() {
                return Ok(Vec::new());
            }
            field
                .split(';')
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|e| TraceIoError::Parse(row, format!("{name}: {v:?}: {e}")))
                })
                .collect()
        };
        let reads = parse_series(fields[2], "reads")?;
        let writes = parse_series(fields[3], "writes")?;
        if reads.len() != writes.len() {
            return Err(TraceIoError::Parse(
                row,
                format!("reads ({}) and writes ({}) differ", reads.len(), writes.len()),
            ));
        }
        match days {
            None => days = Some(reads.len()),
            Some(d) if d != reads.len() => {
                return Err(TraceIoError::Parse(
                    row,
                    format!("series length {} != trace days {d}", reads.len()),
                ))
            }
            _ => {}
        }
        files.push(FileSeries { id: FileId::from_index(files.len()), size_gb, reads, writes });
    }
    Ok(Trace { days: days.unwrap_or(0), files })
}

/// Writes `trace` as JSON (the whole [`Trace`] is `serde`).
///
/// # Errors
/// Propagates I/O errors from the writer as [`TraceIoError::Io`].
pub fn write_json<W: Write>(trace: &Trace, writer: W) -> Result<(), TraceIoError> {
    let text = serde_json::to_string(trace).map_err(|e| TraceIoError::Json(e.to_string()))?;
    let mut out = BufWriter::new(writer);
    out.write_all(text.as_bytes())?;
    out.flush()?;
    Ok(())
}

/// Reads a trace from JSON (as written by [`write_json`]).
///
/// # Errors
/// Returns [`TraceIoError::Io`] on read failure and [`TraceIoError::Json`]
/// on malformed or mistyped JSON.
pub fn read_json<R: Read>(reader: R) -> Result<Trace, TraceIoError> {
    let mut text = String::new();
    BufReader::new(reader).read_to_string(&mut text)?;
    serde_json::from_str(&text).map_err(|e| TraceIoError::Json(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TraceConfig;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_traces_round_trip(
            series in proptest::collection::vec(
                proptest::collection::vec(0u64..1_000_000, 4), 0..12),
            size_milli_gb in 1u32..10_000,
        ) {
            let files = series
                .iter()
                .enumerate()
                .map(|(i, reads)| FileSeries {
                    id: FileId(i as u32),
                    size_gb: f64::from(size_milli_gb) / 1000.0,
                    reads: reads.clone(),
                    writes: reads.iter().map(|r| r / 7).collect(),
                })
                .collect();
            let trace = Trace { days: if series.is_empty() { 0 } else { 4 }, files };
            let mut buffer = Vec::new();
            write_csv(&trace, &mut buffer).unwrap();
            let back = read_csv(buffer.as_slice()).unwrap();
            prop_assert_eq!(back.files.len(), trace.files.len());
            for (a, b) in trace.files.iter().zip(&back.files) {
                prop_assert_eq!(&a.reads, &b.reads);
                prop_assert_eq!(&a.writes, &b.writes);
                prop_assert!((a.size_gb - b.size_gb).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn csv_round_trip_preserves_series() {
        let trace = Trace::generate(&TraceConfig::small(25, 10, 77));
        let mut buffer = Vec::new();
        write_csv(&trace, &mut buffer).unwrap();
        let back = read_csv(buffer.as_slice()).unwrap();
        assert_eq!(back.days, trace.days);
        assert_eq!(back.files.len(), trace.files.len());
        for (a, b) in trace.files.iter().zip(&back.files) {
            assert_eq!(a.reads, b.reads);
            assert_eq!(a.writes, b.writes);
            assert!((a.size_gb - b.size_gb).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace { days: 0, files: vec![] };
        let mut buffer = Vec::new();
        write_csv(&trace, &mut buffer).unwrap();
        let back = read_csv(buffer.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let trace = Trace::generate(&TraceConfig::small(12, 6, 5));
        let mut buffer = Vec::new();
        write_json(&trace, &mut buffer).unwrap();
        let back = read_json(buffer.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn json_rejects_garbage() {
        let err = read_json("not json".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Json(_)), "{err}");
        let err = read_json(r#"{"days": "three"}"#.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Json(_)), "{err}");
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_csv("wrong,header\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(1, _)), "{err}");
    }

    #[test]
    fn rejects_ragged_series() {
        let csv = "id,size_gb,reads,writes\n0,0.1,1;2;3,1;2\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("differ"), "{err}");
    }

    #[test]
    fn rejects_mixed_day_counts() {
        let csv = "id,size_gb,reads,writes\n0,0.1,1;2,0;0\n1,0.1,1;2;3,0;0;0\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trace days"), "{err}");
    }

    #[test]
    fn rejects_garbage_values() {
        let csv = "id,size_gb,reads,writes\n0,lots,1,0\n";
        assert!(read_csv(csv.as_bytes()).is_err());
        let csv = "id,size_gb,reads,writes\n0,0.1,minus-one,0\n";
        assert!(read_csv(csv.as_bytes()).is_err());
        let csv = "id,size_gb,reads,writes\n0,-3.0,1,0\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines_and_reindexes() {
        let csv = "id,size_gb,reads,writes\n99,0.1,1;2,0;0\n\n7,0.2,3;4,0;1\n";
        let trace = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(trace.files.len(), 2);
        // Re-identified densely regardless of the id column.
        assert_eq!(trace.files[0].id, FileId(0));
        assert_eq!(trace.files[1].id, FileId(1));
        assert_eq!(trace.files[1].reads, vec![3, 4]);
    }
}
