//! Synthetic Wikipedia-like request-frequency traces.
//!
//! The MiniCost paper (Wang et al., ICPP 2020) drives every experiment with a
//! two-month Wikipedia page-view trace (§3.1): ~4M articles, hourly views
//! re-binned to daily request frequencies, Poisson-distributed file sizes
//! with a 100 MB mean, and a characteristic mix of stationary and highly
//! non-stationary files (Fig. 2: 81.75% of files have a normalized daily
//! request-frequency standard deviation below 0.1, 0.63% above 0.8).
//!
//! The original trace is not redistributable here, so this crate generates a
//! **calibrated synthetic equivalent**: Zipf popularity, weekly seasonality
//! (the paper cites ~1-week request cycles), per-file multiplicative
//! log-normal variability whose magnitude is drawn to match the paper's
//! bucket mix, and Poisson file sizes. Every generator is seeded and
//! deterministic, so experiments are exactly reproducible.
//!
//! # Quick example
//!
//! ```
//! use tracegen::{TraceConfig, Trace};
//!
//! let cfg = TraceConfig { files: 100, days: 14, seed: 7, ..TraceConfig::default() };
//! let trace = Trace::generate(&cfg);
//! assert_eq!(trace.files.len(), 100);
//! let hist = tracegen::analysis::bucket_histogram(&trace);
//! assert_eq!(hist.counts.iter().sum::<usize>(), 100);
//! ```

#![warn(missing_docs)]
// Library code must surface failures as values (L2 no-panic-in-libs); tests
// may unwrap freely.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Tests assert bit-exact float reproducibility on purpose.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod analysis;
pub mod concurrency;
pub mod config;
pub mod file;
pub mod generate;
pub mod hourly;
pub mod io;
pub mod sampling;
pub mod workload;

pub use analysis::{BucketHistogram, CvBucket, CV_BUCKET_COUNT};
pub use concurrency::{CoRequestGroup, CoRequestModel};
pub use config::TraceConfig;
pub use file::{FileId, FileSeries};
pub use hourly::{DiurnalProfile, HourSplits, HourlySeries, HOURS};
pub use workload::{Trace, TraceSplit};
