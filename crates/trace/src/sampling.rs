//! Distribution samplers used by the trace generator.
//!
//! Implemented from scratch on top of `rand`'s uniform primitives so the
//! workspace keeps its dependency surface to the approved crate list
//! (`rand_distr` would otherwise be needed). All samplers are deterministic
//! given the caller's seeded RNG.

use rand::{Rng, RngExt};

/// Samples a standard normal deviate via the Box–Muller transform.
///
/// Uses the polar-free classic form; the second deviate of each pair is
/// intentionally discarded to keep the sampler stateless.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against u1 == 0.0 (ln(0) = -inf).
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, sd^2)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    debug_assert!(sd >= 0.0, "standard deviation must be non-negative");
    mean + sd * standard_normal(rng)
}

/// Samples a log-normal deviate with **unit mean** and the given coefficient
/// of variation.
///
/// For `LogNormal(mu, sigma)`, the mean is `exp(mu + sigma^2/2)` and the CV is
/// `sqrt(exp(sigma^2) - 1)`. Solving for unit mean gives
/// `sigma^2 = ln(1 + cv^2)`, `mu = -sigma^2 / 2`. This is the multiplicative
/// noise kernel the generator uses to hit a target CV bucket.
pub fn unit_mean_lognormal<R: Rng + ?Sized>(rng: &mut R, cv: f64) -> f64 {
    debug_assert!(cv >= 0.0, "cv must be non-negative");
    if cv == 0.0 {
        return 1.0;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let sigma = sigma2.sqrt();
    (sigma * standard_normal(rng) - sigma2 / 2.0).exp()
}

/// Transforms a standard-normal deviate `z` into a unit-mean log-normal
/// factor with the given CV. Lets callers correlate the underlying Gaussian
/// (e.g. mix a deterministic seasonal component into `z`) while preserving
/// the mean/CV calibration of [`unit_mean_lognormal`].
#[must_use]
pub fn lognormal_factor_from_z(z: f64, cv: f64) -> f64 {
    if cv <= 0.0 {
        return 1.0;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let sigma = sigma2.sqrt();
    (sigma * z - sigma2 / 2.0).exp()
}

/// Samples `Poisson(lambda)`.
///
/// Uses Knuth's product-of-uniforms method for small `lambda` and a
/// normal approximation (continuity-corrected, clamped at zero) for large
/// `lambda`, where the exact method would need `O(lambda)` uniforms.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    } else {
        let sample = normal(rng, lambda, lambda.sqrt()) + 0.5;
        if sample <= 0.0 {
            0
        } else {
            sample.floor() as u64
        }
    }
}

/// Zipf sampler over ranks `0..n` with exponent `s`, built on a precomputed
/// cumulative table (exact inverse-CDF sampling, O(log n) per draw).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. Panics if `n == 0` or `s < 0`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks in the support.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the support is empty (never, for constructed samplers).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Relative weight of rank `r` (0-based): `(r+1)^-s / H_n(s)`.
    #[must_use]
    pub fn weight(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Draws a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Weighted index sampler over arbitrary non-negative weights
/// (inverse-CDF over a cumulative table).
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cdf: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler. Panics if `weights` is empty, contains a negative
    /// value, or sums to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "weights must be non-negative");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for v in &mut cdf {
            *v /= acc;
        }
        WeightedIndex { cdf }
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn mean_and_sd(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var.sqrt())
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(1);
        let samples: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut r)).collect();
        let (mean, sd) = mean_and_sd(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((sd - 1.0).abs() < 0.02, "sd {sd}");
    }

    #[test]
    fn normal_respects_parameters() {
        let mut r = rng(2);
        let samples: Vec<f64> = (0..50_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let (mean, sd) = mean_and_sd(&samples);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((sd - 2.0).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn unit_mean_lognormal_calibration() {
        for &cv in &[0.05, 0.2, 0.5, 1.0] {
            let mut r = rng(3);
            let samples: Vec<f64> = (0..100_000).map(|_| unit_mean_lognormal(&mut r, cv)).collect();
            let (mean, sd) = mean_and_sd(&samples);
            assert!((mean - 1.0).abs() < 0.03, "cv={cv} mean {mean}");
            let realized_cv = sd / mean;
            assert!(
                (realized_cv - cv).abs() < 0.1 * cv.max(0.05),
                "cv={cv} realized {realized_cv}"
            );
        }
    }

    #[test]
    fn lognormal_cv_zero_is_constant_one() {
        let mut r = rng(4);
        assert_eq!(unit_mean_lognormal(&mut r, 0.0), 1.0);
        assert_eq!(lognormal_factor_from_z(2.0, 0.0), 1.0);
    }

    #[test]
    fn lognormal_factor_matches_sampler_formula() {
        // Factor at z must equal the closed form used by the sampler.
        let cv = 0.4f64;
        let sigma2 = (1.0 + cv * cv).ln();
        let sigma = sigma2.sqrt();
        let z = 1.3;
        let expected = (sigma * z - sigma2 / 2.0).exp();
        assert!((lognormal_factor_from_z(z, cv) - expected).abs() < 1e-12);
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut r = rng(5);
        let lambda = 4.0;
        let samples: Vec<f64> = (0..50_000).map(|_| poisson(&mut r, lambda) as f64).collect();
        let (mean, sd) = mean_and_sd(&samples);
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        assert!((sd * sd - lambda).abs() < 0.2, "var {}", sd * sd);
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut r = rng(6);
        let lambda = 100.0;
        let samples: Vec<f64> = (0..50_000).map(|_| poisson(&mut r, lambda) as f64).collect();
        let (mean, sd) = mean_and_sd(&samples);
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
        assert!((sd * sd - lambda).abs() < 5.0, "var {}", sd * sd);
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut r = rng(7);
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn zipf_rank_frequencies_decrease() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng(8);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        // Rank 0 must dominate rank 9 by roughly 10x for s = 1.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!(ratio > 6.0 && ratio < 16.0, "ratio {ratio}");
    }

    #[test]
    fn zipf_weights_sum_to_one() {
        let z = Zipf::new(50, 0.8);
        let total: f64 = (0..50).map(|r| z.weight(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.len(), 50);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.weight(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]);
        let mut r = rng(9);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_rejects_empty() {
        let _ = WeightedIndex::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn weighted_index_rejects_all_zero() {
        let _ = WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn samplers_are_deterministic_given_seed() {
        let draw = |seed| {
            let mut r = rng(seed);
            (standard_normal(&mut r), poisson(&mut r, 10.0), Zipf::new(10, 1.0).sample(&mut r))
        };
        assert_eq!(draw(42), draw(42));
    }
}
