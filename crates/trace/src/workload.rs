//! Trace containers and train/test splitting.

use crate::config::TraceConfig;
use crate::file::{FileId, FileSeries};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Domain-separation constant for the split RNG, so splitting with the same
/// seed as generation still produces an independent stream.
const SPLIT_SEED_DOMAIN: u64 = 0x5EED_5EED_5EED_5EED;

/// A complete trace: per-file daily read/write series over a common horizon.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of days every series spans.
    pub days: usize,
    /// Per-file series, indexed by [`FileId::index`].
    pub files: Vec<FileSeries>,
}

impl Trace {
    /// Generates a synthetic trace from `config`.
    ///
    /// Panics if the configuration is invalid; use
    /// [`TraceConfig::validate`] to check first.
    #[must_use]
    pub fn generate(config: &TraceConfig) -> Trace {
        crate::generate::generate(config)
    }

    /// Number of files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` if the trace has no files.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The series for `id`. Panics if out of range.
    #[must_use]
    pub fn file(&self, id: FileId) -> &FileSeries {
        &self.files[id.index()]
    }

    /// Total read operations across all files and days.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.files.iter().map(|f| f.reads.iter().sum::<u64>()).sum()
    }

    /// A new trace containing only the selected files (re-identified
    /// densely, preserving order).
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Trace {
        let files = indices
            .iter()
            .enumerate()
            .map(|(new_ix, &old_ix)| {
                let mut f = self.files[old_ix].clone();
                f.id = FileId::from_index(new_ix);
                f
            })
            .collect();
        Trace { days: self.days, files }
    }

    /// A new trace restricted to days `range` for every file.
    ///
    /// Panics if the range exceeds the trace horizon.
    #[must_use]
    pub fn day_window(&self, range: std::ops::Range<usize>) -> Trace {
        assert!(range.end <= self.days, "window {range:?} exceeds {} days", self.days);
        Trace {
            days: range.len(),
            files: self.files.iter().map(|f| f.window(range.clone())).collect(),
        }
    }

    /// Random train/test split by file (the paper's §6.1: "a random sample
    /// of 80% of our collected trace data as a training set ... the
    /// remaining 20% as a test set").
    ///
    /// `train_fraction` is clamped to `[0, 1]`. The split is deterministic
    /// given `seed`.
    #[must_use]
    pub fn split(&self, train_fraction: f64, seed: u64) -> TraceSplit {
        let frac = train_fraction.clamp(0.0, 1.0);
        let mut indices: Vec<usize> = (0..self.files.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ SPLIT_SEED_DOMAIN);
        indices.shuffle(&mut rng);
        let n_train = (self.files.len() as f64 * frac).round() as usize;
        let (train_ix, test_ix) = indices.split_at(n_train.min(indices.len()));
        TraceSplit { train: self.subset(train_ix), test: self.subset(test_ix) }
    }
}

/// An 80/20-style split of a trace into train and test sub-traces.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceSplit {
    /// Training files (re-identified densely).
    pub train: Trace,
    /// Held-out test files (re-identified densely).
    pub test: Trace,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace(n: usize, days: usize) -> Trace {
        let files = (0..n)
            .map(|i| FileSeries {
                id: FileId(i as u32),
                size_gb: 0.1,
                reads: (0..days).map(|d| (i * days + d) as u64).collect(),
                writes: vec![0; days],
            })
            .collect();
        Trace { days, files }
    }

    #[test]
    fn subset_reindexes_densely() {
        let t = tiny_trace(5, 3);
        let s = t.subset(&[4, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.files[0].id, FileId(0));
        assert_eq!(s.files[1].id, FileId(1));
        // Content comes from the original files 4 and 1.
        assert_eq!(s.files[0].reads, t.files[4].reads);
        assert_eq!(s.files[1].reads, t.files[1].reads);
    }

    #[test]
    fn day_window_narrows_horizon() {
        let t = tiny_trace(2, 5);
        let w = t.day_window(1..4);
        assert_eq!(w.days, 3);
        assert!(w.files.iter().all(|f| f.days() == 3));
        assert_eq!(w.files[1].reads, t.files[1].reads[1..4].to_vec());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn day_window_out_of_range_panics() {
        let _ = tiny_trace(1, 3).day_window(0..4);
    }

    #[test]
    fn split_is_partition() {
        let t = tiny_trace(10, 2);
        let split = t.split(0.8, 9);
        assert_eq!(split.train.len(), 8);
        assert_eq!(split.test.len(), 2);
        // No series lost or duplicated: compare multisets of read vectors.
        let mut all: Vec<Vec<u64>> = split
            .train
            .files
            .iter()
            .chain(split.test.files.iter())
            .map(|f| f.reads.clone())
            .collect();
        let mut orig: Vec<Vec<u64>> = t.files.iter().map(|f| f.reads.clone()).collect();
        all.sort();
        orig.sort();
        assert_eq!(all, orig);
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let t = tiny_trace(50, 2);
        let a = t.split(0.8, 1);
        let b = t.split(0.8, 1);
        let c = t.split(0.8, 2);
        assert_eq!(a, b);
        assert_ne!(a.train.files[0].reads, c.train.files[0].reads);
    }

    #[test]
    fn split_fraction_edges() {
        let t = tiny_trace(4, 2);
        let all_train = t.split(1.0, 3);
        assert_eq!(all_train.train.len(), 4);
        assert_eq!(all_train.test.len(), 0);
        let all_test = t.split(0.0, 3);
        assert_eq!(all_test.train.len(), 0);
        assert_eq!(all_test.test.len(), 4);
        // Out-of-range fractions clamp.
        assert_eq!(t.split(7.0, 3).train.len(), 4);
    }

    #[test]
    fn total_reads_sums_everything() {
        let t = tiny_trace(2, 2);
        // file0: 0+1, file1: 2+3 => 6
        assert_eq!(t.total_reads(), 6);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace { days: 0, files: vec![] };
        assert!(t.is_empty());
        assert_eq!(t.total_reads(), 0);
        let s = t.split(0.8, 1);
        assert!(s.train.is_empty() && s.test.is_empty());
    }
}
