//! Fixture: F1 `determinism-taint`. Not compiled; the flow self-tests load
//! this file as crate `core` and assert the wall-clock read three hops
//! below `decide_batch` is caught, while the justified log-only timestamp
//! is not.

use std::time::{SystemTime, UNIX_EPOCH};

pub struct Jittery;

impl Jittery {
    /// VIOLATION: tainted sink — the source is two call hops down.
    pub fn decide_batch(&mut self) -> u64 {
        score_all()
    }

    /// Clean sink: only seeded, pure helpers below.
    pub fn decide_one(&mut self) -> u64 {
        seeded_score()
    }
}

fn score_all() -> u64 {
    jitter() + seeded_score()
}

fn jitter() -> u64 {
    wall_clock_nanos()
}

fn wall_clock_nanos() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.subsec_nanos() as u64)
}

fn seeded_score() -> u64 {
    42
}

/// Waived source: the justified escape stops taint at this read.
fn log_stamp() -> u64 {
    // xtask-allow(determinism-taint): log-only timestamp, not a decision input
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs())
}

/// Clean sink despite calling a waived source.
pub fn decide_fleet() -> u64 {
    log_stamp()
}
