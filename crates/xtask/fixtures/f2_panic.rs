//! Fixture: F2 `panic-reachability`. Not compiled; the flow self-tests
//! load this file as crate `core` with root `core::serve` and assert the
//! reachable panic sites are flagged, the unreachable one is not, and the
//! allowlist and site waivers suppress.

/// Entry point: everything below is the serving path.
pub fn serve(days: usize) -> u64 {
    let mut total = 0;
    for day in 0..days {
        total += bill_day(day);
    }
    total + tail(&[total])
}

/// VIOLATION: indexing and a modulo by variable, two hops from `serve`.
fn bill_day(day: usize) -> u64 {
    let rates = [1u64, 2, 3];
    let rate = rates[day];
    rate + cadence_hit(day, 0)
}

/// VIOLATION: unwrap on the serving path.
fn cadence_hit(day: usize, every: usize) -> u64 {
    let table: Option<u64> = Some(7);
    if day % every == 0 {
        table.unwrap()
    } else {
        0
    }
}

/// Allowlisted: covered by a `core::audited_assert` allowlist entry in the
/// self-test.
pub fn audited_assert(n: usize) {
    assert!(n > 0, "fail-fast by contract");
}

/// Waived site: the justified escape comment suppresses the index.
fn waived_index(xs: &[u64], i: usize) -> u64 {
    // xtask-allow(panic-reachability): bounds checked by the caller's loop
    xs[i]
}

/// Keeps the waived helper on the serving path.
pub fn tail(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        0
    } else {
        waived_index(xs, xs.len() - 1) + audited_assert_hop(xs.len())
    }
}

fn audited_assert_hop(n: usize) -> u64 {
    audited_assert(n);
    0
}

/// NOT reported: panics, but nothing on the serving path calls it.
pub fn offline_report(xs: &[u64]) -> u64 {
    xs[0]
}
