//! Fixture: F3 `lock-order`. Not compiled; the flow self-tests assert the
//! inverted acquisition order forms a reported cycle, the consistent pair
//! does not, and interprocedural acquisition through a callee is seen.

use parking_lot::Mutex;

pub struct Store {
    actor: Mutex<Vec<f64>>,
    critic: Mutex<Vec<f64>>,
    audit: Mutex<Vec<f64>>,
}

impl Store {
    /// Acquires `actor` then `critic` — consistent with `snapshot`.
    pub fn apply(&self) {
        let a = self.actor.lock();
        let mut c = self.critic.lock();
        c.extend(a.iter().copied());
    }

    /// Same order as `apply`: no cycle from this pair alone.
    pub fn snapshot(&self) -> usize {
        let a = self.actor.lock();
        let c = self.critic.lock();
        a.len() + c.len()
    }

    /// VIOLATION: acquires `critic` then (via `log_actor`) `actor`,
    /// inverting the order and closing the cycle interprocedurally.
    pub fn rollback(&self) {
        let c = self.critic.lock();
        self.log_actor(c.len());
    }

    fn log_actor(&self, n: usize) {
        let mut a = self.actor.lock();
        a.push(n as f64);
    }

    /// Independent lock, never nested: stays out of every cycle.
    pub fn audit_len(&self) -> usize {
        self.audit.lock().len()
    }
}
