//! Fixture: F4 `unit-dimensions`. Not compiled; the units self-tests load
//! this file as crate `core` and assert each rejection rule fires (mixed
//! addition, cross-dimension comparison, month/day slip into a `Money`
//! sink, interprocedural return-dimension propagation) while the correct
//! proration, polymorphic literals, and the site waiver stay silent.

/// Monthly storage price.
/// xtask-unit: $/GB·month
pub const RATE_GB_MONTH: f64 = 0.0184;

/// Billing-month length used for daily proration.
/// xtask-unit: day/month
pub const DAYS_PER_MONTH: f64 = 30.0;

/// VIOLATION: adds a $/GB·month rate to a GB size.
pub fn mixed_add(size_gb: f64) -> f64 {
    RATE_GB_MONTH + size_gb
}

/// VIOLATION: compares GB against $/GB·month.
pub fn mixed_compare(size_gb: f64) -> bool {
    size_gb > RATE_GB_MONTH
}

/// VIOLATION: the month→day conversion is missing, so a $/month value
/// flows into the Money constructor.
pub fn month_day_slip(size_gb: f64) -> Money {
    Money::from_dollars(RATE_GB_MONTH * size_gb)
}

/// Clean: the correct daily proration derives $/day, which the Money
/// sink accepts as the one-day charging quantum.
pub fn storage_day(size_gb: f64) -> Money {
    Money::from_dollars(RATE_GB_MONTH / DAYS_PER_MONTH * size_gb)
}

/// Helper with a declared return dimension.
/// xtask-unit(return): $/month
fn monthly_rate(size_gb: f64) -> f64 {
    RATE_GB_MONTH * size_gb
}

/// VIOLATION: the declared $/month return flows into the sink.
pub fn bill_via_declared(size_gb: f64) -> Money {
    Money::from_dollars(monthly_rate(size_gb))
}

/// Helper whose $/month return dimension is derived from its body by the
/// interprocedural fixpoint (no declaration).
fn derived_rate(size_gb: f64) -> f64 {
    RATE_GB_MONTH * size_gb
}

/// VIOLATION: the fixpoint-derived $/month return flows into the sink.
pub fn bill_via_derived(size_gb: f64) -> Money {
    Money::from_dollars(derived_rate(size_gb))
}

/// Clean: bare literals are polymorphic and log-scaling is dimensionless,
/// so smoothing a count never trips the checker.
pub fn smoothed(reads: f64) -> f64 {
    (reads + 1.0).ln() / 10.0
}

/// Waived: the deliberate mismatch is justified at the site.
pub fn waived(size_gb: f64) -> f64 {
    // xtask-allow(unit-dimensions): fixture demonstrating the site waiver
    RATE_GB_MONTH + size_gb
}
