//! Fixture: F5 `hot-alloc`. Not compiled; the alloc self-tests load this
//! file as crate `core` with roots `core::run_shard`, `core::serve`, and
//! the `decide_batch` impl, and assert reachable allocating functions are
//! flagged, the offline one is not, and the allowlist and site waivers
//! suppress.

/// Root: the per-day shard loop.
pub fn run_shard(days: usize) -> usize {
    let mut total = 0;
    for day in 0..days {
        total += decide(day);
    }
    total
}

/// VIOLATION: allocates a fresh buffer every day, one hop from the root.
fn decide(day: usize) -> usize {
    let scores = vec![day, day + 1];
    let copy = scores.clone();
    copy.len()
}

/// Batch decision trait mirroring the real `Policy` dispatch.
pub trait Policy {
    /// Decides every slot for one day.
    fn decide_batch(&mut self, n: usize) -> Vec<usize>;
}

/// A trivial policy implementation.
pub struct EveryDay;

impl Policy for EveryDay {
    /// Allowlisted root: the API returns an owned buffer by contract.
    fn decide_batch(&mut self, n: usize) -> Vec<usize> {
        (0..n).collect()
    }
}

/// Root: the serving decision loop.
pub fn serve(days: usize) -> usize {
    let mut total = 0;
    for day in 0..days {
        total += labeled(day).len();
    }
    total
}

/// Waived: the incident label is off the decision cadence.
fn labeled(day: usize) -> String {
    // xtask-allow(hot-alloc): incident labels format once per fault, not per day
    format!("day-{day}")
}

/// NOT reported: allocates, but nothing on the hot path calls it.
pub fn offline_report(days: usize) -> Vec<usize> {
    (0..days).map(|d| d * 2).collect()
}
