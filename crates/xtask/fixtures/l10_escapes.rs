//! Fixture: `escape-hatch-justification` violations. Not compiled; scanned
//! by self-tests. Escape hatches are loans — every one must say why.

/// VIOLATION: bare legacy escape, no justification.
pub fn bare_legacy(x: Option<u8>) -> u8 {
    x.unwrap_or(0) // xtask-allow: no-panic-in-libs
}

/// VIOLATION: bare `all` escape must not grant itself amnesty.
pub fn bare_all() {
    let _ = 1; // xtask-allow: all
}

/// Allowed: new grammar with a reason.
pub fn justified_new(x: Option<u8>) -> u8 {
    x.unwrap_or(0) // xtask-allow(no-panic-in-libs): infallible by construction
}

/// Allowed: legacy grammar with trailing commentary as the reason.
pub fn justified_legacy(x: u64) -> u32 {
    let _ = x; // xtask-allow: narrowing-cast-audit (bounded by caller)
    0
}
