//! Fixture: `money-safety` violations. Not compiled; scanned by self-tests.

pub struct Money(i64);

impl Money {
    pub fn as_dollars(&self) -> f64 {
        self.0 as f64 / 1e6
    }
    pub fn from_dollars(d: f64) -> Money {
        Money((d * 1e6) as i64)
    }
}

/// VIOLATION: raw f64 arithmetic on a dollar-named binding.
pub fn monthly_bill(storage_dollars: f64, egress_dollars: f64) -> f64 {
    storage_dollars + egress_dollars
}

/// VIOLATION: arithmetic directly on an `as_dollars()` result.
pub fn discounted(m: &Money, rate: f64) -> f64 {
    m.as_dollars() * rate
}

/// VIOLATION: as_dollars -> from_dollars round-trip loses sub-micro precision.
pub fn rescale(m: &Money) -> Money {
    Money::from_dollars(m.as_dollars())
}

/// Allowed: display-only conversion, no arithmetic.
pub fn describe(m: &Money) -> String {
    format!("${}", m.as_dollars())
}

/// Allowed via escape hatch: a deliberate, documented exception.
pub fn approx_usd_total(a_usd: f64, b_usd: f64) -> f64 {
    a_usd + b_usd // xtask-allow(money-safety): report-only approximation
}
