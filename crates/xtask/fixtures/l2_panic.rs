//! Fixture: `no-panic-in-libs` violations. Not compiled; scanned by self-tests.

/// VIOLATION: `.unwrap()` in library code.
pub fn first(xs: &[u8]) -> u8 {
    *xs.first().unwrap()
}

/// VIOLATION: `.expect(...)` in library code.
pub fn parse(s: &str) -> u32 {
    s.parse().expect("not a number")
}

/// VIOLATION: `panic!` in library code.
pub fn checked(x: i64) -> i64 {
    if x < 0 {
        panic!("negative input {x}");
    }
    x
}

/// Allowed: combinators that do not panic.
pub fn first_or_zero(xs: &[u8]) -> u8 {
    xs.first().copied().unwrap_or(0)
}

/// Allowed via escape hatch: documented invariant.
pub fn tail(xs: &[u8]) -> u8 {
    // xtask-allow(no-panic-in-libs): last() is Some by documented invariant
    *xs.last().unwrap()
}

#[cfg(test)]
mod tests {
    /// Allowed: panics in test code are fine.
    #[test]
    fn test_can_unwrap() {
        Some(1).unwrap();
    }
}
