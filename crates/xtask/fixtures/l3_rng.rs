//! Fixture: `seeded-rng-only` violations. Not compiled; scanned by self-tests.

/// VIOLATION: thread-local entropy-seeded RNG.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.random()
}

/// VIOLATION: bare `rand::rng()` entry point.
pub fn coin_flip() -> bool {
    rand::rng().random_bool(0.5)
}

/// VIOLATION: entropy-based construction.
pub fn fresh() -> StdRng {
    StdRng::from_entropy()
}

/// Allowed: explicitly seeded, reproducible.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    /// Allowed: entropy in test code is fine (though still discouraged).
    #[test]
    fn test_entropy_ok() {
        let _ = rand::thread_rng();
    }
}
