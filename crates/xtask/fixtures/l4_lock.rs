//! Fixture: `lock-discipline` violations. Not compiled; scanned by self-tests.

/// VIOLATION: guard held across a scoped spawn — workers serialize on it.
pub fn broadcast(state: &Mutex<Vec<u64>>, n: usize) {
    let snapshot = state.lock();
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| consume(&snapshot));
        }
    });
}

/// VIOLATION: guard held across a long training loop.
pub fn train_holding_lock(params: &Mutex<Vec<f64>>, steps: usize) {
    let mut guard = params.lock();
    for step in 0..steps {
        let g1 = gradient(step);
        let g2 = clip(g1);
        let g3 = momentum(g2);
        apply(&mut guard, g3);
        record(step);
        checkpoint(step);
        trace(step);
    }
}

/// Allowed: lock scoped tightly around the mutation.
pub fn train_scoped(params: &Mutex<Vec<f64>>, steps: usize) {
    for step in 0..steps {
        let g = gradient(step);
        params.lock().push(g);
    }
}

/// Allowed: guard explicitly dropped before spawning.
pub fn snapshot_then_spawn(state: &Mutex<Vec<u64>>) {
    let guard = state.lock();
    let copy = guard.clone();
    drop(guard);
    std::thread::scope(|s| {
        s.spawn(move || consume_owned(copy));
    });
}
