//! Fixture: `hashmap-iter-determinism` violations. Not compiled; scanned by
//! self-tests.

use std::collections::{BTreeMap, HashMap, HashSet};

/// VIOLATION: `.values()` iteration over a `HashMap` in library code.
pub fn collect_values(by_id: &HashMap<u32, u64>) -> Vec<u64> {
    by_id.values().copied().collect()
}

/// VIOLATION: `for` loop over a `HashSet` reference.
pub fn visit_members() {
    let mut members = HashSet::new();
    members.insert(1u32);
    for m in &members {
        drop(m);
    }
}

/// VIOLATION: `.iter()` on a hash map bound through `collect`.
pub fn rebuild(pairs: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let index = pairs.iter().copied().collect::<HashMap<u32, u64>>();
    index.iter().map(|(k, v)| (*k, *v)).collect()
}

/// Allowed: lookups without iteration are order-independent.
pub fn lookup(by_id: &HashMap<u32, u64>, id: u32) -> u64 {
    by_id.get(&id).copied().unwrap_or(0)
}

/// Allowed: `BTreeMap` iterates in key order.
pub fn ordered_values(by_id: &BTreeMap<u32, u64>) -> Vec<u64> {
    by_id.values().copied().collect()
}

/// Allowed: escape hatch with justification.
pub fn counted(by_id: &HashMap<u32, u64>) -> usize {
    // xtask-allow: hashmap-iter-determinism (count is order-independent)
    by_id.keys().count()
}

#[cfg(test)]
mod tests {
    /// Allowed: test assertions may iterate hash containers.
    #[test]
    fn test_iteration_ok() {
        let m: std::collections::HashMap<u8, u8> = Default::default();
        for kv in m.iter() {
            drop(kv);
        }
    }
}
