//! Fixture: `float-reduction-order` violations. Not compiled; scanned by
//! self-tests. Scope: gradient/reward accumulation in `nn`/`rl`.

use std::collections::HashMap;

/// VIOLATION: f64 sum over unordered map values — the result's bit pattern
/// depends on hash iteration order.
pub fn grad_norm_sq(grads: &HashMap<u32, f64>) -> f64 {
    grads.values().map(|g| g * g).sum::<f64>()
}

/// VIOLATION: fold over unordered iteration.
pub fn total_reward(rewards: &HashMap<u64, f64>) -> f64 {
    rewards.values().fold(0.0, |acc, r| acc + r)
}

/// Allowed: slices iterate in order; the reduction is reproducible.
pub fn ordered_norm_sq(grads: &[f64]) -> f64 {
    grads.iter().map(|g| g * g).sum::<f64>()
}

/// Allowed: escape hatch for a documented order-independent reduction.
pub fn count_active(rewards: &HashMap<u64, f64>) -> usize {
    // xtask-allow: float-reduction-order, hashmap-iter-determinism (usize count)
    rewards.values().filter(|r| **r > 0.0).fold(0, |n, _| n + 1)
}
