//! Fixture: `narrowing-cast-audit` violations. Not compiled; scanned by
//! self-tests. Scope: op counters, byte sizes, tick indices in
//! `core`/`pricing`/`trace`.

/// VIOLATION: op counter narrowed from u64 — wraps silently past u32::MAX.
pub fn ops_to_u32(ops: u64) -> u32 {
    ops as u32
}

/// VIOLATION: tick index narrowed to i32.
pub fn tick_delta(now: usize, then: usize) -> i32 {
    (now - then) as i32
}

/// VIOLATION: byte size squeezed into u16.
pub fn size_bucket(bytes: u64) -> u16 {
    (bytes / 1024) as u16
}

/// Allowed: widening and float conversions are not narrowing casts.
pub fn widen(x: u32) -> u64 {
    x as u64
}

/// Allowed: checked conversion with an explicit saturation policy.
pub fn ops_to_u32_checked(ops: u64) -> u32 {
    u32::try_from(ops).unwrap_or(u32::MAX)
}

/// Allowed: literal casts keep the value visible at the site.
pub fn constant() -> u32 {
    255 as u32
}

/// Allowed: escape hatch for a proven-bounded cast.
pub fn bounded(day_of_week: usize) -> u8 {
    // xtask-allow: narrowing-cast-audit (day_of_week < 7 by construction)
    day_of_week as u8
}

#[cfg(test)]
mod tests {
    /// Allowed: test code may cast freely.
    #[test]
    fn test_casts_ok() {
        let x: u64 = 300;
        assert_eq!(x as u8, 44);
    }
}
