//! Fixture: `exhaustive-tier-match` violations. Not compiled; scanned by
//! self-tests. Adding a fourth tier must be a compile-gated event.

/// VIOLATION: wildcard arm absorbs any future tier silently.
pub fn storage_weight(tier: Tier) -> f64 {
    match tier {
        Tier::Hot => 1.0,
        _ => 0.2,
    }
}

/// VIOLATION: wildcard with a guard is still a wildcard.
pub fn ops_weight(tier: Tier, boost: bool) -> f64 {
    match tier {
        Tier::Archive => 10.0,
        _ if boost => 2.0,
        _ => 1.0,
    }
}

/// Allowed: every variant listed — a fourth tier breaks the build here.
pub fn retrieval_weight(tier: Tier) -> f64 {
    match tier {
        Tier::Hot => 0.0,
        Tier::Cool => 0.01,
        Tier::Archive => 0.02,
    }
}

/// Allowed: the wildcard matches a non-tier scrutinee; `Tier::` only
/// appears in arm expressions.
pub fn from_code(code: u8) -> Tier {
    match code {
        0 => Tier::Hot,
        1 => Tier::Cool,
        _ => Tier::Archive,
    }
}

/// Allowed: escape hatch for a documented default.
pub fn is_hot(tier: Tier) -> bool {
    match tier {
        Tier::Hot => true,
        // xtask-allow: exhaustive-tier-match (any colder tier is "not hot")
        _ => false,
    }
}
