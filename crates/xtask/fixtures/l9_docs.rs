//! Fixture: `pub-api-doc-coverage` violations. Not compiled; scanned by
//! self-tests.

pub struct UndocumentedStruct; // VIOLATION (line above has no doc)

pub fn undocumented_fn() {} // VIOLATION

pub enum UndocumentedEnum {} // VIOLATION

pub const UNDOCUMENTED_CONST: usize = 3; // VIOLATION

/// Documented struct.
pub struct Documented {
    field: u8,
}

impl Documented {
    pub fn undocumented_method(&self) -> u8 {
        // ^ VIOLATION: public method without a doc comment
        self.field
    }

    /// Documented method.
    pub fn documented_method(&self) -> u8 {
        self.field
    }

    fn private_method(&self) {}
}

/// Documented trait.
pub trait DocumentedTrait {
    /// Documented required method.
    fn required(&self);
}

pub(crate) fn scoped_needs_no_doc() {}

fn private_needs_no_doc() {}

mod detail {
    pub fn internal_helper_needs_no_doc() {}
}

// xtask-allow: pub-api-doc-coverage (self-explanatory re-export shim)
pub fn allowed_without_doc() {}

#[cfg(test)]
mod tests {
    pub fn test_helper_needs_no_doc() {}
}
