//! F5 `hot-alloc`: the per-day inner loop's heap allocations are a
//! committed, audited allowlist.
//!
//! ROADMAP item 1 (columnar trace layout, SIMD-friendly batch decisions)
//! starts with an inventory of what the hot path allocates today. This
//! analysis walks the call graph forward from the per-day inner-loop
//! roots — `core::run_shard`, the `core::serve` decision loop, and every
//! `decide_batch`/`decide_batch_into` implementation — and flags each
//! reachable function that heap-allocates:
//!
//! - constructor paths (`Vec::new`, `Vec::with_capacity`, `Box::new`,
//!   `String::from`, and the other std containers),
//! - allocating method calls (`.collect()`, `.clone()`, `.to_vec()`,
//!   `.to_owned()`, `.to_string()`, `.cloned()`),
//! - allocating macros (`format!`, `vec!`).
//!
//! Findings are gated on `xtask-alloc-allowlist.json` (repo root): each
//! entry names a function key and the reason its allocations are
//! acceptable (amortized setup, API returns an owned buffer, decision
//! cadence far below the day loop). The report doubles as the audited
//! work-list for the columnar refactor; entries that match nothing are
//! reported so the file shrinks as buffers get hoisted. Site-level
//! waivers use `// xtask-allow(hot-alloc): <reason>`.

use crate::flow::{flow_allowed, FlowDiag, FlowKind, FnGraph, SourceFile, Workspace};
use crate::json::Json;
use crate::lexer::TokKind;
use crate::reach::AllowEntry;
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

/// Entry-point keys of the per-day inner loops.
pub const ROOT_KEYS: &[&str] = &["core::run_shard", "core::serve"];

/// Method names whose every implementation is an inner-loop root
/// (trait-object dispatch makes the concrete impl unknowable statically).
pub const ROOT_METHODS: &[&str] = &["decide_batch", "decide_batch_into"];

/// The parsed `xtask-alloc-allowlist.json`.
#[derive(Clone, Debug, Default)]
pub struct AllocAllowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl AllocAllowlist {
    /// Loads `<root>/xtask-alloc-allowlist.json`; a missing file is an
    /// empty allowlist, a malformed one is an error.
    pub fn load(root: &Path) -> Result<AllocAllowlist, String> {
        let path = root.join("xtask-alloc-allowlist.json");
        match std::fs::read_to_string(&path) {
            Ok(src) => AllocAllowlist::parse(&src).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(AllocAllowlist::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Parses `{"entries": [{"function": ..., "reason": ...}, ...]}`.
    pub fn parse(src: &str) -> Result<AllocAllowlist, String> {
        let doc = Json::parse(src)?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("alloc allowlist must have an `entries` array")?;
        let mut out = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            let field = |name: &str| {
                e.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("entry {i}: missing string field `{name}`"))
            };
            let entry = AllowEntry { function: field("function")?, reason: field("reason")? };
            if entry.reason.trim().is_empty() {
                return Err(format!("entry {i}: reason must not be empty"));
            }
            out.push(entry);
        }
        Ok(AllocAllowlist { entries: out })
    }
}

/// Container types whose associated constructors allocate.
const ALLOC_CONTAINERS: &[&str] =
    &["Vec", "VecDeque", "String", "Box", "BTreeMap", "BTreeSet", "HashMap", "HashSet"];

/// Associated-function names that allocate on those containers.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Method calls that allocate their result.
const ALLOC_METHODS: &[&str] = &["collect", "clone", "cloned", "to_vec", "to_owned", "to_string"];

/// Macros that allocate their result.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Per-idiom allocation-site counts and first lines for one body.
#[derive(Debug, Default)]
struct Sites {
    /// idiom label (`Vec::new`, `.collect()`, `format!`) -> (count, first line).
    by_idiom: BTreeMap<String, (usize, usize)>,
}

impl Sites {
    fn record(&mut self, idiom: String, line: usize) {
        let slot = self.by_idiom.entry(idiom).or_insert((0, line));
        slot.0 += 1;
    }

    fn is_empty(&self) -> bool {
        self.by_idiom.is_empty()
    }

    /// `"1 .clone(), 2 Vec::new"` in stable idiom order.
    fn summary(&self) -> String {
        self.by_idiom
            .iter()
            .map(|(idiom, (n, _))| format!("{n} {idiom}"))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn first_line(&self) -> usize {
        self.by_idiom.values().map(|(_, l)| *l).min().unwrap_or(0)
    }
}

/// Scans one body token range for allocating call sites, honoring
/// site waivers.
fn alloc_sites(sf: &SourceFile, start: usize, end: usize) -> Sites {
    let toks = &sf.lexed.toks[start..end.min(sf.lexed.toks.len())];
    let mut sites = Sites::default();
    let mut record = |idiom: String, line| {
        if !flow_allowed(&sf.lexed, FlowKind::HotAlloc, line) {
            sites.record(idiom, line);
        }
    };
    for (i, t) in toks.iter().enumerate() {
        let TokKind::Ident(id) = &t.kind else { continue };
        let prev_is = |p: &str| i > 0 && toks[i - 1].kind.is_punct(p);
        let next_is = |p: &str| toks.get(i + 1).is_some_and(|n| n.kind.is_punct(p));
        if ALLOC_MACROS.contains(&id.as_str()) && next_is("!") {
            record(format!("{id}!"), t.line);
        } else if ALLOC_CONTAINERS.contains(&id.as_str()) && next_is("::") {
            // `Vec::new(`, possibly with a turbofish between `::` and the
            // constructor name: find the next identifier token.
            let ctor =
                toks[i + 2..].iter().take(8).find_map(|n| n.kind.ident()).unwrap_or_default();
            if ALLOC_CTORS.contains(&ctor) {
                record(format!("{id}::{ctor}"), t.line);
            }
        } else if ALLOC_METHODS.contains(&id.as_str()) && prev_is(".") {
            // `.collect()`, `.collect::<Vec<_>>()`: a call must follow.
            let calls = next_is("(") || next_is("::");
            if calls {
                record(format!(".{id}()"), t.line);
            }
        }
    }
    sites
}

/// The inner-loop roots: the fixed keys plus every batch-decision impl.
pub fn roots(g: &FnGraph) -> Vec<String> {
    let mut out: Vec<String> = ROOT_KEYS.iter().map(|s| (*s).to_string()).collect();
    for method in ROOT_METHODS {
        for &ix in g.named(method) {
            out.push(g.nodes[ix].key.clone());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Walks the graph from the inner-loop roots, flags reachable allocating
/// functions not covered by the allowlist, and reports unused entries.
pub fn analyze(
    ws: &Workspace,
    g: &FnGraph,
    roots: &[String],
    allow: &AllocAllowlist,
) -> (Vec<FlowDiag>, Vec<String>) {
    // BFS from the roots, recording the hop parent for traces.
    let mut prev: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut root_of: Vec<Option<usize>> = vec![None; g.nodes.len()];
    let mut queue = VecDeque::new();
    for key in roots {
        if let Some(ix) = g.by_key(key) {
            if root_of[ix].is_none() {
                root_of[ix] = Some(ix);
                queue.push_back(ix);
            }
        }
    }
    while let Some(ix) = queue.pop_front() {
        for &c in &g.nodes[ix].callees {
            if root_of[c].is_none() {
                root_of[c] = root_of[ix];
                prev[c] = Some(ix);
                queue.push_back(c);
            }
        }
    }

    let mut used = vec![false; allow.entries.len()];
    let mut diags = Vec::new();
    for (ix, node) in g.nodes.iter().enumerate() {
        let Some(root_ix) = root_of[ix] else { continue };
        let Some((start, end)) = node.body else { continue };
        let sf = &ws.files[node.file_ix];
        let sites = alloc_sites(sf, start, end);
        if sites.is_empty() {
            continue;
        }
        if let Some(pos) = allow.entries.iter().position(|e| e.function == node.key) {
            used[pos] = true;
            continue;
        }
        // Trace: root -> ... -> this function.
        let mut path = vec![ix];
        while let Some(p) = prev[*path.last().unwrap_or(&ix)] {
            path.push(p);
        }
        path.reverse();
        let trace: Vec<String> = path
            .iter()
            .map(|&step| {
                let role = if step == ix { "allocates in" } else { "calls" };
                format!("{role} {}", g.label(ws, step))
            })
            .collect();
        diags.push(FlowDiag {
            kind: FlowKind::HotAlloc,
            file: sf.file.clone(),
            line: sites.first_line(),
            symbol: node.key.clone(),
            message: format!(
                "allocates on the hot path ({}) and is reachable from `{}` ({} hop(s)); hoist \
                 the buffer, waive the site, or add an `xtask-alloc-allowlist.json` entry",
                sites.summary(),
                g.nodes[root_ix].key,
                path.len().saturating_sub(1),
            ),
            trace,
        });
    }
    let warnings = allow
        .entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| format!("unused alloc-allowlist entry: {} ({})", e.function, e.reason))
        .collect();
    (diags, warnings)
}
