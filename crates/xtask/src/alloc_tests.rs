//! Self-tests for the F5 `hot-alloc` analysis: the committed `f5_alloc.rs`
//! fixture must flag reachable allocating functions (and only those), the
//! allowlist and site waivers must suppress, and the real workspace must
//! be clean under the committed `xtask-alloc-allowlist.json`.

use crate::alloc::{self, AllocAllowlist};
use crate::flow::{FlowKind, FnGraph, Workspace};
use crate::flow_tests::fixture_ws;

#[test]
fn f5_fixture_flags_reachable_allocations_only() {
    let (ws, g) = fixture_ws("f5_alloc.rs");
    let roots = alloc::roots(&g);
    // Root discovery finds both fixed keys and the decide_batch impl.
    assert!(roots.contains(&"core::run_shard".to_string()), "{roots:?}");
    assert!(roots.contains(&"core::serve".to_string()), "{roots:?}");
    assert!(roots.contains(&"core::EveryDay::decide_batch".to_string()), "{roots:?}");
    let (diags, warnings) = alloc::analyze(&ws, &g, &roots, &AllocAllowlist::default());
    assert!(warnings.is_empty(), "{warnings:?}");
    let syms: Vec<&str> = diags.iter().map(|d| d.symbol.as_str()).collect();
    // `decide` (vec! + .clone(), one hop from run_shard) and the
    // decide_batch impl (.collect()) are flagged; the waived `labeled`
    // and the unreachable `offline_report` are not.
    assert!(syms.contains(&"core::decide"), "{diags:?}");
    assert!(syms.contains(&"core::EveryDay::decide_batch"), "{diags:?}");
    assert!(!syms.contains(&"core::labeled"), "{diags:?}");
    assert!(!syms.contains(&"core::offline_report"), "{diags:?}");
    assert!(diags.iter().all(|d| d.kind == FlowKind::HotAlloc));
    let decide = diags.iter().find(|d| d.symbol == "core::decide").expect("decide diagnostic");
    assert!(decide.message.contains("vec!"), "{decide:?}");
    assert!(decide.message.contains(".clone()"), "{decide:?}");
    assert!(decide.message.contains("run_shard"), "{decide:?}");
    let trace = decide.trace.join("\n");
    assert!(trace.contains("calls core::run_shard") || trace.contains("allocates in"), "{trace}");
}

#[test]
fn f5_allowlist_suppresses_and_reports_unused_entries() {
    let (ws, g) = fixture_ws("f5_alloc.rs");
    let roots = alloc::roots(&g);
    let allow = AllocAllowlist::parse(
        r#"{"entries": [
            {"function": "core::EveryDay::decide_batch",
             "reason": "the trait API returns an owned buffer"},
            {"function": "core::gone_function",
             "reason": "stale entry"}
        ]}"#,
    )
    .expect("allowlist parses");
    let (diags, warnings) = alloc::analyze(&ws, &g, &roots, &allow);
    // The allowlisted impl is suppressed; `decide` still fires.
    assert!(!diags.iter().any(|d| d.symbol == "core::EveryDay::decide_batch"), "{diags:?}");
    assert!(diags.iter().any(|d| d.symbol == "core::decide"), "{diags:?}");
    // The stale entry is reported for burn-down.
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert!(warnings[0].starts_with("unused alloc-allowlist entry: core::gone_function"));
}

#[test]
fn alloc_allowlist_rejects_blank_reasons() {
    let err = AllocAllowlist::parse(r#"{"entries": [{"function": "core::f", "reason": "  "}]}"#)
        .expect_err("blank reason must be rejected");
    assert!(err.contains("reason"), "{err}");
    let err = AllocAllowlist::parse(r#"{"wrong": 1}"#).expect_err("missing entries");
    assert!(err.contains("entries"), "{err}");
}

#[test]
fn alloc_tree_is_clean_under_committed_allowlist() {
    // The gate `cargo xtask check` step 3 enforces: every hot-path
    // allocation in the real workspace is hoisted, waived in place, or
    // justified in `xtask-alloc-allowlist.json`.
    let root = crate::walk::repo_root();
    let ws = Workspace::load_flow(&root).expect("workspace loads");
    let g = FnGraph::build(&ws);
    let allow = AllocAllowlist::load(&root).expect("allowlist parses");
    let roots = alloc::roots(&g);
    let (diags, warnings) = alloc::analyze(&ws, &g, &roots, &allow);
    let fresh: Vec<String> = diags.iter().map(ToString::to_string).collect();
    assert!(
        fresh.is_empty(),
        "workspace has unjustified hot-path allocations:\n{}",
        fresh.join("\n")
    );
    // Every committed entry must still match a function (hygiene: the
    // allowlist shrinks as buffers get hoisted; --strict enforces this
    // in CI, the self-test keeps it honest locally too).
    assert!(warnings.is_empty(), "stale alloc-allowlist entries:\n{}", warnings.join("\n"));
}
