//! Violation baseline with expiry semantics.
//!
//! `xtask-baseline.json` (repo root) lists known violations that are
//! temporarily tolerated. Each entry names a lint, a repo-relative file, a
//! human reason, and a hard `expires` date (`YYYY-MM-DD`). The gate:
//!
//! - violations matched by a live entry are reported as `baselined` and do
//!   not fail the build;
//! - an **expired** entry fails the gate outright — suppressions are loans,
//!   not grants, and they must be re-justified or the violation fixed;
//! - an entry matching nothing is reported as `unused` (warning only) so the
//!   file shrinks as debt is paid down.
//!
//! Matching is by lint name plus file-path suffix, deliberately not by line:
//! line numbers churn with every edit, and a per-file grant is the coarsest
//! scope that still expires.

use crate::json::Json;
use crate::lints::Violation;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// One tolerated violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Lint name (`narrowing-cast-audit`, ...).
    pub lint: String,
    /// Repo-relative file path the grant covers.
    pub file: String,
    /// Why this violation is tolerated.
    pub reason: String,
    /// Last valid day, `YYYY-MM-DD`; the gate fails the day after.
    pub expires: String,
}

/// The parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// All entries, in file order.
    pub entries: Vec<Entry>,
}

/// Result of applying a baseline to a violation list.
#[derive(Debug, Default)]
pub struct Applied {
    /// Index into `Baseline::entries` for each violation, where matched.
    pub matched: Vec<Option<usize>>,
    /// Entries past their `expires` date (gate failure).
    pub expired: Vec<Entry>,
    /// Entries that matched no violation (warning).
    pub unused: Vec<Entry>,
}

impl Baseline {
    /// Loads the baseline from `<root>/xtask-baseline.json`. A missing file
    /// is an empty baseline; a malformed one is an error (a typo must not
    /// silently drop suppressions *or* grant extra ones).
    pub fn load(root: &Path) -> Result<Baseline, String> {
        let path = root.join("xtask-baseline.json");
        match std::fs::read_to_string(&path) {
            Ok(src) => Baseline::parse(&src).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Parses the baseline document: `{"entries": [{lint, file, reason,
    /// expires}, ...]}`.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let doc = Json::parse(src)?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("baseline must have an `entries` array")?;
        let mut out = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            let field = |name: &str| {
                e.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("entry {i}: missing string field `{name}`"))
            };
            let entry = Entry {
                lint: field("lint")?,
                file: field("file")?,
                reason: field("reason")?,
                expires: field("expires")?,
            };
            if !valid_date(&entry.expires) {
                return Err(format!(
                    "entry {i}: `expires` must be YYYY-MM-DD, got `{}`",
                    entry.expires
                ));
            }
            out.push(entry);
        }
        Ok(Baseline { entries: out })
    }

    /// Matches violations against entries as of `today` (`YYYY-MM-DD`).
    /// Expired entries never suppress; they surface in `Applied::expired`.
    #[cfg_attr(not(test), allow(dead_code))] // typed wrapper kept for the lint-side tests
    pub fn apply(&self, violations: &[Violation], today: &str) -> Applied {
        let items: Vec<(String, String)> =
            violations.iter().map(|v| (v.lint.name().to_string(), v.file.clone())).collect();
        self.apply_named(&items, today)
    }

    /// Matches generic `(diagnostic name, file)` items — the flow analyses
    /// (F1–F3) share the baseline with the syntax lints through this.
    pub fn apply_named(&self, items: &[(String, String)], today: &str) -> Applied {
        let live: Vec<bool> = self.entries.iter().map(|e| e.expires.as_str() >= today).collect();
        let mut used = vec![false; self.entries.len()];
        let matched = items
            .iter()
            .map(|(name, file)| {
                let hit = self
                    .entries
                    .iter()
                    .enumerate()
                    .position(|(i, e)| live[i] && e.lint == *name && file.ends_with(&e.file));
                if let Some(i) = hit {
                    used[i] = true;
                }
                hit
            })
            .collect();
        let expired =
            self.entries.iter().enumerate().filter(|(i, _)| !live[*i]).map(|(_, e)| e.clone());
        let unused = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, _)| live[*i] && !used[*i])
            .map(|(_, e)| e.clone());
        Applied { matched, expired: expired.collect(), unused: unused.collect() }
    }
}

/// Structural `YYYY-MM-DD` check; string comparison then orders dates.
fn valid_date(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b[4] == b'-'
        && b[7] == b'-'
        && b.iter().enumerate().all(|(i, c)| i == 4 || i == 7 || c.is_ascii_digit())
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock — civil-from-days
/// (Howard Hinnant's algorithm), so no date crate is needed.
pub fn today_utc() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
    let days = i64::try_from(secs / 86_400).unwrap_or(0);
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Converts days since 1970-01-01 to a civil (y, m, d) date.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    (if m <= 2 { y + 1 } else { y }, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Lint;

    fn violation(lint: Lint, file: &str) -> Violation {
        Violation { lint, file: file.to_string(), line: 10, message: "m".to_string() }
    }

    fn baseline_json(expires: &str) -> String {
        format!(
            r#"{{"entries": [{{"lint": "narrowing-cast-audit", "file": "crates/core/src/x.rs",
                "reason": "migration in flight", "expires": "{expires}"}}]}}"#
        )
    }

    #[test]
    fn live_entry_suppresses_matching_violation() {
        let b = Baseline::parse(&baseline_json("2099-12-31")).expect("parse");
        let vs = [
            violation(Lint::NarrowingCastAudit, "/repo/crates/core/src/x.rs"),
            violation(Lint::NarrowingCastAudit, "/repo/crates/core/src/other.rs"),
            violation(Lint::NoPanicInLibs, "/repo/crates/core/src/x.rs"),
        ];
        let applied = b.apply(&vs, "2026-08-05");
        assert_eq!(applied.matched, vec![Some(0), None, None]);
        assert!(applied.expired.is_empty());
        assert!(applied.unused.is_empty());
    }

    #[test]
    fn expired_entry_fails_and_stops_suppressing() {
        let b = Baseline::parse(&baseline_json("2026-01-01")).expect("parse");
        let vs = [violation(Lint::NarrowingCastAudit, "crates/core/src/x.rs")];
        let applied = b.apply(&vs, "2026-08-05");
        assert_eq!(applied.matched, vec![None], "expired grants must not suppress");
        assert_eq!(applied.expired.len(), 1);
    }

    #[test]
    fn entry_valid_through_its_expiry_day() {
        let b = Baseline::parse(&baseline_json("2026-08-05")).expect("parse");
        let applied = b.apply(&[], "2026-08-05");
        assert!(applied.expired.is_empty(), "expires is the last valid day");
        assert_eq!(applied.unused.len(), 1);
    }

    #[test]
    fn malformed_baseline_is_an_error_not_empty() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse(r#"{"entries": [{"lint": "x"}]}"#).is_err());
        let bad_date = baseline_json("tomorrow");
        assert!(Baseline::parse(&bad_date).is_err());
    }

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year
        assert_eq!(civil_from_days(19_723 + 59), (2024, 2, 29));
        assert_eq!(civil_from_days(20_670), (2026, 8, 5));
    }

    #[test]
    fn today_is_well_formed() {
        let t = today_utc();
        assert!(valid_date(&t), "{t}");
        assert!(t.as_str() > "2026-01-01", "{t}");
    }
}
