//! Self-tests: each committed fixture must trip its lint with `file:line`
//! diagnostics, and the escape hatch must suppress exactly the marked lines.

use crate::lints::{scan_source, FileContext, Lint, Violation};
use std::path::PathBuf;

fn scan_fixture(name: &str) -> Vec<Violation> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let ctx = FileContext::from_path(&path);
    scan_source(&path, &src, &ctx)
}

#[test]
fn l1_fixture_trips_money_safety() {
    let v = scan_fixture("l1_money.rs");
    assert!(!v.is_empty(), "fixture must fail the lint");
    assert!(v.iter().all(|v| v.lint == Lint::MoneySafety), "{v:?}");
    // Raw arithmetic on dollar bindings, arithmetic on as_dollars(), and the
    // round-trip are all caught; the escape-hatch line is not.
    assert!(v.iter().any(|v| v.message.contains("storage_dollars")), "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("round-trip")), "{v:?}");
    assert!(v.len() >= 3, "{v:?}");
}

#[test]
fn l2_fixture_trips_no_panic() {
    let v = scan_fixture("l2_panic.rs");
    assert!(v.iter().all(|v| v.lint == Lint::NoPanicInLibs), "{v:?}");
    // unwrap, expect, panic! each caught once; the allowed `tail` and the
    // `#[cfg(test)]` module are not.
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn l3_fixture_trips_seeded_rng_only() {
    let v = scan_fixture("l3_rng.rs");
    assert!(v.iter().all(|v| v.lint == Lint::SeededRngOnly), "{v:?}");
    // thread_rng, rand::rng(), from_entropy; test-module entropy is exempt.
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn l4_fixture_trips_lock_discipline() {
    let v = scan_fixture("l4_lock.rs");
    assert!(v.iter().all(|v| v.lint == Lint::LockDiscipline), "{v:?}");
    // Guard across spawn + guard across long loop; scoped/dropped guards pass.
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("scope")), "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("loop")), "{v:?}");
}

#[test]
fn diagnostics_carry_file_and_line() {
    for v in scan_fixture("l2_panic.rs") {
        assert!(v.line > 0);
        assert!(v.file.ends_with("l2_panic.rs"));
        let rendered = v.to_string();
        assert!(
            rendered.contains(&format!("l2_panic.rs:{}", v.line)),
            "diagnostic must be file:line formatted: {rendered}"
        );
    }
}

#[test]
fn fixtures_fail_through_the_cli_entry_point() {
    // The same code path `cargo xtask lint crates/xtask/fixtures` uses must
    // report a nonzero violation count over the fixture directory.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let n = crate::lint_paths(&[dir]).expect("fixtures dir must be readable");
    assert!(n >= 4 + 3 + 3 + 2 - 4, "all four fixtures must report violations, got {n}");
}

#[test]
fn workspace_tree_is_clean() {
    // The gate this tool enforces: the real workspace must stay lint-clean.
    let files = crate::walk::workspace_lint_files(&crate::walk::repo_root()).expect("walk");
    let mut violations = Vec::new();
    for file in files {
        let src = std::fs::read_to_string(&file).expect("read");
        let ctx = FileContext::from_path(&file);
        violations.extend(scan_source(&file, &src, &ctx));
    }
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
