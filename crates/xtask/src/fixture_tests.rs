//! Self-tests: each committed fixture must trip its lint with `file:line`
//! diagnostics, and the escape hatch must suppress exactly the marked lines.
//!
//! Fixtures live in the `fixture` crate context, where *all* lints apply, so
//! a fixture written for one lint may legitimately trip others (e.g. an
//! undocumented helper also trips L9). Each test therefore filters to the
//! lint under test before asserting counts.

use crate::lints::{scan_source, FileContext, Lint, Violation};
use std::path::PathBuf;

fn scan_fixture(name: &str) -> Vec<Violation> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let ctx = FileContext::from_path(&path);
    scan_source(&path, &src, &ctx)
}

/// Violations of one lint in one fixture file.
fn scan_for(name: &str, lint: Lint) -> Vec<Violation> {
    scan_fixture(name).into_iter().filter(|v| v.lint == lint).collect()
}

#[test]
fn l1_fixture_trips_money_safety() {
    let v = scan_for("l1_money.rs", Lint::MoneySafety);
    assert!(!v.is_empty(), "fixture must fail the lint");
    // Raw arithmetic on dollar bindings, arithmetic on as_dollars(), and the
    // round-trip are all caught; the escape-hatch line is not.
    assert!(v.iter().any(|v| v.message.contains("storage_dollars")), "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("round-trip")), "{v:?}");
    assert!(v.len() >= 3, "{v:?}");
}

#[test]
fn l2_fixture_trips_no_panic() {
    let v = scan_for("l2_panic.rs", Lint::NoPanicInLibs);
    // unwrap, expect, panic! each caught once; the allowed `tail` and the
    // `#[cfg(test)]` module are not.
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn l3_fixture_trips_seeded_rng_only() {
    let v = scan_for("l3_rng.rs", Lint::SeededRngOnly);
    // thread_rng, rand::rng(), from_entropy; test-module entropy is exempt.
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn l4_fixture_trips_lock_discipline() {
    let v = scan_for("l4_lock.rs", Lint::LockDiscipline);
    // Guard across spawn + guard across long loop; scoped/dropped guards pass.
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("scope")), "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("loop")), "{v:?}");
}

#[test]
fn l5_fixture_trips_hashmap_iter_determinism() {
    let v = scan_for("l5_hashmap.rs", Lint::HashmapIterDeterminism);
    // `.values()` on a param, `for` over a HashSet, `.iter()` on a collected
    // map; lookup-only use, the BTreeMap fn (same param name!), the allowed
    // `.keys().count()`, and the test module stay silent.
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("by_id")), "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("members")), "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("index")), "{v:?}");
}

#[test]
fn l6_fixture_trips_float_reduction_order() {
    let v = scan_for("l6_float_order.rs", Lint::FloatReductionOrder);
    // sum over map values + fold over values; the slice sum and the allowed
    // order-independent count are exempt.
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("sum")), "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("fold")), "{v:?}");
}

#[test]
fn l7_fixture_trips_narrowing_cast_audit() {
    let v = scan_for("l7_narrowing.rs", Lint::NarrowingCastAudit);
    // `as u32`, `as i32`, `as u16`; widening, try_from, literal, allowed, and
    // test-module casts are exempt.
    assert_eq!(v.len(), 3, "{v:?}");
    for needle in ["u32", "i32", "u16"] {
        assert!(v.iter().any(|v| v.message.contains(needle)), "{needle}: {v:?}");
    }
}

#[test]
fn l8_fixture_trips_exhaustive_tier_match() {
    let v = scan_for("l8_tier_match.rs", Lint::ExhaustiveTierMatch);
    // Plain wildcard + guarded wildcard; the exhaustive match, the non-tier
    // scrutinee, and the allowed default are exempt.
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|v| v.message.contains("wildcard")), "{v:?}");
}

#[test]
fn l9_fixture_trips_pub_api_doc_coverage() {
    let v = scan_for("l9_docs.rs", Lint::PubApiDocCoverage);
    // Undocumented pub struct/fn/enum/const + one undocumented pub method;
    // documented items, scoped/private items, private-mod internals, the
    // allowed shim, and the test helper are exempt.
    assert_eq!(v.len(), 5, "{v:?}");
    for needle in [
        "UndocumentedStruct",
        "undocumented_fn",
        "UndocumentedEnum",
        "UNDOCUMENTED_CONST",
        "undocumented_method",
    ] {
        assert!(v.iter().any(|v| v.message.contains(needle)), "{needle}: {v:?}");
    }
}

#[test]
fn l10_fixture_trips_escape_justification() {
    let v = scan_for("l10_escapes.rs", Lint::EscapeJustification);
    // Bare legacy escape + bare `all`; both justified grammars are exempt.
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("no-panic-in-libs")), "{v:?}");
    assert!(v.iter().any(|v| v.message.contains("all")), "{v:?}");
}

#[test]
fn diagnostics_carry_file_and_line() {
    for v in scan_fixture("l2_panic.rs") {
        assert!(v.line > 0);
        assert!(v.file.ends_with("l2_panic.rs"));
        let rendered = v.to_string();
        assert!(
            rendered.contains(&format!("l2_panic.rs:{}", v.line)),
            "diagnostic must be file:line formatted: {rendered}"
        );
    }
}

#[test]
fn every_lint_has_a_failing_fixture() {
    // One committed fixture per lint, and each must trip the lint it names.
    for (lint, fixture) in [
        (Lint::MoneySafety, "l1_money.rs"),
        (Lint::NoPanicInLibs, "l2_panic.rs"),
        (Lint::SeededRngOnly, "l3_rng.rs"),
        (Lint::LockDiscipline, "l4_lock.rs"),
        (Lint::HashmapIterDeterminism, "l5_hashmap.rs"),
        (Lint::FloatReductionOrder, "l6_float_order.rs"),
        (Lint::NarrowingCastAudit, "l7_narrowing.rs"),
        (Lint::ExhaustiveTierMatch, "l8_tier_match.rs"),
        (Lint::PubApiDocCoverage, "l9_docs.rs"),
        (Lint::EscapeJustification, "l10_escapes.rs"),
    ] {
        assert!(!scan_for(fixture, lint).is_empty(), "{fixture} must trip {}", lint.name());
    }
}

#[test]
fn fixtures_fail_through_the_cli_entry_point() {
    // The same code path `cargo xtask lint crates/xtask/fixtures` uses must
    // report a nonzero violation count over the fixture directory.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let n = crate::lint_paths(&[dir]).expect("fixtures dir must be readable");
    // At minimum the per-fixture counts asserted above (L1: 3, L2: 3, L3: 3,
    // L4: 2, L5: 3, L6: 2, L7: 3, L8: 2, L9: 5); cross-lint hits on fixture
    // helpers only push the total higher.
    assert!(n >= 26, "all nine fixtures must report violations, got {n}");
}

#[test]
fn workspace_tree_is_clean_modulo_baseline() {
    // The gate this tool enforces: every violation in the real workspace is
    // either fixed or covered by a live entry in the committed baseline.
    let root = crate::walk::repo_root();
    let files = crate::walk::workspace_lint_files(&root).expect("walk");
    let mut violations = Vec::new();
    for file in files {
        let src = std::fs::read_to_string(&file).expect("read");
        let ctx = FileContext::from_path(&file);
        violations.extend(scan_source(&file, &src, &ctx));
    }
    let base = crate::baseline::Baseline::load(&root).expect("baseline must parse");
    let applied = base.apply(&violations, &crate::baseline::today_utc());
    let fresh: Vec<String> = violations
        .iter()
        .zip(&applied.matched)
        .filter(|(_, m)| m.is_none())
        .map(|(v, _)| v.to_string())
        .collect();
    assert!(fresh.is_empty(), "workspace has non-baselined violations:\n{}", fresh.join("\n"));
    assert!(applied.expired.is_empty(), "baseline has expired entries: {:?}", applied.expired);
}

#[test]
fn expired_baseline_entry_fails_the_gate() {
    // The `lints` gate in cmd_check is `fresh == 0 && expired.is_empty()`;
    // an expired entry must flip it even when it still matches a violation.
    let src = r#"{"entries": [{"lint": "no-panic-in-libs", "file": "crates/core/src/x.rs",
        "reason": "temp", "expires": "2026-01-01"}]}"#;
    let base = crate::baseline::Baseline::parse(src).expect("parse");
    let v = Violation {
        lint: Lint::NoPanicInLibs,
        file: "crates/core/src/x.rs".to_string(),
        line: 1,
        message: "m".to_string(),
    };
    let applied = base.apply(&[v], "2026-08-05");
    let fresh = applied.matched.iter().filter(|m| m.is_none()).count();
    let gate_ok = fresh == 0 && applied.expired.is_empty();
    assert!(!gate_ok, "expired entry must fail the gate: {applied:?}");
}

#[test]
fn diagnostics_json_matches_documented_schema() {
    use crate::json::Json;
    let violations = vec![Violation {
        lint: Lint::NarrowingCastAudit,
        file: "/repo/crates/core/src/x.rs".to_string(),
        line: 7,
        message: "cast".to_string(),
    }];
    let base = crate::baseline::Baseline::default();
    let applied = base.apply(&violations, "2026-08-05");
    let ai = crate::AiReport {
        unit_diags: Vec::new(),
        alloc_diags: Vec::new(),
        panic_unused: Vec::new(),
        alloc_unused: vec!["unused alloc-allowlist entry: core::gone (old)".to_string()],
        strict: true,
    };
    let doc = crate::diagnostics_json(
        &PathBuf::from("/repo"),
        42,
        &violations,
        &[],
        &ai,
        &applied,
        true,
        true,
        false,
    );
    // Top-level keys and types per DESIGN.md §8.
    assert_eq!(doc.get("version").and_then(Json::as_num), Some(1));
    let lints = doc.get("lints").and_then(Json::as_arr).expect("lints array");
    assert_eq!(lints.len(), 10);
    let vs = doc.get("violations").and_then(Json::as_arr).expect("violations array");
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].get("lint").and_then(Json::as_str), Some("narrowing-cast-audit"));
    assert_eq!(vs[0].get("file").and_then(Json::as_str), Some("crates/core/src/x.rs"));
    assert_eq!(vs[0].get("line").and_then(Json::as_num), Some(7));
    assert_eq!(vs[0].get("baselined").and_then(Json::as_bool), Some(false));
    let gates = doc.get("gates").expect("gates");
    assert_eq!(gates.get("lints").and_then(Json::as_bool), Some(false));
    assert_eq!(gates.get("flow").and_then(Json::as_bool), Some(true));
    assert_eq!(gates.get("units").and_then(Json::as_bool), Some(true));
    assert_eq!(gates.get("alloc").and_then(Json::as_bool), Some(true));
    // Strict + one unused alloc-allowlist entry fails the hygiene gate.
    assert_eq!(gates.get("allowlists").and_then(Json::as_bool), Some(false));
    assert_eq!(gates.get("fmt").and_then(Json::as_bool), Some(true));
    let allowlists = doc.get("allowlists").expect("allowlists section");
    assert_eq!(allowlists.get("strict").and_then(Json::as_bool), Some(true));
    assert_eq!(allowlists.get("alloc_unused").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
    let flow = doc.get("flow").expect("flow section");
    assert_eq!(flow.get("kinds").and_then(Json::as_arr).map(<[Json]>::len), Some(5));
    assert_eq!(flow.get("diagnostics").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    let summary = doc.get("summary").expect("summary");
    assert_eq!(summary.get("fresh").and_then(Json::as_num), Some(1));
    assert_eq!(summary.get("baselined").and_then(Json::as_num), Some(0));
    assert_eq!(summary.get("ok").and_then(Json::as_bool), Some(false));
    // The document round-trips through the parser.
    assert_eq!(Json::parse(&doc.render()).expect("reparse"), doc);
}
