//! Shared infrastructure for the flow-sensitive interprocedural analyses.
//!
//! `cargo xtask flow` runs three analyses over the workspace function-call
//! graph (schema and rationale in DESIGN.md §12):
//!
//! - **F1 `determinism-taint`** ([`crate::taint`]): nondeterministic inputs
//!   (wall clock, OS entropy, environment, thread identity, unordered-map
//!   iteration) must not reach decision or billing sinks.
//! - **F2 `panic-reachability`** ([`crate::reach`]): functions reachable
//!   from the serve/simulate entry points that can panic must be listed in
//!   the committed `xtask-panic-allowlist.json`.
//! - **F3 `lock-order`** ([`crate::lockorder`]): lock acquisition orderings
//!   must be acyclic across the whole call graph.
//!
//! This module owns the pieces the analyses share: the [`Workspace`] loader
//! (sources, tokens, item trees for every first-party crate), the function
//! call graph [`FnGraph`], and the [`FlowDiag`] diagnostic type that feeds
//! the same baseline/expiry gate as the syntax lints.

use crate::graph::{self, ParsedFile};
use crate::lexer::{lex, Lexed};
use crate::lints::mark_regions;
use crate::parser::{parse_items, walk_items, Item, ItemKind};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Which flow analysis produced a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowKind {
    /// F1: nondeterministic input reaches a decision/billing sink.
    DeterminismTaint,
    /// F2: a panic site is reachable from a serving entry point.
    PanicReachability,
    /// F3: lock acquisition orderings form a cycle.
    LockOrder,
    /// F4: a derived billing dimension violates the unit discipline.
    UnitDimensions,
    /// F5: a heap allocation is reachable from a per-day inner-loop root.
    HotAlloc,
}

impl FlowKind {
    /// Stable kind name, used in baseline entries and escape comments.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::DeterminismTaint => "determinism-taint",
            FlowKind::PanicReachability => "panic-reachability",
            FlowKind::LockOrder => "lock-order",
            FlowKind::UnitDimensions => "unit-dimensions",
            FlowKind::HotAlloc => "hot-alloc",
        }
    }

    /// Short code for human output (`F1`..`F5`).
    pub fn code(self) -> &'static str {
        match self {
            FlowKind::DeterminismTaint => "F1",
            FlowKind::PanicReachability => "F2",
            FlowKind::LockOrder => "F3",
            FlowKind::UnitDimensions => "F4",
            FlowKind::HotAlloc => "F5",
        }
    }

    /// All kinds, in code order.
    pub fn all() -> [FlowKind; 5] {
        [
            FlowKind::DeterminismTaint,
            FlowKind::PanicReachability,
            FlowKind::LockOrder,
            FlowKind::UnitDimensions,
            FlowKind::HotAlloc,
        ]
    }

    /// The call-graph flow analyses `cargo xtask flow` runs (F1–F3); the
    /// abstract-interpretation kinds F4/F5 have their own `units`/`alloc`
    /// subcommands and run as `cargo xtask check` step 3.
    pub fn flow_kinds() -> [FlowKind; 3] {
        [FlowKind::DeterminismTaint, FlowKind::PanicReachability, FlowKind::LockOrder]
    }
}

/// One flow diagnostic, rendered `file:line: flow[F1 determinism-taint] ...`.
#[derive(Clone, Debug)]
pub struct FlowDiag {
    /// Which analysis fired.
    pub kind: FlowKind,
    /// Repo-relative file of the anchoring function.
    pub file: String,
    /// 1-based line of the anchoring function or site.
    pub line: usize,
    /// Qualified function key (`crate::Container::fn`).
    pub symbol: String,
    /// Human-readable explanation.
    pub message: String,
    /// Call-path evidence, outermost first.
    pub trace: Vec<String>,
}

impl fmt::Display for FlowDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: flow[{} {}] {}: {}",
            self.file,
            self.line,
            self.kind.code(),
            self.kind.name(),
            self.symbol,
            self.message
        )?;
        for step in &self.trace {
            write!(f, "\n    {step}")?;
        }
        Ok(())
    }
}

/// One loaded and parsed source file of the workspace.
pub struct SourceFile {
    /// Crate directory name (`core`, `rl`, ...).
    pub krate: String,
    /// Repo-relative display path.
    pub file: String,
    /// Raw source text.
    pub src: String,
    /// Lexed tokens and escape comments.
    pub lexed: Lexed,
    /// Item tree.
    pub items: Vec<Item>,
}

/// All first-party sources, loaded once and shared by every analysis.
#[derive(Default)]
pub struct Workspace {
    /// Files in crate order, then directory-walk order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every `crates/*/src` tree named in
    /// [`graph::CRATE_LIB_NAMES`].
    pub fn load(root: &Path) -> Result<Workspace, String> {
        Workspace::load_filtered(root, &[])
    }

    /// Loads the workspace for the flow analyses: everything except `xtask`
    /// itself. The analyzer is not on any serving or billing path, and its
    /// generic method names (`push`, `parse`, ...) would only add noise
    /// edges to the call graph it analyzes.
    pub fn load_flow(root: &Path) -> Result<Workspace, String> {
        Workspace::load_filtered(root, &["xtask"])
    }

    fn load_filtered(root: &Path, skip: &[&str]) -> Result<Workspace, String> {
        let mut ws = Workspace::default();
        for (dir, _) in graph::CRATE_LIB_NAMES {
            if skip.contains(&dir) {
                continue;
            }
            let crate_src = root.join("crates").join(dir).join("src");
            let files = crate::walk::rust_files(&crate_src)
                .map_err(|e| format!("cannot read {}: {e}", crate_src.display()))?;
            for file in files {
                let src = std::fs::read_to_string(&file)
                    .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
                let display = file
                    .strip_prefix(root)
                    .map_or_else(|_| file.display().to_string(), |p| p.display().to_string());
                ws.push(dir, &display, src);
            }
        }
        Ok(ws)
    }

    /// Builds a workspace from in-memory sources: `(crate, path, source)`.
    /// Used by the fixture self-tests.
    #[cfg(test)]
    pub fn from_sources(sources: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (krate, file, src) in sources {
            ws.push(krate, file, (*src).to_string());
        }
        ws
    }

    fn push(&mut self, krate: &str, file: &str, src: String) {
        let lexed = lex(&src);
        let marks = mark_regions(&lexed.toks);
        let items = parse_items(&lexed, &marks);
        self.files.push(SourceFile {
            krate: krate.to_string(),
            file: file.to_string(),
            src,
            lexed,
            items,
        });
    }

    /// Borrowed view for [`graph::SymbolGraph::build`].
    pub fn parsed(&self) -> Vec<ParsedFile<'_>> {
        self.files
            .iter()
            .map(|f| ParsedFile {
                krate: f.krate.clone(),
                file: f.file.clone(),
                lexed: &f.lexed,
                items: &f.items,
            })
            .collect()
    }
}

/// One function in the call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Crate directory name.
    pub krate: String,
    /// Stable key: `crate::Container::fn`.
    pub key: String,
    /// Simple function name.
    pub name: String,
    /// Innermost container (impl type, trait, or inline module) holding the
    /// function; `None` for free functions at file scope.
    pub container: Option<String>,
    /// Index into [`Workspace::files`].
    pub file_ix: usize,
    /// 1-based definition line.
    pub line: usize,
    /// Token index range of the body, when the function has one.
    pub body: Option<(usize, usize)>,
    /// Callee node indices, sorted and deduplicated.
    pub callees: Vec<usize>,
}

/// Syntactic shape of a call site, used to scope callee resolution.
enum CallForm {
    /// `f(...)` — a bare path; resolves to free functions only.
    Free,
    /// `recv.f(...)` — method syntax; resolves to the union of every
    /// container's method with that name, which is how `dyn Policy`
    /// dispatch stays covered without type information.
    Method,
    /// `Q::f(...)` — qualified path; resolves within container `Q`.
    Path(String),
    /// `Self::f(...)` — resolves within the caller's own container.
    SelfPath,
}

/// The workspace function-call graph the flow analyses run over.
///
/// Call edges are resolved by syntax: `Q::f(...)` links only to `f` defined
/// in a container named `Q`, `Self::f(...)` stays in the caller's container,
/// `recv.f(...)` links to *every* container's `f` (the conservative union
/// that models `dyn Policy` dispatch without type information), and a bare
/// `f(...)` links to free functions named `f`. Names resolved only outside
/// the workspace (std, vendored stubs) produce no edge.
#[derive(Debug, Default)]
pub struct FnGraph {
    /// All non-test functions, in file order.
    pub nodes: Vec<FnNode>,
    /// Reverse adjacency: `callers[i]` lists nodes that call node `i`.
    pub callers: Vec<Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_key: BTreeMap<String, usize>,
}

impl FnGraph {
    /// Builds the graph from a loaded workspace.
    pub fn build(ws: &Workspace) -> FnGraph {
        let mut g = FnGraph::default();
        // Pass 1: one node per non-test function definition.
        for (file_ix, sf) in ws.files.iter().enumerate() {
            walk_items(&sf.items, &mut |item, stack| {
                if item.kind != ItemKind::Fn || item.in_test {
                    return;
                }
                let containers: Vec<&str> =
                    stack.iter().filter(|s| !s.name.is_empty()).map(|s| s.name.as_str()).collect();
                let mut parts: Vec<&str> = vec![&sf.krate];
                parts.extend(&containers);
                parts.push(&item.name);
                let key = parts.join("::");
                let ix = g.nodes.len();
                g.by_name.entry(item.name.clone()).or_default().push(ix);
                g.by_key.entry(key.clone()).or_insert(ix);
                g.nodes.push(FnNode {
                    krate: sf.krate.clone(),
                    key,
                    name: item.name.clone(),
                    container: containers.last().map(|c| (*c).to_string()),
                    file_ix,
                    line: item.line,
                    body: item.body,
                    callees: Vec::new(),
                });
            });
        }
        // Pass 2: call edges, scoped by the call site's syntactic form.
        for ix in 0..g.nodes.len() {
            let Some((start, end)) = g.nodes[ix].body else { continue };
            let lexed = &ws.files[g.nodes[ix].file_ix].lexed;
            let mut callees = Vec::new();
            for (name, form) in call_forms(lexed, start, end) {
                let Some(cands) = g.by_name.get(&name) else { continue };
                match form {
                    CallForm::Method => callees
                        .extend(cands.iter().copied().filter(|&c| g.nodes[c].container.is_some())),
                    CallForm::Free => callees
                        .extend(cands.iter().copied().filter(|&c| g.nodes[c].container.is_none())),
                    CallForm::SelfPath => {
                        let (krate, container) = (&g.nodes[ix].krate, &g.nodes[ix].container);
                        if container.is_some() {
                            callees.extend(cands.iter().copied().filter(|&c| {
                                g.nodes[c].krate == *krate && g.nodes[c].container == *container
                            }));
                        }
                    }
                    CallForm::Path(q) => {
                        let scoped: Vec<usize> = cands
                            .iter()
                            .copied()
                            .filter(|&c| g.nodes[c].container.as_deref() == Some(q.as_str()))
                            .collect();
                        if scoped.is_empty() && q.starts_with(char::is_lowercase) {
                            // `module::f(...)` — file modules are not on the
                            // item stack, so fall back to free functions.
                            callees.extend(
                                cands.iter().copied().filter(|&c| g.nodes[c].container.is_none()),
                            );
                        } else {
                            callees.extend(scoped);
                        }
                    }
                }
            }
            callees.sort_unstable();
            callees.dedup();
            g.nodes[ix].callees = callees;
        }
        g.callers = vec![Vec::new(); g.nodes.len()];
        for ix in 0..g.nodes.len() {
            for c in g.nodes[ix].callees.clone() {
                g.callers[c].push(ix);
            }
        }
        g
    }

    /// Node indices of every function with this simple name.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Node index of the function with this qualified key, if defined.
    pub fn by_key(&self, key: &str) -> Option<usize> {
        self.by_key.get(key).copied()
    }

    /// `key (file:line)` label for diagnostics and traces.
    pub fn label(&self, ws: &Workspace, ix: usize) -> String {
        let n = &self.nodes[ix];
        format!("{} ({}:{})", n.key, ws.files[n.file_ix].file, n.line)
    }
}

/// Extracts `(callee_name, form)` candidates from a body token range:
/// identifiers directly followed by `(`, excluding keywords and macros,
/// classified by what precedes them (`.`, `Q::`, `Self::`, or nothing).
fn call_forms(lexed: &Lexed, start: usize, end: usize) -> Vec<(String, CallForm)> {
    let toks = &lexed.toks[start..end.min(lexed.toks.len())];
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.kind.ident() else { continue };
        if graph::NON_CALLEES.contains(&id) {
            continue;
        }
        let called = toks.get(i + 1).is_some_and(|n| n.kind.is_punct("("));
        let is_macro = toks.get(i + 1).is_some_and(|n| n.kind.is_punct("!"));
        if !called || is_macro {
            continue;
        }
        let form = if i >= 1 && toks[i - 1].kind.is_punct("::") {
            let qual = if i >= 2 { toks[i - 2].kind.ident() } else { None };
            match qual {
                Some("Self" | "self") => CallForm::SelfPath,
                // `crate::f(...)` / `super::f(...)` name a free function.
                Some("crate" | "super") => CallForm::Free,
                Some(q) => CallForm::Path(q.to_string()),
                // `<T as Trait>::f(...)` and turbofish tails: the container
                // is unknowable here, keep the conservative method union.
                None => CallForm::Method,
            }
        } else if i >= 1 && toks[i - 1].kind.is_punct(".") {
            CallForm::Method
        } else {
            CallForm::Free
        };
        out.push((id.to_string(), form));
    }
    out
}

/// True when an `// xtask-allow(<kind>): <reason>` escape comment with a
/// non-empty justification covers this line (same line or the line above).
/// Flow kinds must be named explicitly — `all` covers only the syntax lints.
pub fn flow_allowed(lexed: &Lexed, kind: FlowKind, line: usize) -> bool {
    lexed.allows.iter().any(|a| {
        (a.line == line || a.line + 1 == line)
            && a.lints.iter().any(|l| l == kind.name())
            && !a.reason.is_empty()
    })
}

/// Runs all three analyses; returns diagnostics plus non-fatal warnings
/// (currently: unused panic-allowlist entries).
pub fn analyze(
    ws: &Workspace,
    g: &FnGraph,
    panic_allow: &crate::reach::PanicAllowlist,
) -> (Vec<FlowDiag>, Vec<String>) {
    let mut diags = Vec::new();
    let taint = crate::taint::compute(ws, g);
    diags.extend(crate::taint::diagnostics(ws, g, &taint));
    let (reach_diags, warnings) = crate::reach::analyze(ws, g, crate::reach::ROOTS, panic_allow);
    diags.extend(reach_diags);
    diags.extend(crate::lockorder::analyze(ws, g));
    (diags, warnings)
}
